//! The request engine: a single `poll(2)` event loop, HTTP/1.1
//! keep-alive, inline fast-path dispatch, and a bounded worker pool for
//! slow requests.
//!
//! Flow of one connection:
//!
//! ```text
//!                    ┌────────────────────────── event loop ───────────────────────────┐
//! accept() ──▶ conn: │ poll ▶ read ▶ parse ▶ fast? dispatch inline ▶ buffer response   │──▶ write
//!                    │                     ▶ slow? job queue (≤ queue_depth) ─▶ worker │
//!                    └──────────────────────────────────┬────────────────────────────-─┘
//!                        queue full: 503 + Retry-After  └─ completion pipe wakes loop
//! ```
//!
//! One thread owns the listener and every connection; readiness comes
//! from the in-tree [`crate::poll`] binding (no crates, same idiom as
//! `src/signal.rs`). Fast requests — predictions, batch predictions,
//! health, metrics, model lists, co-design analyses — are evaluated
//! microseconds-cheap *on the event thread*, so the common case costs
//! zero handoffs and zero context switches. Only genuinely slow work
//! (`POST /measure` survey shards, `/predict` with a `hold_ms` test
//! hold — see [`dispatch::needs_worker`]) crosses to the worker pool;
//! when its queue is full the engine answers `503` + `Retry-After`
//! without consuming evaluation capacity.
//!
//! Connections are HTTP/1.1 keep-alive by default (see
//! [`Request::wants_keep_alive`]): one socket serves many requests,
//! pipelining included, which is where the throughput multiple over the
//! old connection-per-request engine comes from. Hardening is explicit:
//!
//! - a per-connection **request cap** (`keep_alive_requests`) forces
//!   `Connection: close` on the final response;
//! - an **idle deadline** reaps quiet connections between requests;
//! - the **header deadline** still bounds a slow-loris drip: a started
//!   but incomplete request answers `408` at the request deadline;
//! - every `4xx`/`5xx` closes, so error states never pin a socket.
//!
//! Shutdown (SIGINT/SIGTERM via the caller's cancel token): the engine
//! stops *reading* but keeps answering — buffered pipelined requests are
//! dispatched and flushed, workers finish in-flight jobs, and new
//! connections during the drain window get `503` (with `GET /healthz`
//! answering the structured `"status":"draining"` body a router's prober
//! keys off). Once everything in flight is flushed — or the drain
//! deadline expires — the listener closes and the engine returns; the
//! process exits 0, per the exit-code contract.

use crate::http::{parse_one, Request, Response};
use crate::metrics::Metrics;
use crate::poll::{self, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::refresh::{RefreshSettings, Refresher};
use crate::registry::ModelRegistry;
use crate::{api, dispatch};
use exareq_core::cancel::{CancelToken, Deadline};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything `exareq serve` configures.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8462` (port 0 picks one).
    pub addr: SocketAddr,
    /// Worker threads handling slow requests (`/measure`, held predicts).
    pub threads: usize,
    /// Slow requests allowed to wait for a worker.
    pub queue_depth: usize,
    /// Per-request deadline; expiry answers 504 (or 408 while reading).
    pub request_deadline: Duration,
    /// How long shutdown waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Directory of model artifacts.
    pub model_dir: PathBuf,
    /// Whether `POST /measure` accepts survey shards (the fleet worker
    /// opt-in, `exareq serve --allow-measure`).
    pub allow_measure: bool,
    /// Requests served on one keep-alive connection before the engine
    /// forces `Connection: close` (bounds how long one client can pin a
    /// socket).
    pub keep_alive_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the engine closes it.
    pub idle_deadline: Duration,
    /// Online-refresh knobs for `POST /observations`
    /// (`exareq serve --refresh-*`).
    pub refresh: RefreshSettings,
}

/// Why the engine could not run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(SocketAddr, std::io::Error),
    /// Configuring the listener failed.
    Listener(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(addr, e) => write!(f, "bind {addr}: {e}"),
            ServeError::Listener(e) => write!(f, "configure listener: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What happened over the daemon's lifetime, for the shutdown line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered.
    pub requests: u64,
    /// 503 backpressure rejects.
    pub rejected: u64,
    /// True when shutdown drained every in-flight request within the
    /// drain deadline.
    pub drained: bool,
}

/// A slow request crossing to the worker pool.
struct Job {
    conn: u64,
    request: Request,
    started: Instant,
}

/// A worker's finished response, travelling back to the event loop.
struct Completion {
    conn: u64,
    wants_keep_alive: bool,
    response: Response,
}

struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    /// Once true (and the job queue is empty) workers exit.
    stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    wake: Option<WakePipe>,
    metrics: Metrics,
    registry: Arc<ModelRegistry>,
    refresher: Arc<Refresher>,
    request_deadline: Duration,
    allow_measure: bool,
}

/// Event-loop tick: the poll timeout, which also bounds how late a
/// deadline (idle, 408, drain) can be noticed.
const POLL_TICK_MS: i32 = 25;

/// Read-drain window after a `Connection: close` response: keep reading
/// (and discarding) briefly so closing the socket does not RST the
/// response out of the peer's receive buffer.
const READ_DRAIN: Duration = Duration::from_millis(100);

/// Connections the event loop will hold open at once; beyond this,
/// accepts answer 503 without entering the loop.
const MAX_CONNS: usize = 1024;

/// Read-buffer chunk size.
const READ_CHUNK: usize = 8192;

/// One live connection's entire state, owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet parsed into a request.
    buf: Vec<u8>,
    /// Outbound segments not yet accepted by the socket — each response
    /// contributes its head and its body as separate segments, gathered
    /// by one `writev(2)` per flush instead of copied into one buffer.
    out: VecDeque<Vec<u8>>,
    /// Bytes of the front segment already written.
    out_pos: usize,
    /// Requests answered on this connection (keep-alive cap input).
    served: usize,
    /// A worker owns a request from this connection; reads pause.
    busy: bool,
    /// Last useful activity (accept, byte read, response queued, byte
    /// written) — the idle/stall clock.
    last_activity: Instant,
    /// Wall bound for completing the currently-arriving request head and
    /// body; expiry answers 408. `None` while between requests.
    header_deadline: Option<Instant>,
    /// Close once `out` is flushed (negotiated close, error, or drain).
    close_after_flush: bool,
    /// Drain has begun: answer what is buffered, read nothing new.
    stop_reading: bool,
    /// Write side is shut; discard reads until EOF or this instant.
    read_drain_until: Option<Instant>,
    /// Peer closed its write side.
    eof: bool,
    /// Remove at the next sweep.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: VecDeque::new(),
            out_pos: 0,
            served: 0,
            busy: false,
            last_activity: Instant::now(),
            header_deadline: None,
            close_after_flush: false,
            stop_reading: false,
            read_drain_until: None,
            eof: false,
            dead: false,
        }
    }

    fn has_pending_out(&self) -> bool {
        !self.out.is_empty()
    }

    /// Queues one response as head + body segments (no concatenation copy;
    /// `head_bytes` + `body` are exactly `to_bytes`). Empty bodies add no
    /// segment.
    fn queue_bytes(&mut self, response: Response) {
        self.out.push_back(response.head_bytes());
        if !response.body.is_empty() {
            self.out.push_back(response.body);
        }
    }

    /// Steps the segment queue past `n` written bytes.
    fn advance_out(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.out.front() else { break };
            let remaining = front.len() - self.out_pos;
            if n >= remaining {
                self.out.pop_front();
                self.out_pos = 0;
                n -= remaining;
            } else {
                self.out_pos += n;
                n = 0;
            }
        }
    }

    /// Events this connection needs from the next poll.
    fn interest(&self) -> i16 {
        let mut events = 0i16;
        let reading = (!self.busy && !self.close_after_flush && !self.stop_reading)
            || self.read_drain_until.is_some();
        if reading && !self.eof {
            events |= POLLIN;
        }
        if self.has_pending_out() {
            events |= POLLOUT;
        }
        events
    }
}

/// Runs the daemon until `cancel` fires, then drains.
///
/// `ready` is invoked once with the bound address (after `--addr` port 0
/// resolution) before the first accept — callers print or record it.
///
/// # Errors
/// [`ServeError`] when the listener cannot be set up; never for anything a
/// client does.
pub fn serve(
    cfg: &ServeConfig,
    registry: Arc<ModelRegistry>,
    cancel: &CancelToken,
    ready: impl FnOnce(SocketAddr),
) -> Result<ServeSummary, ServeError> {
    let listener = TcpListener::bind(cfg.addr).map_err(|e| ServeError::Bind(cfg.addr, e))?;
    listener
        .set_nonblocking(true)
        .map_err(ServeError::Listener)?;
    let addr = listener.local_addr().map_err(ServeError::Listener)?;

    registry.refresh();
    let refresher = Arc::new(Refresher::new(&cfg.model_dir, cfg.refresh.clone()));
    let shared = Arc::new(Shared {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        wake: WakePipe::new(),
        metrics: Metrics::new(),
        registry,
        refresher,
        request_deadline: cfg.request_deadline,
        allow_measure: cfg.allow_measure,
    });

    let workers: Vec<_> = (0..cfg.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    ready(addr);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_ids: Vec<u64> = Vec::new();
    let mut draining = false;
    let mut drain_deadline: Option<Deadline> = None;
    let mut drained = true;

    loop {
        // Shutdown edge: stop reading, flag every connection to finish
        // what is already buffered and close.
        if !draining && cancel.is_cancelled() {
            draining = true;
            drain_deadline = Some(Deadline::after(cfg.drain_deadline));
            // A connection accepted just before the signal may hold a
            // request in its socket buffer that no poll round has read
            // yet; surface and answer it rather than slam the door with
            // an RST the client sees as a failed exchange.
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if !conn.busy && !conn.close_after_flush && conn.read_drain_until.is_none() {
                    read_ready(conn);
                    if !conn.dead {
                        process_buffer(conn, id, &shared, cfg, true);
                        flush_out(conn);
                    }
                }
                begin_drain_close(conn);
            }
        }

        // Build the poll set: wake pipe, listener, every connection.
        pollfds.clear();
        poll_ids.clear();
        let wake_slots = match &shared.wake {
            Some(wake) if wake.read_fd() >= 0 => {
                pollfds.push(PollFd::new(wake.read_fd(), POLLIN));
                1
            }
            _ => 0,
        };
        let listener_slot = pollfds.len();
        pollfds.push(PollFd::new(poll::raw_fd(&listener), POLLIN));
        for (&id, conn) in &conns {
            pollfds.push(PollFd::new(poll::raw_fd(&conn.stream), conn.interest()));
            poll_ids.push(id);
        }
        poll::poll(&mut pollfds, POLL_TICK_MS);
        if let Some(wake) = &shared.wake {
            wake.drain();
        }

        // Worker completions → responses on their connections.
        let completions = std::mem::take(&mut *lock(&shared.completions));
        for completion in completions {
            if let Some(conn) = conns.get_mut(&completion.conn) {
                conn.busy = false;
                queue_response(
                    conn,
                    completion.response,
                    completion.wants_keep_alive,
                    cfg,
                    draining,
                );
                // Keep-alive pipelining: the client may have sent the
                // next request while the worker ran.
                process_buffer(conn, completion.conn, &shared, cfg, draining);
                flush_out(conn);
            }
        }

        // New connections.
        if pollfds[listener_slot].readable() {
            accept_pending(&listener, &mut conns, &mut next_id, &shared, draining);
        }

        // Per-connection I/O, driven by readiness.
        for (slot, &id) in poll_ids.iter().enumerate() {
            let fd = &pollfds[wake_slots + 1 + slot];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if fd.failed() {
                conn.dead = true;
                continue;
            }
            if fd.writable() {
                flush_out(conn);
            }
            if fd.readable() {
                read_ready(conn);
                if !conn.dead && conn.read_drain_until.is_none() {
                    process_buffer(conn, id, &shared, cfg, draining);
                    flush_out(conn);
                }
            }
        }

        // Deadline sweep: 408s, idle reaps, write stalls, close drains.
        let now = Instant::now();
        for conn in conns.values_mut() {
            sweep_deadlines(conn, now, cfg, &shared.metrics);
        }
        conns.retain(|_, conn| !conn.dead);

        if draining {
            let jobs_pending = !lock(&shared.jobs).is_empty();
            let conns_pending = conns
                .values()
                .any(|c| c.busy || c.has_pending_out() || c.read_drain_until.is_some());
            if !jobs_pending && !conns_pending {
                break;
            }
            if drain_deadline.as_ref().is_some_and(Deadline::expired) {
                drained = false;
                break;
            }
        }
    }

    drop(listener);
    shared.stop.store(true, Ordering::SeqCst);
    shared.ready.notify_all();
    // Workers are idle once the drain finished cleanly; a worker still
    // busy past the drain deadline is abandoned (the process exit reaps
    // it), exactly like the old engine.
    let grace = Instant::now() + Duration::from_millis(250);
    while workers.iter().any(|w| !w.is_finished()) && Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(5));
    }
    for worker in workers {
        if worker.is_finished() {
            let _ = worker.join();
        } else {
            drained = false;
        }
    }
    Ok(ServeSummary {
        requests: shared.metrics.requests(),
        rejected: shared.metrics.rejected(),
        drained,
    })
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Accepts everything the listener has ready. During the drain window,
/// new connections are answered `503`/draining-healthz inline; past
/// [`MAX_CONNS`], `503` + `Retry-After`.
fn accept_pending(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    shared: &Shared,
    draining: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if draining {
                    answer_draining(stream, shared);
                } else if conns.len() >= MAX_CONNS {
                    shared.metrics.record_rejected();
                    reject_overloaded(stream);
                } else {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    let id = *next_id;
                    *next_id += 1;
                    conns.insert(id, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            // Transient per-connection accept failures (ECONNABORTED and
            // friends) must not kill the daemon.
            Err(_) => return,
        }
    }
}

/// Drains the socket's receive buffer into `conn.buf` until `WouldBlock`.
fn read_ready(conn: &mut Conn) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                if conn.read_drain_until.is_none() {
                    conn.buf.extend_from_slice(&chunk[..n]);
                }
                // else: post-close drain — discard.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Parses and answers every complete request sitting in `conn.buf` —
/// the keep-alive/pipelining core. Stops when the buffer runs dry, a
/// worker takes over, or a response decided to close the connection.
fn process_buffer(conn: &mut Conn, id: u64, shared: &Shared, cfg: &ServeConfig, draining: bool) {
    while !conn.busy && !conn.close_after_flush {
        match parse_one(&conn.buf) {
            Ok(Some((request, consumed))) => {
                conn.buf.drain(..consumed);
                conn.header_deadline = None;
                handle_request(conn, id, request, shared, cfg, draining);
            }
            Ok(None) => break,
            Err(e) => {
                // Protocol error: answer and close; the rest of the
                // buffer is unparseable by definition.
                conn.buf.clear();
                conn.header_deadline = None;
                let response = Response::json(e.status, api::error_body(&e.reason).into_bytes());
                shared.metrics.record(response.status, Duration::ZERO);
                queue_response(conn, response, false, cfg, draining);
                break;
            }
        }
    }
    // A request has started arriving but is incomplete: arm the 408
    // slow-loris bound for it.
    if !conn.buf.is_empty() && !conn.busy && conn.header_deadline.is_none() {
        conn.header_deadline = Some(Instant::now() + shared.request_deadline);
    }
}

/// Routes one parsed request: inline dispatch for fast endpoints, the
/// worker pool (or a 503 shed) for slow ones.
fn handle_request(
    conn: &mut Conn,
    id: u64,
    request: Request,
    shared: &Shared,
    cfg: &ServeConfig,
    draining: bool,
) {
    conn.served += 1;
    if dispatch::needs_worker(&request) {
        let mut jobs = lock(&shared.jobs);
        if jobs.len() >= cfg.queue_depth {
            drop(jobs);
            shared.metrics.record_rejected();
            let mut response =
                Response::json(503, api::error_body("server is at capacity").into_bytes());
            response.retry_after = Some(1);
            queue_response(conn, response, request.wants_keep_alive(), cfg, draining);
        } else {
            jobs.push_back(Job {
                conn: id,
                request,
                started: Instant::now(),
            });
            drop(jobs);
            shared.ready.notify_one();
            conn.busy = true;
        }
        return;
    }
    let started = Instant::now();
    let wants_keep_alive = request.wants_keep_alive();
    let response = run_dispatch(&request, shared);
    shared.metrics.record(response.status, started.elapsed());
    queue_response(conn, response, wants_keep_alive, cfg, draining);
}

/// One dispatch under a fresh per-request deadline token, bracketed by
/// the in-flight gauge so `/healthz` sees itself being served.
fn run_dispatch(request: &Request, shared: &Shared) -> Response {
    let token = CancelToken::new().with_deadline(Deadline::after(shared.request_deadline));
    shared.metrics.begin_request();
    let state = dispatch::EngineState {
        queue_len: lock(&shared.jobs).len(),
        allow_measure: shared.allow_measure,
        refresher: Some(Arc::clone(&shared.refresher)),
    };
    let response = dispatch::dispatch(request, &shared.registry, &shared.metrics, &token, &state);
    shared.metrics.end_request();
    response
}

/// Applies the Connection negotiation and buffers the response bytes:
/// keep-alive only for a `2xx`/`3xx` answer the client wants kept open,
/// under the request cap. During the drain window the connection stays
/// open only while further complete pipelined requests are buffered —
/// they are owed an answer — and the last one closes.
fn queue_response(
    conn: &mut Conn,
    mut response: Response,
    wants_keep_alive: bool,
    cfg: &ServeConfig,
    draining: bool,
) {
    let more_buffered = matches!(parse_one(&conn.buf), Ok(Some(_)));
    let keep = response.status < 400
        && wants_keep_alive
        && conn.served < cfg.keep_alive_requests
        && (!draining || more_buffered);
    response.close = !keep;
    conn.queue_bytes(response);
    conn.last_activity = Instant::now();
    if !keep {
        conn.close_after_flush = true;
    }
}

/// Writes pending outbound segments until the socket blocks — one
/// gathering `writev(2)` per round, so a queued head + body pair leaves
/// in a single syscall; on completion of a closing response, shuts the
/// write side and enters the brief read-drain that lets the peer finish
/// reading before the FIN/close.
fn flush_out(conn: &mut Conn) {
    while conn.has_pending_out() {
        let bufs: Vec<&[u8]> = conn
            .out
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                if i == 0 {
                    &seg[conn.out_pos..]
                } else {
                    &seg[..]
                }
            })
            .collect();
        match poll::write_vectored(&mut conn.stream, &bufs) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.advance_out(n);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.close_after_flush && !conn.busy && conn.read_drain_until.is_none() {
        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
        conn.read_drain_until = Some(Instant::now() + READ_DRAIN);
    }
}

/// Applies the timers: post-close read drain, 408 header deadline, idle
/// reap, and the write-stall bound.
fn sweep_deadlines(conn: &mut Conn, now: Instant, cfg: &ServeConfig, metrics: &Metrics) {
    if let Some(until) = conn.read_drain_until {
        if conn.eof || now >= until {
            conn.dead = true;
        }
        return;
    }
    if conn.eof && !conn.busy && !conn.has_pending_out() {
        // Peer finished sending and nothing is owed: plain close.
        conn.dead = true;
        return;
    }
    if let Some(at) = conn.header_deadline {
        if now >= at && !conn.busy {
            conn.buf.clear();
            conn.header_deadline = None;
            let mut response = Response::json(
                408,
                api::error_body("request not received within the request deadline").into_bytes(),
            );
            response.close = true;
            metrics.record(response.status, cfg.request_deadline);
            conn.queue_bytes(response);
            conn.close_after_flush = true;
            flush_out(conn);
            return;
        }
    }
    let idle = !conn.busy
        && conn.buf.is_empty()
        && !conn.has_pending_out()
        && conn.header_deadline.is_none()
        && !conn.close_after_flush;
    if idle && now >= conn.last_activity + cfg.idle_deadline {
        // Quiet keep-alive connection past its welcome: silent close.
        conn.dead = true;
        return;
    }
    if conn.has_pending_out() && now >= conn.last_activity + cfg.request_deadline {
        // Peer stopped reading mid-response: stalled, drop it.
        conn.dead = true;
    }
}

/// Flags a connection at drain start: no more reads, answer what is
/// already buffered, then close. A connection with nothing pending
/// closes immediately.
fn begin_drain_close(conn: &mut Conn) {
    conn.stop_reading = true;
    if conn.busy
        || conn.has_pending_out()
        || !conn.buf.is_empty()
        || conn.read_drain_until.is_some()
    {
        return; // process_buffer/completions/sweeps will finish and close it.
    }
    conn.dead = true;
}

/// Answers 503 + `Retry-After` without reading the request: the
/// connection count already told us everything we need. The write side
/// is shut so the client sees a complete response even though its
/// request may be unread.
fn reject_overloaded(mut stream: TcpStream) {
    let mut response = Response::json(503, api::error_body("server is at capacity").into_bytes());
    response.retry_after = Some(1);
    let _ = stream.set_nodelay(true);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Answers a connection that arrived during the drain window: `503`
/// everywhere, with `GET /healthz` getting the structured
/// `"status":"draining"` body a router's prober keys off. The read is
/// bounded by a short timeout so a trickling client cannot wedge the
/// drain; a peer that never completes a request is simply dropped.
fn answer_draining(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; READ_CHUNK];
    let request = loop {
        match parse_one(&buf) {
            Ok(Some((request, _consumed))) => break request,
            Ok(None) => {}
            Err(_) => return,
        }
        if Instant::now() >= deadline {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    };
    let mut response = if request.method == "GET" && request.target == "/healthz" {
        Response::json(
            503,
            api::draining_health_body(
                lock(&shared.jobs).len(),
                shared.metrics.in_flight(),
                shared.registry.generation(),
            )
            .into_bytes(),
        )
    } else {
        Response::json(503, api::error_body("server is draining").into_bytes())
    };
    response.retry_after = Some(1);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Worker thread: slow requests only. Each runs under a fresh deadline
/// token; the finished response travels back to the event loop through
/// the completion list + wake pipe.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = lock(&shared.jobs);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(jobs, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        let response = run_dispatch(&job.request, shared);
        shared
            .metrics
            .record(response.status, job.started.elapsed());
        lock(&shared.completions).push(Completion {
            conn: job.conn,
            wants_keep_alive: job.request.wants_keep_alive(),
            response,
        });
        if let Some(wake) = &shared.wake {
            wake.notify();
        }
    }
}
