//! Exact reuse- and stack-distance computation over an access trace.
//!
//! Definitions follow Section II-A / Figure 1 of the paper:
//!
//! - **reuse distance** of an access: the number of accesses that occurred
//!   strictly between this access and the previous access to the same
//!   location;
//! - **stack distance**: the number of *unique* locations among those
//!   intervening accesses.
//!
//! First-touch (cold) accesses have no distance.
//!
//! The engine runs Olken-style order-statistics over a Fenwick tree indexed
//! by access time: each address contributes a single `1` at its
//! last-access position, so the number of distinct addresses touched in an
//! interval is a prefix-sum difference — `O(log T)` per access.

use std::collections::HashMap;

/// Distances of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessDistances {
    /// Reuse distance, `None` on first touch.
    pub reuse: Option<u64>,
    /// Stack distance, `None` on first touch.
    pub stack: Option<u64>,
}

impl AccessDistances {
    /// The cold-miss marker.
    pub const COLD: AccessDistances = AccessDistances {
        reuse: None,
        stack: None,
    };

    /// True if this was a first touch.
    pub fn is_cold(&self) -> bool {
        self.reuse.is_none()
    }
}

/// Fenwick tree (binary indexed tree) over access timestamps, grown on
/// demand. Point values are kept alongside the tree so the structure can be
/// rebuilt consistently when it doubles — an update path truncated at the
/// old length would otherwise never reach the new high-order nodes.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<i64>,
    raw: Vec<i64>,
}

impl Fenwick {
    fn ensure(&mut self, i: usize) {
        if self.raw.len() <= i {
            let new_len = (i + 1).next_power_of_two().max(64);
            self.raw.resize(new_len, 0);
            // Rebuild: O(n), amortized O(1) per insertion under doubling.
            self.tree = self.raw.clone();
            for j in 1..new_len {
                let parent = j + (j & j.wrapping_neg());
                if parent < new_len {
                    self.tree[parent] += self.tree[j];
                }
            }
        }
    }

    /// Adds `delta` at 1-based position `i`.
    fn add(&mut self, i: usize, delta: i64) {
        self.ensure(i);
        self.raw[i] += delta;
        let mut i = i;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        i = i.min(self.tree.len().saturating_sub(1));
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming reuse/stack-distance analyzer.
#[derive(Debug, Clone, Default)]
pub struct DistanceAnalyzer {
    /// Last access time (1-based) per address.
    last: HashMap<u64, u64>,
    /// Fenwick tree with a 1 at every address's last-access time.
    bit: Fenwick,
    /// Next timestamp (1-based so Fenwick indices stay positive).
    now: u64,
}

impl DistanceAnalyzer {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accesses processed.
    pub fn accesses(&self) -> u64 {
        self.now
    }

    /// Number of distinct addresses seen.
    pub fn distinct_addresses(&self) -> usize {
        self.last.len()
    }

    /// Processes one access and returns its distances.
    pub fn access(&mut self, addr: u64) -> AccessDistances {
        self.now += 1;
        let t = self.now;
        let out = match self.last.get(&addr).copied() {
            None => AccessDistances::COLD,
            Some(t0) => {
                let reuse = t - t0 - 1;
                // Distinct addresses whose last access lies strictly between
                // t0 and t. Position t is not yet set; position t0 is the
                // address itself and is excluded by the half-open range.
                let stack = (self.bit.prefix((t - 1) as usize) - self.bit.prefix(t0 as usize))
                    .max(0) as u64;
                AccessDistances {
                    reuse: Some(reuse),
                    stack: Some(stack),
                }
            }
        };
        if let Some(t0) = self.last.insert(addr, t) {
            self.bit.add(t0 as usize, -1);
        }
        self.bit.add(t as usize, 1);
        out
    }
}

/// Naive `O(T)`-per-access oracle with identical semantics, used to verify
/// the Fenwick engine in property tests.
#[derive(Debug, Clone, Default)]
pub struct NaiveAnalyzer {
    trace: Vec<u64>,
}

impl NaiveAnalyzer {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one access and returns its distances by direct scan.
    pub fn access(&mut self, addr: u64) -> AccessDistances {
        let out = match self.trace.iter().rposition(|&a| a == addr) {
            None => AccessDistances::COLD,
            Some(pos) => {
                let between = &self.trace[pos + 1..];
                let reuse = between.len() as u64;
                let mut uniq: Vec<u64> = between.to_vec();
                uniq.sort_unstable();
                uniq.dedup();
                AccessDistances {
                    reuse: Some(reuse),
                    stack: Some(uniq.len() as u64),
                }
            }
        };
        self.trace.push(addr);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a trace through the analyzer, returning (reuse, stack) pairs.
    fn run(trace: &[u64]) -> Vec<AccessDistances> {
        let mut a = DistanceAnalyzer::new();
        trace.iter().map(|&x| a.access(x)).collect()
    }

    #[test]
    fn first_touches_are_cold() {
        let d = run(&[1, 2, 3]);
        assert!(d.iter().all(|x| x.is_cold()));
    }

    #[test]
    fn immediate_reuse_is_zero() {
        let d = run(&[5, 5]);
        assert_eq!(d[1].reuse, Some(0));
        assert_eq!(d[1].stack, Some(0));
    }

    #[test]
    fn figure1_style_sequence() {
        // a b c b c c a — the second `a`: 5 accesses between, 2 unique
        // locations (b, c).
        let (a, b, c) = (1u64, 2, 3);
        let d = run(&[a, b, c, b, c, c, a]);
        let last = d[6];
        assert_eq!(last.reuse, Some(5));
        assert_eq!(last.stack, Some(2));
        // The second `b` (index 3): one access between (c), one unique.
        assert_eq!(d[3].reuse, Some(1));
        assert_eq!(d[3].stack, Some(1));
        // The third `c` (index 5): zero between.
        assert_eq!(d[5].reuse, Some(0));
        assert_eq!(d[5].stack, Some(0));
    }

    #[test]
    fn repeated_interleaving_differs() {
        // x y y y x: reuse of 2nd x = 3, stack = 1 (only y).
        let d = run(&[10, 20, 20, 20, 10]);
        assert_eq!(d[4].reuse, Some(3));
        assert_eq!(d[4].stack, Some(1));
    }

    #[test]
    fn counters_track_state() {
        let mut a = DistanceAnalyzer::new();
        a.access(1);
        a.access(2);
        a.access(1);
        assert_eq!(a.accesses(), 3);
        assert_eq!(a.distinct_addresses(), 2);
    }

    #[test]
    fn matches_naive_on_fixed_trace() {
        let trace: Vec<u64> = vec![1, 2, 3, 1, 2, 4, 4, 3, 1, 5, 2, 1, 1, 3, 5, 2];
        let mut fast = DistanceAnalyzer::new();
        let mut slow = NaiveAnalyzer::new();
        for &x in &trace {
            assert_eq!(fast.access(x), slow.access(x), "at access {x}");
        }
    }

    #[test]
    fn naive_matrix_multiply_distances() {
        // Section II-D: naive MMM, instruction group A has SD = RD = 2n in
        // the common case. Trace the address stream of C[i,j] loop body:
        // for k: load A[i,k], load B[k,j] (C kept in register).
        let n = 6u64;
        let mut a = DistanceAnalyzer::new();
        let addr_a = |i: u64, k: u64| i * n + k;
        let addr_b = |k: u64, j: u64| 1_000_000 + k * n + j;
        let mut a_dists: Vec<AccessDistances> = Vec::new();
        for i in 0..2 {
            // two rows suffice to exercise reuse of A
            for j in 0..n {
                for k in 0..n {
                    let d = a.access(addr_a(i, k));
                    if i == 0 && j >= 1 {
                        a_dists.push(d);
                    }
                    a.access(addr_b(k, j));
                }
            }
        }
        // Steady-state accesses to A (row 0, j ≥ 1) all have SD = RD = 2n−1
        // (n−1 remaining A's + n B's of the previous j-iteration … exactly
        // 2n−1 strictly-between accesses, all distinct).
        for d in &a_dists {
            assert_eq!(d.reuse, Some(2 * n - 1));
            assert_eq!(d.stack, Some(2 * n - 1));
        }
    }

    #[test]
    fn large_trace_is_consistent() {
        // Cyclic access over w addresses: steady-state RD = SD = w − 1.
        let w = 257u64;
        let mut a = DistanceAnalyzer::new();
        for round in 0..4 {
            for addr in 0..w {
                let d = a.access(addr);
                if round > 0 {
                    assert_eq!(d.reuse, Some(w - 1));
                    assert_eq!(d.stack, Some(w - 1));
                }
            }
        }
    }
}
