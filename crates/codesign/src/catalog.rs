//! The published Table II requirement models, encoded as PMNF values.
//!
//! The paper's co-design studies (Tables IV, V, VII) are computed *from*
//! Table II; encoding the published models verbatim lets the bench harness
//! regenerate those tables exactly, independently of our re-measured twin
//! models (which are compared shape-wise in experiment E1).
//!
//! Collective cost functions are mapped to their per-process PMNF shapes
//! under the reference algorithms of `exareq-sim`:
//! `Allreduce(p) → log2 p` (recursive doubling), `Bcast(p) → 1` (binomial
//! tree delivers each process one copy), `Alltoall(p) → p` (pairwise
//! exchange).

use crate::requirements::AppRequirements;
use exareq_core::pmnf::{Exponents, Model, Term};

fn e(poly: f64, log: f64) -> Exponents {
    Exponents::new(poly, log)
}

/// Builds a two-parameter model over `(p, n)` from `(coeff, p-exponents,
/// n-exponents)` triples plus a constant.
fn model(constant: f64, terms: &[(f64, Exponents, Exponents)]) -> Model {
    Model::new(
        constant,
        terms
            .iter()
            .map(|&(c, fp, fn_)| Term::new(c, vec![fp, fn_]))
            .collect(),
        vec!["p".to_string(), "n".to_string()],
    )
}

/// Kripke (Table II, first block).
pub fn kripke() -> AppRequirements {
    AppRequirements {
        name: "Kripke".to_string(),
        bytes_used: model(0.0, &[(1e5, e(0.0, 0.0), e(1.0, 0.0))]),
        flops: model(0.0, &[(1e7, e(0.0, 0.0), e(1.0, 0.0))]),
        comm_bytes: model(0.0, &[(1e4, e(0.0, 0.0), e(1.0, 0.0))]),
        loads_stores: model(
            0.0,
            &[
                (1e8, e(0.0, 0.0), e(1.0, 0.0)),
                (1e5, e(1.0, 0.0), e(1.0, 0.0)),
            ],
        ),
        stack_distance: model(100.0, &[]),
    }
}

/// LULESH (Table II, second block).
pub fn lulesh() -> AppRequirements {
    AppRequirements {
        name: "LULESH".to_string(),
        bytes_used: model(0.0, &[(1e5, e(0.0, 0.0), e(1.0, 1.0))]),
        flops: model(0.0, &[(1e5, e(0.25, 1.0), e(1.0, 1.0))]),
        comm_bytes: model(0.0, &[(1e3, e(0.25, 1.0), e(1.0, 0.0))]),
        loads_stores: model(0.0, &[(1e5, e(0.0, 1.0), e(1.0, 1.0))]),
        stack_distance: model(100.0, &[]),
    }
}

/// MILC (Table II, third block).
pub fn milc() -> AppRequirements {
    AppRequirements {
        name: "MILC".to_string(),
        bytes_used: model(0.0, &[(1e6, e(0.0, 0.0), e(1.0, 0.0))]),
        flops: model(
            0.0,
            &[
                (1e10, e(0.0, 0.0), e(1.0, 0.0)),
                (1e7, e(0.0, 1.0), e(1.0, 0.0)),
            ],
        ),
        // 1e4·Allreduce(p) + 1e4·Bcast(p) + 1e9·n
        comm_bytes: model(
            1e4, // Bcast(p) → constant per process
            &[
                (1e4, e(0.0, 1.0), e(0.0, 0.0)), // Allreduce(p) → log2 p
                (1e9, e(0.0, 0.0), e(1.0, 0.0)),
            ],
        ),
        loads_stores: model(
            1e11,
            &[
                (1e8, e(0.0, 0.0), e(1.0, 1.0)),
                (1e5, e(1.5, 0.0), e(0.0, 0.0)),
            ],
        ),
        stack_distance: model(0.0, &[(1e5, e(0.0, 0.0), e(1.0, 0.0))]),
    }
}

/// Relearn (Table II, fourth block).
pub fn relearn() -> AppRequirements {
    AppRequirements {
        name: "Relearn".to_string(),
        bytes_used: model(0.0, &[(1e6, e(0.0, 0.0), e(0.5, 0.0))]),
        // 1e3·n log n·log p + p
        flops: model(
            0.0,
            &[
                (1e3, e(0.0, 1.0), e(1.0, 1.0)),
                (1.0, e(1.0, 0.0), e(0.0, 0.0)),
            ],
        ),
        // 1e5·Allreduce(p) + 10·Alltoall(p) + 10·n
        comm_bytes: model(
            0.0,
            &[
                (1e5, e(0.0, 1.0), e(0.0, 0.0)),  // Allreduce → log2 p
                (10.0, e(1.0, 0.0), e(0.0, 0.0)), // Alltoall → p
                (10.0, e(0.0, 0.0), e(1.0, 0.0)),
            ],
        ),
        loads_stores: model(
            0.0,
            &[
                (1e6, e(0.0, 0.0), e(1.0, 1.0)),
                (1e5, e(1.0, 1.0), e(0.0, 0.0)),
            ],
        ),
        stack_distance: model(100.0, &[]),
    }
}

/// icoFoam (Table II, fifth block).
pub fn icofoam() -> AppRequirements {
    AppRequirements {
        name: "icoFoam".to_string(),
        // 1e3·n + 1e2·p·log p
        bytes_used: model(
            0.0,
            &[
                (1e3, e(0.0, 0.0), e(1.0, 0.0)),
                (1e2, e(1.0, 1.0), e(0.0, 0.0)),
            ],
        ),
        flops: model(0.0, &[(1e8, e(0.5, 0.0), e(1.5, 0.0))]),
        // n^0.5·Allreduce(p) + p^0.5·log p + n·p^0.375
        comm_bytes: model(
            0.0,
            &[
                (1.0, e(0.0, 1.0), e(0.5, 0.0)), // n^0.5 · Allreduce(p)
                (1.0, e(0.5, 1.0), e(0.0, 0.0)),
                (1.0, e(0.375, 0.0), e(1.0, 0.0)),
            ],
        ),
        loads_stores: model(0.0, &[(1e8, e(0.5, 1.0), e(1.0, 1.0))]),
        stack_distance: model(100.0, &[]),
    }
}

/// All five applications in Table II order.
pub fn paper_models() -> Vec<AppRequirements> {
    vec![kripke(), lulesh(), milc(), relearn(), icofoam()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_five_apps() {
        let apps = paper_models();
        assert_eq!(apps.len(), 5);
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"]
        );
    }

    #[test]
    fn kripke_values_match_table() {
        let k = kripke();
        // bytes(p=any, n=10) = 1e6
        assert_eq!(k.bytes_used.eval(&[8.0, 10.0]), 1e6);
        // loads(p=4, n=10) = 1e8·10 + 1e5·40 = 1.004e9
        assert_eq!(k.loads_stores.eval(&[4.0, 10.0]), 1e9 + 4e6);
    }

    #[test]
    fn lulesh_flop_is_multiplicative() {
        let l = lulesh();
        assert!(l.flops.has_multiplicative_interaction());
        // f(p=16, n=16) = 1e5 · 16·4 · 16^0.25·4 = 1e5·64·8 = 5.12e7
        let v = l.flops.eval(&[16.0, 16.0]);
        assert!((v - 1e5 * 64.0 * 8.0).abs() / v < 1e-12);
    }

    #[test]
    fn milc_flops_match_published_shape() {
        let m = milc();
        // f(p=2, n=1) = 1e10 + 1e7·1·log2(2) = 1.001e10
        assert_eq!(m.flops.eval(&[2.0, 1.0]), 1e10 + 1e7);
    }

    #[test]
    fn icofoam_footprint_depends_on_p() {
        let i = icofoam();
        let p_idx = i.bytes_used.param_index("p").unwrap();
        assert!(i.bytes_used.depends_on(p_idx));
        // Everyone else's footprint must not depend on p.
        for app in [kripke(), lulesh(), milc(), relearn()] {
            let idx = app.bytes_used.param_index("p").unwrap();
            assert!(!app.bytes_used.depends_on(idx), "{}", app.name);
        }
    }

    #[test]
    fn milc_stack_distance_grows_only_for_milc() {
        for app in paper_models() {
            let n_idx = app.stack_distance.param_index("n").unwrap();
            let grows = app.stack_distance.depends_on(n_idx);
            assert_eq!(grows, app.name == "MILC", "{}", app.name);
        }
    }
}
