//! Resilience study: how the requirement models of Table II degrade as the
//! simulated machine becomes faulty.
//!
//! The paper measures on a healthy cluster and needs one run per
//! configuration. At exascale, runs fail. This study injects deterministic
//! message faults (drops, corruption) and rank crashes into the measurement
//! sweeps and reports, per fault rate:
//!
//! - how many `(p, n)` configurations survive cleanly, finish degraded, or
//!   are lost outright (all ranks dead / aborted stall);
//! - whether the model generator still recovers the requirement models from
//!   the surviving points, and how many measurements it had to drop;
//! - how much of that damage retry-with-reseed buys back: the same fault
//!   rates, re-swept with up to two retries per configuration under fresh
//!   deterministic seeds.
//!
//! Run with `cargo run --release -p exareq-bench --bin resilience`.

use exareq::fleet::{run_fleet, FleetConfig};
use exareq::pipeline::model_requirements;
use exareq_apps::{
    run_survey_cancellable, survey_app_resilient, survey_app_with_faults, AppGrid, Kripke, MiniApp,
    Relearn, RetryPolicy,
};
use exareq_bench::{num, obj, write_report};
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_core::multiparam::MultiParamConfig;
use exareq_profile::journal::{SurveyJournal, SurveyManifest};
use exareq_profile::minijson::Json;
use exareq_serve::registry::Fitter;
use exareq_serve::{ModelRegistry, ServeConfig};
use exareq_sim::FaultPlan;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn grid() -> AppGrid {
    AppGrid {
        p_values: vec![2, 4, 8, 16, 32],
        n_values: vec![16, 32, 64, 128, 256],
    }
}

fn study(out: &mut String, app: &dyn MiniApp, label: &str, plan: &FaultPlan) {
    let g = grid();
    let total = g.p_values.len() * g.n_values.len();
    let survey = survey_app_with_faults(app, &g, plan);
    let degraded = survey.degraded_configs().len();
    let skipped = survey.skipped.len();
    let clean = total - degraded - skipped;
    let verdict = match model_requirements(&survey, &MultiParamConfig::coarse()) {
        Ok(m) => {
            let flops = m.requirements.flops.dominant_exponents(1);
            let comm = m.requirements.comm_bytes.dominant_exponents(1);
            format!(
                "model ok ({} dropped)  FLOP ~ {}, comm ~ {}",
                m.dropped.len(),
                flops.render("n").unwrap_or_else(|| "1".into()),
                comm.render("n").unwrap_or_else(|| "1".into()),
            )
        }
        Err(e) => format!("MODEL LOST: {e}"),
    };
    out.push_str(&format!(
        "{label:<24} clean {clean:>2}/{total}  degraded {degraded:>2}  lost {skipped:>2}   {verdict}\n"
    ));
}

/// An in-process `exareq serve --allow-measure` fleet worker on an
/// ephemeral loopback port; "killing" it cancels its token, which closes
/// the listener so every later connect is refused — the same signature a
/// crashed worker process leaves behind.
struct FleetWorker {
    addr: String,
    cancel: CancelToken,
}

fn spawn_fleet_worker(model_dir: &std::path::Path) -> FleetWorker {
    let no_fit: Box<Fitter> = Box::new(|_| Err("fleet workers measure, not fit".to_string()));
    let registry = Arc::new(ModelRegistry::new(model_dir, no_fit));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 2,
        queue_depth: 16,
        request_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_millis(200),
        model_dir: model_dir.to_path_buf(),
        allow_measure: true,
        keep_alive_requests: 1000,
        idle_deadline: Duration::from_secs(5),
        refresh: Default::default(),
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            let _ = exareq_serve::serve(&cfg, registry, &cancel, move |a| {
                let _ = tx.send(a);
            });
        });
    }
    FleetWorker {
        addr: rx.recv().expect("worker ready").to_string(),
        cancel,
    }
}

/// Fleet-resilience study: the same sharded sweep with 0, 1, then 2 of 2
/// workers killed mid-run; reports completion time, re-dispatch count,
/// and whether the merged survey stayed identical to a sequential run.
fn fleet_resilience(out: &mut String) {
    out.push_str("\n-- Fleet resilience: sharded sweep under worker kills (2 workers) --\n");
    let g = AppGrid {
        p_values: vec![2, 4, 8, 16],
        n_values: vec![16, 64, 128, 256],
    };
    let fault_spec = "seed=7,drop=0.001";
    let plan = FaultPlan::parse(fault_spec).expect("valid fault spec");
    let retry = RetryPolicy::retries(1);
    let baseline = survey_app_resilient(&Relearn, &g, &plan, &retry);

    let mdir = std::env::temp_dir().join(format!("exareq_fleet_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&mdir);
    std::fs::create_dir_all(&mdir).expect("worker model dir");

    let mut rows = Vec::new();
    for kills in [0usize, 1, 2] {
        let workers = [spawn_fleet_worker(&mdir), spawn_fleet_worker(&mdir)];
        let cfg = FleetConfig {
            workers: workers.iter().map(|w| w.addr.clone()).collect(),
            shard_size: 1,
            // Stretch each shard so a kill at 150ms lands mid-sweep.
            hold_ms: 40,
            ..FleetConfig::default()
        };
        let killer = {
            let victims: Vec<CancelToken> = workers
                .iter()
                .take(kills)
                .map(|w| w.cancel.clone())
                .collect();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                for v in &victims {
                    v.cancel(CancelReason::Interrupt);
                }
            })
        };
        let t0 = Instant::now();
        let (survey, report) = run_fleet(
            &Relearn,
            &g,
            &plan,
            fault_spec,
            &retry,
            None,
            &CancelToken::new(),
            &cfg,
        )
        .expect("fleet sweep completes even with dead workers");
        let seconds = t0.elapsed().as_secs_f64();
        killer.join().expect("killer thread");
        for w in &workers {
            w.cancel.cancel(CancelReason::Interrupt);
        }
        let identical = survey == baseline;
        assert!(identical, "fleet survey diverged at kills={kills}");
        if kills == 0 {
            assert!(!report.fallback, "a healthy fleet must not fall back");
        }
        out.push_str(&format!(
            "kills={kills}: {seconds:.2}s, redispatches {}, fallback shards {}, \
             identical to sequential: {identical}\n",
            report.redispatches, report.fallback_shards,
        ));
        rows.push(obj(vec![
            ("kills", num(kills as f64)),
            ("seconds", num(seconds)),
            ("redispatches", num(report.redispatches as f64)),
            ("duplicates_dropped", num(report.duplicates_dropped as f64)),
            ("fallback", Json::Bool(report.fallback)),
            ("fallback_shards", num(report.fallback_shards as f64)),
            ("identical", Json::Bool(identical)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&mdir);
    let bench = obj(vec![
        ("schema", num(1.0)),
        ("app", Json::Str("Relearn".to_string())),
        ("workers", num(2.0)),
        ("shards", num(16.0)),
        ("rounds", Json::Arr(rows)),
    ]);
    write_report("BENCH_fleet.json", &bench.to_line());
}

fn main() {
    let mut out = String::new();
    out.push_str("== Resilience: requirement models under injected faults ==\n");
    out.push_str(&format!(
        "(grid {:?} x {:?})\n",
        grid().p_values,
        grid().n_values
    ));

    out.push_str("\n-- Kripke, message-drop sweep (collectives stall and are aborted) --\n");
    for (i, rate) in [0.0, 1e-4, 1e-3, 5e-3, 1e-2].into_iter().enumerate() {
        let plan = FaultPlan::with_seed(0xFA17 + i as u64).drop(rate);
        study(&mut out, &Kripke, &format!("drop={rate:.0e}"), &plan);
    }

    out.push_str("\n-- Kripke, payload-corruption sweep (runs finish but are flagged) --\n");
    for (i, rate) in [0.0, 1e-3, 5e-3, 1e-2, 5e-2].into_iter().enumerate() {
        let plan = FaultPlan::with_seed(0x0C0 + i as u64).corrupt(rate, 2);
        study(&mut out, &Kripke, &format!("corrupt={rate:.0e}"), &plan);
    }

    out.push_str("\n-- Relearn, single rank crash (cascades through the collectives) --\n");
    for at_op in [1u64, 64, 128, 256] {
        let plan = FaultPlan::with_seed(0xDEAD).crash(1, at_op);
        study(&mut out, &Relearn, &format!("crash rank1@op{at_op}"), &plan);
    }

    out.push_str("\n-- Retry-with-reseed: same fault rates, up to 2 retries per config --\n");
    let retry = RetryPolicy::retries(2);
    let mut base_damage = 0usize;
    let mut retry_damage = 0usize;
    for (i, rate) in [1e-4, 1e-3, 5e-3, 1e-2].into_iter().enumerate() {
        let plan = FaultPlan::with_seed(0xFA17 + 1 + i as u64).drop(rate);
        let g = grid();
        let total = g.p_values.len() * g.n_values.len();
        let baseline = survey_app_with_faults(&Kripke, &g, &plan);
        let retried = survey_app_resilient(&Kripke, &g, &plan, &retry);
        let damage = |s: &exareq_profile::Survey| s.degraded_configs().len() + s.skipped.len();
        base_damage += damage(&baseline);
        retry_damage += damage(&retried);
        out.push_str(&format!(
            "drop={rate:.0e}               no-retry: degraded+lost {:>2}/{total}   \
             retries=2: degraded+lost {:>2}/{total}\n",
            damage(&baseline),
            damage(&retried),
        ));
    }
    out.push_str(&format!(
        "aggregate damaged configs: {base_damage} without retries, {retry_damage} with; \
         probabilistic faults are cleared by reseeded re-runs while\n\
         deterministic crash points correctly persist (a retry cannot\n\
         un-crash a rank that always dies at the same op).\n"
    ));
    assert!(
        retry_damage < base_damage,
        "retry sweep must record strictly fewer degraded/skipped configs \
         ({retry_damage} vs {base_damage})"
    );

    out.push_str("\n-- Preemption-identity: cancel at config k, resume, compare artifacts --\n");
    {
        let g = grid();
        let plan = FaultPlan::with_seed(0x9E).drop(1e-3);
        let retry = RetryPolicy::retries(1);
        let manifest = SurveyManifest::new(
            "Relearn",
            g.p_values.iter().map(|&p| p as u64).collect(),
            g.n_values.clone(),
            "bench-preempt",
        );
        let uninterrupted = survey_app_resilient(&Relearn, &g, &plan, &retry);
        let baseline_json = uninterrupted.to_json();
        let dir = std::env::temp_dir().join("exareq_bench_preempt");
        std::fs::create_dir_all(&dir).expect("create bench temp dir");
        for k in [1u64, 5, 12, 24] {
            let path = dir.join(format!("cancel_at_{k}.jsonl"));
            let _ = std::fs::remove_file(&path);

            // The probe budget is the deterministic preemption lever:
            // exactly k configs are measured and journaled, then the token
            // fires at the next checkpoint — no timing races.
            let mut j = SurveyJournal::create(&path, manifest.clone()).expect("create journal");
            let token = CancelToken::with_budget(k);
            run_survey_cancellable(&Relearn, &g, &plan, &retry, Some(&mut j), &token)
                .expect_err("budgeted sweep must cancel");
            drop(j);

            let mut j = SurveyJournal::resume(&path, &manifest).expect("resume journal");
            let journaled = j.entries().len() as u64;
            let resumed = run_survey_cancellable(
                &Relearn,
                &g,
                &plan,
                &retry,
                Some(&mut j),
                &CancelToken::new(),
            )
            .expect("resumed sweep completes");
            let identical = resumed == uninterrupted && resumed.to_json() == baseline_json;
            out.push_str(&format!(
                "cancel@{k:>2}: journaled {journaled:>2} configs, resumed artifact \
                 byte-identical: {identical}\n"
            ));
            assert_eq!(journaled, k, "probe budget must journal exactly k configs");
            assert!(identical, "preemption-identity violated at k={k}");
        }

        // Clean-run overhead of the cancellation probes: the same sweep
        // with no token anywhere vs. a live (never-fired) token threaded
        // through driver and simulator.
        let t0 = Instant::now();
        let plain = survey_app_with_faults(&Relearn, &g, &plan);
        let t_plain = t0.elapsed();
        let t1 = Instant::now();
        let probed = run_survey_cancellable(
            &Relearn,
            &g,
            &plan,
            &RetryPolicy::default(),
            None,
            &CancelToken::new(),
        )
        .expect("live token must not cancel");
        let t_probed = t1.elapsed();
        assert_eq!(plain, probed, "a live token must not perturb the survey");
        out.push_str(&format!(
            "clean-run probe overhead: plain sweep {:.2?}, probed sweep {:.2?} \
             (ratio {:.3})\n",
            t_plain,
            t_probed,
            t_probed.as_secs_f64() / t_plain.as_secs_f64().max(1e-9),
        ));
    }

    fleet_resilience(&mut out);

    out.push_str(
        "\nReading: the generator tolerates lost configurations gracefully —\n\
         models survive (with identical lead terms) as long as enough clean\n\
         points remain per parameter, and every excluded measurement is\n\
         reported rather than silently fitted. Once faults claim most of a\n\
         sweep the min-points guard refuses to extrapolate from the rest.\n\
         Survival depends on WHICH configurations are hit, not just the\n\
         rate: per-link fault streams make a given seed strike the same\n\
         links in every configuration, so nearby rates can differ sharply.\n",
    );
    print!("{out}");
    write_report("resilience.txt", &out);
}
