//! Measurement containers used as input to model generation.
//!
//! An [`Experiment`] holds observations of one metric at several coordinates
//! in the parameter space (e.g. `(p, n)` grids). The paper's rule of thumb
//! (Section II-C) asks for at least five values per parameter — 25 runs for
//! the two-parameter studies; [`Experiment::is_adequate`] checks this.

use serde::{Deserialize, Serialize};

/// Minimum number of distinct values per parameter recommended by the paper.
pub const MIN_POINTS_PER_PARAM: usize = 5;

/// One observation: coordinates in parameter space and the measured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Parameter coordinates, aligned with [`Experiment::params`].
    pub coords: Vec<f64>,
    /// Observed metric value.
    pub value: f64,
    /// True when the observation comes from a degraded run (rank crashes,
    /// injected message faults, watchdog aborts) and must not feed a fit.
    /// Absent in pre-fault-layer JSON, hence the serde default.
    #[serde(default)]
    pub flagged: bool,
}

/// A set of measurements of a single metric over a parameter space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Parameter names, defining coordinate order (e.g. `["p", "n"]`).
    pub params: Vec<String>,
    /// Observations; repetitions (same coordinates) are allowed.
    pub points: Vec<Measurement>,
}

impl Experiment {
    /// Creates an empty experiment over the given parameters.
    pub fn new<S: Into<String>>(params: Vec<S>) -> Self {
        Experiment {
            params: params.into_iter().map(Into::into).collect(),
            points: Vec::new(),
        }
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics if `coords.len()` differs from the parameter count.
    pub fn push(&mut self, coords: &[f64], value: f64) {
        assert_eq!(coords.len(), self.params.len(), "coordinate arity");
        self.points.push(Measurement {
            coords: coords.to_vec(),
            value,
            flagged: false,
        });
    }

    /// Adds one observation from a degraded run. Flagged points are kept
    /// for reporting but excluded from fitting by [`Experiment::split_clean`].
    ///
    /// # Panics
    /// Panics if `coords.len()` differs from the parameter count.
    pub fn push_flagged(&mut self, coords: &[f64], value: f64) {
        assert_eq!(coords.len(), self.params.len(), "coordinate arity");
        self.points.push(Measurement {
            coords: coords.to_vec(),
            value,
            flagged: true,
        });
    }

    /// Splits into (clean experiment, flagged measurements): the clean part
    /// carries every unflagged point and is what fitting should consume;
    /// the flagged remainder is returned so callers can report exactly
    /// which measurements were dropped.
    pub fn split_clean(&self) -> (Experiment, Vec<Measurement>) {
        let mut clean = Experiment::new(self.params.clone());
        let mut dropped = Vec::new();
        for m in &self.points {
            if m.flagged {
                dropped.push(m.clone());
            } else {
                clean.points.push(m.clone());
            }
        }
        (clean, dropped)
    }

    /// Builds an experiment by evaluating `f` over the cross product of the
    /// per-parameter coordinate lists (the synthetic-workload helper used in
    /// tests and ablations).
    pub fn from_fn<S: Into<String>>(
        params: Vec<S>,
        axes: &[&[f64]],
        mut f: impl FnMut(&[f64]) -> f64,
    ) -> Self {
        let mut exp = Experiment::new(params);
        assert_eq!(exp.arity(), axes.len(), "one axis per parameter");
        let mut idx = vec![0usize; axes.len()];
        'outer: loop {
            let coords: Vec<f64> = idx.iter().zip(axes).map(|(&i, ax)| ax[i]).collect();
            let v = f(&coords);
            exp.push(&coords, v);
            // Odometer increment.
            for k in (0..axes.len()).rev() {
                idx[k] += 1;
                if idx[k] < axes[k].len() {
                    continue 'outer;
                }
                idx[k] = 0;
                if k == 0 {
                    break 'outer;
                }
            }
            if axes.is_empty() {
                break;
            }
        }
        exp
    }

    /// Distinct sorted values observed for parameter `param`.
    pub fn axis_values(&self, param: usize) -> Vec<f64> {
        let mut vals: Vec<f64> = self.points.iter().map(|m| m.coords[param]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        vals
    }

    /// True if every parameter has at least [`MIN_POINTS_PER_PARAM`] distinct
    /// values — the paper's minimum experiment design.
    pub fn is_adequate(&self) -> bool {
        (0..self.arity()).all(|k| self.axis_values(k).len() >= MIN_POINTS_PER_PARAM)
    }

    /// Restricts to the subset where every parameter except `param` sits at
    /// its minimum observed value, and projects to a single-parameter
    /// experiment. This is how the multi-parameter algorithm obtains its
    /// per-parameter model candidates.
    pub fn slice_for_param(&self, param: usize) -> Experiment {
        let mins: Vec<f64> = (0..self.arity())
            .map(|k| self.axis_values(k).first().copied().unwrap_or(f64::NAN))
            .collect();
        let mut out = Experiment::new(vec![self.params[param].clone()]);
        for m in &self.points {
            let on_slice = m
                .coords
                .iter()
                .enumerate()
                .all(|(k, &v)| k == param || v == mins[k]);
            if on_slice {
                out.push(&[m.coords[param]], m.value);
            }
        }
        out
    }

    /// Merges repeated observations at identical coordinates using the given
    /// aggregator (mean for deterministic counters; median recommended by the
    /// paper for locality samples).
    pub fn aggregated(&self, how: Aggregation) -> Experiment {
        let mut groups: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        for m in &self.points {
            match groups.iter_mut().find(|(c, _)| c == &m.coords) {
                Some((_, vals)) => vals.push(m.value),
                None => groups.push((m.coords.clone(), vec![m.value])),
            }
        }
        let mut out = Experiment::new(self.params.clone());
        for (coords, mut vals) in groups {
            let v = match how {
                Aggregation::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                Aggregation::Median => {
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let mid = vals.len() / 2;
                    if vals.len() % 2 == 1 {
                        vals[mid]
                    } else {
                        0.5 * (vals[mid - 1] + vals[mid])
                    }
                }
            };
            out.push(&coords, v);
        }
        out
    }

    /// Applies multiplicative noise `value · (1 + ε)`, ε uniform in
    /// `[-level, level]`, using a caller-supplied uniform sampler. Used by
    /// the robustness ablation (A2).
    pub fn with_noise(&self, level: f64, mut uniform: impl FnMut() -> f64) -> Experiment {
        let mut out = self.clone();
        for m in &mut out.points {
            let eps = (uniform() * 2.0 - 1.0) * level;
            m.value *= 1.0 + eps;
        }
        out
    }
}

/// How to merge repeated observations at the same coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean.
    Mean,
    /// Median — the paper's choice for locality samples (Section II-B),
    /// robust against the outliers of loop-boundary accesses.
    Median,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_builds_full_grid() {
        let exp = Experiment::from_fn(vec!["p", "n"], &[&[2.0, 4.0], &[10.0, 20.0, 30.0]], |c| {
            c[0] * c[1]
        });
        assert_eq!(exp.points.len(), 6);
        assert_eq!(exp.axis_values(0), vec![2.0, 4.0]);
        assert_eq!(exp.axis_values(1), vec![10.0, 20.0, 30.0]);
        assert!(exp
            .points
            .iter()
            .all(|m| (m.value - m.coords[0] * m.coords[1]).abs() < 1e-12));
    }

    #[test]
    fn adequacy_requires_five_values_per_axis() {
        let small = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0, 3.0, 4.0]], |c| c[0]);
        assert!(!small.is_adequate());
        let ok = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0, 3.0, 4.0, 5.0]], |c| c[0]);
        assert!(ok.is_adequate());
    }

    #[test]
    fn slice_holds_other_params_at_min() {
        let exp = Experiment::from_fn(vec!["p", "n"], &[&[2.0, 4.0, 8.0], &[1.0, 2.0]], |c| {
            c[0] * 100.0 + c[1]
        });
        let sp = exp.slice_for_param(0);
        assert_eq!(sp.params, vec!["p".to_string()]);
        assert_eq!(sp.points.len(), 3); // n fixed at 1.0
        assert!(sp
            .points
            .iter()
            .all(|m| (m.value - (m.coords[0] * 100.0 + 1.0)).abs() < 1e-12));
        let sn = exp.slice_for_param(1);
        assert_eq!(sn.points.len(), 2); // p fixed at 2.0
    }

    #[test]
    fn aggregation_mean_and_median() {
        let mut exp = Experiment::new(vec!["p"]);
        exp.push(&[2.0], 1.0);
        exp.push(&[2.0], 3.0);
        exp.push(&[2.0], 100.0); // outlier
        exp.push(&[4.0], 5.0);
        let mean = exp.aggregated(Aggregation::Mean);
        let median = exp.aggregated(Aggregation::Median);
        let at2 = |e: &Experiment| e.points.iter().find(|m| m.coords[0] == 2.0).unwrap().value;
        assert!((at2(&mean) - 104.0 / 3.0).abs() < 1e-12);
        assert_eq!(at2(&median), 3.0); // robust to the outlier
        assert_eq!(mean.points.len(), 2);
    }

    #[test]
    fn median_of_even_count() {
        let mut exp = Experiment::new(vec!["p"]);
        exp.push(&[2.0], 1.0);
        exp.push(&[2.0], 3.0);
        let med = exp.aggregated(Aggregation::Median);
        assert_eq!(med.points[0].value, 2.0);
    }

    #[test]
    fn noise_is_bounded() {
        let exp = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0, 3.0]], |c| 100.0 * c[0]);
        // Deterministic "uniform" sampler cycling through fixed values.
        let seq = [0.0, 0.5, 1.0];
        let mut i = 0;
        let noisy = exp.with_noise(0.1, || {
            let v = seq[i % 3];
            i += 1;
            v
        });
        for (orig, n) in exp.points.iter().zip(&noisy.points) {
            let rel = (n.value - orig.value).abs() / orig.value;
            assert!(rel <= 0.1 + 1e-12, "rel {rel}");
        }
        // ε for sampler value 0.0 is −level.
        assert!((noisy.points[0].value - 90.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coordinate arity")]
    fn push_checks_arity() {
        let mut exp = Experiment::new(vec!["p", "n"]);
        exp.push(&[1.0], 2.0);
    }

    #[test]
    fn serde_roundtrip() {
        let exp = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0]], |c| c[0]);
        let s = serde_json::to_string(&exp).unwrap();
        let back: Experiment = serde_json::from_str(&s).unwrap();
        assert_eq!(exp, back);
    }

    #[test]
    fn split_clean_separates_flagged_points() {
        let mut exp = Experiment::new(vec!["p"]);
        exp.push(&[2.0], 10.0);
        exp.push_flagged(&[4.0], 17.0);
        exp.push(&[8.0], 40.0);
        let (clean, dropped) = exp.split_clean();
        assert_eq!(clean.points.len(), 2);
        assert!(clean.points.iter().all(|m| !m.flagged));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].coords, vec![4.0]);
        assert_eq!(dropped[0].value, 17.0);
    }

    #[test]
    fn pre_fault_layer_json_defaults_to_unflagged() {
        let m: Measurement = serde_json::from_str(r#"{"coords":[2.0],"value":5.0}"#).unwrap();
        assert!(!m.flagged);
    }
}
