//! Std-only HTTP/1.1 client for the fleet coordinator and query router.
//!
//! Both talk to `exareq serve` daemons over the same wire format, so the
//! client is the mirror image of `crates/serve/src/http.rs`: request
//! line plus `Content-Length` body out, status line + headers + body
//! back. Four properties matter more than generality:
//!
//! - **Bounded everything.** Connects use [`TcpStream::connect_timeout`],
//!   writes carry a socket write timeout, reads happen in short timeout
//!   slices under a per-exchange deadline, and response heads/bodies have
//!   hard size caps with typed [`ClientError::OversizedResponse`] errors.
//!   On top of the per-attempt limits sits a **total request budget**
//!   spanning every retry and backoff of one logical request, so N
//!   attempts can never sum past the caller's intent. When a deadline
//!   expires, the error names the phase — connect, write, or read — and
//!   the shared [`NetMetrics`] counts it.
//! - **No stale reads.** A half-delivered answer is never committed: a
//!   promised `Content-Length` that the wire cuts short is a typed
//!   [`ClientError::TruncatedResponse`], and when the server stamps an
//!   `X-Exareq-Digest` body checksum (every exareq daemon does) the client
//!   re-hashes the body and fails the exchange on mismatch — a corrupted
//!   200 surfaces as [`ClientError::Integrity`], never as data.
//! - **Cancellable everywhere.** Every wait — connect retry backoff,
//!   read slice, `Retry-After` sleep — polls a
//!   [`CancelToken`](exareq_core::cancel::CancelToken) so Ctrl-C and
//!   coordinator wind-down interrupt in-flight I/O within ~one slice.
//! - **Polite retries.** [`HttpClient::post_with_retry`] retries transport
//!   errors and 503/504 answers under a fixed attempt budget with jittered
//!   exponential backoff, and when the server names a price — a
//!   `Retry-After` header — the client pays exactly that instead of its
//!   own schedule.
//! - **Keep-alive pooling, poison-safe.** POSTs ride a small per-host
//!   pool of keep-alive connections ([`POOL_MAX_IDLE_PER_HOST`],
//!   [`POOL_IDLE_TTL`]); a connection is parked back only when the
//!   exchange left it provably clean (server agreed to keep-alive and the
//!   body was `Content-Length`-delimited) and is dropped on *any* error —
//!   a poisoned connection is never reused. A recycled connection the
//!   server closed between requests fails before any response byte and is
//!   retried transparently on a fresh connection. GET probes stay
//!   one-shot (`Connection: close`): a health check should measure a
//!   fresh connection, not a cached one.

use exareq_core::cancel::CancelToken;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{NetMetrics, Phase};

/// Largest response head (status line + headers) the client will buffer.
pub const MAX_RESPONSE_HEAD: usize = 16 * 1024;

/// Largest response body the client will buffer (measurement shards can
/// carry thousands of journal entries, so this is far above `/predict`
/// sizes but still a hard stop against a babbling server).
pub const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// Ceiling on an honored `Retry-After` value, seconds. A misconfigured
/// worker must not be able to park the coordinator for an hour.
pub const MAX_RETRY_AFTER_SECS: u64 = 30;

/// Granularity of cancellable waits: read slices and backoff sleeps.
const SLICE: Duration = Duration::from_millis(50);

/// Idle keep-alive connections kept per host. Small on purpose: the
/// router opens at most a few lanes per replica, and anything beyond
/// that is better closed than hoarded.
pub const POOL_MAX_IDLE_PER_HOST: usize = 4;

/// An idle pooled connection older than this is presumed dead (the serve
/// daemon reaps idle keep-alive connections at its own deadline) and is
/// dropped instead of reused.
pub const POOL_IDLE_TTL: Duration = Duration::from_secs(2);

/// Tuning for one [`HttpClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Wall-clock budget for one exchange attempt (write + read).
    pub exchange_deadline: Duration,
    /// Attempts per [`HttpClient::post_with_retry`] call (including the
    /// first); clamped to at least 1.
    pub retry_budget: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub jitter_seed: u64,
    /// Total wall-clock budget for one *logical* request — every attempt,
    /// backoff, and `Retry-After` sleep of one `post_with_retry` call (and
    /// a ceiling on single exchanges too). `None` derives the worst case
    /// from the per-attempt limits, so the budget always exists; setting
    /// it explicitly tightens the guarantee to the caller's intent.
    pub request_budget: Option<Duration>,
    /// Require an `X-Exareq-Digest` header on every 200. All exareq
    /// daemons stamp one; the router and fleet turn this on so a corrupted
    /// or truncated 200 from a misbehaving middlebox can never be
    /// committed, even when the corruption also destroyed the header.
    pub require_digest: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            exchange_deadline: Duration::from_secs(30),
            retry_budget: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            request_budget: None,
            require_digest: false,
        }
    }
}

impl ClientConfig {
    /// The enforced total budget: the explicit `request_budget`, or the
    /// worst case the per-attempt limits already permitted (attempts ×
    /// (connect + exchange + backoff cap)) — preserving prior semantics
    /// while guaranteeing every request has *some* hard ceiling.
    pub fn effective_budget(&self) -> Duration {
        if let Some(budget) = self.request_budget {
            return budget.max(Duration::from_millis(1));
        }
        let attempts = self.retry_budget.max(1);
        (self.connect_timeout + self.exchange_deadline + self.backoff_cap).saturating_mul(attempts)
    }
}

/// Why an exchange failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not resolve or connect (refused, unreachable, ...).
    Connect(String),
    /// Read/write failed mid-exchange.
    Io(String),
    /// The bytes on the wire were not a well-formed HTTP/1.1 response.
    Protocol(String),
    /// The wire ended before the promised `Content-Length` — a
    /// half-delivered response that must not be committed.
    TruncatedResponse {
        /// Total message bytes the head promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The response head or body exceeded the client's hard size cap.
    OversizedResponse {
        /// The cap that was exceeded, in bytes.
        limit: usize,
    },
    /// The response body failed (or was missing) its integrity digest.
    Integrity(String),
    /// A deadline elapsed; the phase names where the time went.
    Timeout(Phase),
    /// The cancel token fired mid-exchange or mid-backoff.
    Cancelled,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::TruncatedResponse { expected, got } => {
                write!(f, "truncated response: {got} of {expected} bytes")
            }
            ClientError::OversizedResponse { limit } => {
                write!(f, "response exceeds {limit}-byte cap")
            }
            ClientError::Integrity(e) => write!(f, "integrity: {e}"),
            ClientError::Timeout(phase) => write!(f, "deadline elapsed in {phase} phase"),
            ClientError::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs in wire order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `Retry-After` in whole seconds, if present and integral.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// One idle keep-alive connection parked between POSTs.
struct PooledConn {
    stream: TcpStream,
    idle_since: Instant,
}

/// Std-only HTTP/1.1 client with bounded, cancellable exchanges and a
/// small keep-alive connection pool for POSTs.
pub struct HttpClient {
    cfg: ClientConfig,
    /// splitmix64 state for backoff jitter.
    rng: Mutex<u64>,
    metrics: Arc<NetMetrics>,
    /// Idle keep-alive connections, keyed by host:port. Only POSTs pool:
    /// GET probes deliberately stay one-shot (`Connection: close`) so a
    /// health check always measures a *fresh* connection, not a cached
    /// one — and so probe traffic keeps its historical wire shape.
    pool: Mutex<HashMap<String, Vec<PooledConn>>>,
}

/// How one request attempt on one particular connection ended.
enum AttemptError {
    /// A *reused* connection failed before a single response byte
    /// arrived — the server closed it between requests. Safe to retry
    /// transparently on a fresh connection.
    StaleReuse,
    /// A real failure that must surface to the caller.
    Fatal(ClientError),
}

impl HttpClient {
    /// Build a client with the given tuning.
    pub fn new(cfg: ClientConfig) -> Self {
        let rng = Mutex::new(cfg.jitter_seed | 1);
        HttpClient {
            cfg,
            rng,
            metrics: Arc::new(NetMetrics::new()),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// The shared phase-timeout counters this client feeds.
    pub fn metrics(&self) -> Arc<NetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// One `GET` exchange, no retries. Probes use this: a health check
    /// that needs a retry budget is already an answer.
    pub fn get(
        &self,
        addr: &str,
        target: &str,
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        let budget = Instant::now() + self.cfg.effective_budget();
        self.exchange(addr, "GET", target, b"", cancel, budget)
    }

    /// One `POST` exchange, no retries.
    pub fn post(
        &self,
        addr: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        let budget = Instant::now() + self.cfg.effective_budget();
        self.exchange(addr, "POST", target, body, cancel, budget)
    }

    /// `POST` with the retry budget applied to transport errors and
    /// 503/504 answers, all under one total request budget. When a
    /// retriable response carries `Retry-After`, that many seconds (capped
    /// at [`MAX_RETRY_AFTER_SECS`]) replace the computed backoff — but
    /// never past the budget. Returns the first conclusive response, or
    /// the last failure once either budget is spent.
    pub fn post_with_retry(
        &self,
        addr: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        let budget = Instant::now() + self.cfg.effective_budget();
        let attempts = self.cfg.retry_budget.max(1);
        let mut last: Option<Result<ClientResponse, ClientError>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let hinted = match &last {
                    Some(Ok(resp)) => resp.retry_after(),
                    _ => None,
                };
                let pause = match hinted {
                    Some(secs) => Duration::from_secs(secs.min(MAX_RETRY_AFTER_SECS)),
                    None => self.backoff(attempt),
                };
                // Never sleep past the total budget, and don't start an
                // attempt the budget can't fund.
                let remaining = budget.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                if !sleep_cancellable(pause.min(remaining), cancel) {
                    return Err(ClientError::Cancelled);
                }
                if Instant::now() >= budget {
                    break;
                }
            }
            match self.exchange(addr, "POST", target, body, cancel, budget) {
                Ok(resp) if resp.status == 503 || resp.status == 504 => {
                    last = Some(Ok(resp));
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::Cancelled) => return Err(ClientError::Cancelled),
                Err(e) => last = Some(Err(e)),
            }
        }
        last.unwrap_or(Err(ClientError::Io("empty retry budget".to_string())))
    }

    /// Jittered exponential backoff for the given attempt (1-based):
    /// uniformly in `[step/2, step)` where `step = base * 2^(attempt-1)`,
    /// capped. Full-jitter halves herd alignment without ever sleeping
    /// longer than the deterministic schedule.
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let step = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.cfg.backoff_cap)
            .max(Duration::from_millis(1));
        let nanos = step.as_nanos() as u64;
        let mut state = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let draw = splitmix64(&mut state);
        Duration::from_nanos(nanos / 2 + draw % (nanos / 2).max(1))
    }

    /// One full request/response round trip, bounded by both the
    /// per-attempt exchange deadline and the caller's total budget.
    /// Phase-attributed timeouts are recorded in [`NetMetrics`] here, at
    /// the single exit.
    fn exchange(
        &self,
        addr: &str,
        method: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
        budget: Instant,
    ) -> Result<ClientResponse, ClientError> {
        self.exchange_inner(addr, method, target, body, cancel, budget)
            .inspect_err(|e| {
                if let ClientError::Timeout(phase) = e {
                    self.metrics.record_timeout(*phase);
                }
            })
    }

    fn exchange_inner(
        &self,
        addr: &str,
        method: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
        budget: Instant,
    ) -> Result<ClientResponse, ClientError> {
        if cancel.is_cancelled() {
            return Err(ClientError::Cancelled);
        }
        let deadline = (Instant::now() + self.cfg.exchange_deadline).min(budget);
        let pooling = method == "POST";

        // Reuse phase: parked keep-alive connections first. One the
        // server closed between requests fails before any response byte
        // arrives and falls through to a fresh connection — the caller
        // never sees the stale socket.
        if pooling {
            while let Some(stream) = self.pool_take(addr) {
                match self.attempt(
                    stream, true, pooling, addr, method, target, body, cancel, deadline,
                ) {
                    Ok(resp) => return Ok(resp),
                    Err(AttemptError::StaleReuse) => continue,
                    Err(AttemptError::Fatal(e)) => return Err(e),
                }
            }
        }

        // Connect phase.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClientError::Timeout(Phase::Connect));
        }
        let stream = self.connect(addr, self.cfg.connect_timeout.min(remaining))?;
        match self.attempt(
            stream, false, pooling, addr, method, target, body, cancel, deadline,
        ) {
            Ok(resp) => Ok(resp),
            Err(AttemptError::Fatal(e)) => Err(e),
            Err(AttemptError::StaleReuse) => {
                unreachable!("fresh connections never classify as stale reuse")
            }
        }
    }

    /// One write+read round trip on an already-open connection. `reused`
    /// governs the stale-reuse classification (only a recycled connection
    /// that fails before any response byte may be retried transparently);
    /// `pooling` governs the `Connection` request header and whether a
    /// provably-clean connection is parked back afterwards.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        mut stream: TcpStream,
        reused: bool,
        pooling: bool,
        addr: &str,
        method: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
        deadline: Instant,
    ) -> Result<ClientResponse, AttemptError> {
        let fatal = AttemptError::Fatal;

        // Write phase. A zero write timeout is invalid, so clamp up; the
        // deadline re-check below still bounds the total.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(fatal(ClientError::Timeout(Phase::Write)));
        }
        stream
            .set_write_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(|e| fatal(ClientError::Io(e.to_string())))?;
        stream
            .set_read_timeout(Some(SLICE))
            .map_err(|e| fatal(ClientError::Io(e.to_string())))?;
        let connection = if pooling { "keep-alive" } else { "close" };
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        if let Err(e) = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
        {
            return Err(match e.kind() {
                ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                    fatal(ClientError::Timeout(Phase::Write))
                }
                // EPIPE/RST writing to a recycled connection: the server
                // hung up between requests, before any response existed.
                _ if reused => AttemptError::StaleReuse,
                _ => fatal(ClientError::Io(e.to_string())),
            });
        }

        // Read phase.
        let raw = match read_response(&mut stream, deadline, cancel) {
            Ok(raw) => raw,
            Err((e, bytes_seen)) => {
                let stale = reused
                    && bytes_seen == 0
                    && matches!(&e, ClientError::Io(_) | ClientError::Protocol(_));
                return Err(if stale {
                    AttemptError::StaleReuse
                } else {
                    fatal(e)
                });
            }
        };
        let resp = parse_response(&raw).map_err(fatal)?;
        self.verify_integrity(&resp).map_err(fatal)?;

        // Park the connection only when the exchange left it provably
        // clean: the server agreed to keep-alive AND the body was
        // `Content-Length`-delimited (an EOF-delimited read consumed the
        // connection by definition). Every error path above dropped the
        // stream — a poisoned connection is never reused.
        if pooling
            && resp
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
            && resp.header("content-length").is_some()
        {
            self.pool_put(addr, stream);
        }
        Ok(resp)
    }

    /// Pop the most recently parked idle connection for `addr`,
    /// discarding any that outlived [`POOL_IDLE_TTL`].
    fn pool_take(&self, addr: &str) -> Option<TcpStream> {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let idle = pool.get_mut(addr)?;
        while let Some(conn) = idle.pop() {
            if conn.idle_since.elapsed() < POOL_IDLE_TTL {
                return Some(conn.stream);
            }
        }
        None
    }

    /// Park a clean keep-alive connection, bounded per host.
    fn pool_put(&self, addr: &str, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let idle = pool.entry(addr.to_string()).or_default();
        if idle.len() < POOL_MAX_IDLE_PER_HOST {
            idle.push(PooledConn {
                stream,
                idle_since: Instant::now(),
            });
        }
    }

    /// Idle connections currently parked for `addr` — test observability.
    pub fn pooled_idle(&self, addr: &str) -> usize {
        let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        pool.get(addr).map_or(0, Vec::len)
    }

    /// Integrity gate: when the response carries an `X-Exareq-Digest`
    /// header, the body must hash back to it; when `require_digest` is set,
    /// a 200 *without* the header is itself an error (so corruption that
    /// destroys the header cannot smuggle a divergent body through). The
    /// digest is FNV-1a 64 in lowercase hex — kept in lockstep with
    /// `crates/serve/src/http.rs`, which stamps it.
    fn verify_integrity(&self, resp: &ClientResponse) -> Result<(), ClientError> {
        match resp.header("x-exareq-digest") {
            Some(expected) => {
                let actual = digest_hex(&resp.body);
                if !actual.eq_ignore_ascii_case(expected.trim()) {
                    return Err(ClientError::Integrity(format!(
                        "body digest {actual} does not match X-Exareq-Digest {expected}"
                    )));
                }
                Ok(())
            }
            None if self.cfg.require_digest && resp.status == 200 => Err(ClientError::Integrity(
                "200 response without required X-Exareq-Digest header".to_string(),
            )),
            None => Ok(()),
        }
    }

    /// Resolve and connect within `timeout`. Multi-homed names try each
    /// address in resolution order; a timeout on the final candidate is a
    /// phase-attributed [`ClientError::Timeout`].
    fn connect(&self, addr: &str, timeout: Duration) -> Result<TcpStream, ClientError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Connect(format!("{addr}: {e}")))?
            .collect();
        let mut last = ClientError::Connect(format!("{addr}: no addresses"));
        let timeout = timeout.max(Duration::from_millis(1));
        for sockaddr in addrs {
            match TcpStream::connect_timeout(&sockaddr, timeout) {
                Ok(s) => return Ok(s),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    last = ClientError::Timeout(Phase::Connect);
                }
                Err(e) => last = ClientError::Connect(format!("{sockaddr}: {e}")),
            }
        }
        Err(last)
    }
}

/// splitmix64 step — same generator family the simulator uses, kept
/// local so the client has zero coupling to measurement seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64 over a byte slice — the body-integrity hash both sides of
/// the wire compute (`crates/serve` stamps it, this client verifies it).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The wire form of [`fnv1a64`]: 16 lowercase hex digits.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Sleep in cancellable slices; `false` means the token fired first.
/// Public because every consumer of this client ends up needing the same
/// "wait politely but notice Ctrl-C" loop between exchanges.
pub fn sleep_cancellable(total: Duration, cancel: &CancelToken) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(SLICE));
    }
}

/// Read a full response in timeout slices: until `Content-Length` bytes
/// past the head, or EOF when the header is absent (`Connection: close`).
/// Errors carry how many bytes had arrived, so the caller can tell a
/// stale recycled connection (zero bytes) from a mid-response failure.
fn read_response(
    stream: &mut TcpStream,
    deadline: Instant,
    cancel: &CancelToken,
) -> Result<Vec<u8>, (ClientError, usize)> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 8192];
    let mut want: Option<usize> = None;
    loop {
        if let Some(total) = want {
            if raw.len() >= total {
                raw.truncate(total);
                return Ok(raw);
            }
        }
        if cancel.is_cancelled() {
            return Err((ClientError::Cancelled, raw.len()));
        }
        if Instant::now() >= deadline {
            return Err((ClientError::Timeout(Phase::Read), raw.len()));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return match want {
                    // Short body after a promised length is a truncated
                    // (half-delivered) response — typed so callers can
                    // distinguish it from a malformed one.
                    Some(total) => Err((
                        ClientError::TruncatedResponse {
                            expected: total,
                            got: raw.len(),
                        },
                        raw.len(),
                    )),
                    None if raw.is_empty() => {
                        Err((ClientError::Protocol("empty response".to_string()), 0))
                    }
                    None => Ok(raw),
                };
            }
            Ok(k) => {
                raw.extend_from_slice(&buf[..k]);
                if want.is_none() {
                    if let Some(head_end) = find_head_end(&raw) {
                        let head = match std::str::from_utf8(&raw[..head_end]) {
                            Ok(head) => head,
                            Err(_) => {
                                return Err((
                                    ClientError::Protocol("non-UTF8 head".to_string()),
                                    raw.len(),
                                ))
                            }
                        };
                        want = match content_length(head) {
                            Ok(len) => len.map(|len| {
                                // Total bytes once the body is complete.
                                head_end + 4 + len
                            }),
                            Err(e) => return Err((e, raw.len())),
                        };
                        if let Some(total) = want {
                            if total > MAX_RESPONSE_BODY {
                                return Err((
                                    ClientError::OversizedResponse {
                                        limit: MAX_RESPONSE_BODY,
                                    },
                                    raw.len(),
                                ));
                            }
                        }
                    } else if raw.len() > MAX_RESPONSE_HEAD {
                        return Err((
                            ClientError::OversizedResponse {
                                limit: MAX_RESPONSE_HEAD,
                            },
                            raw.len(),
                        ));
                    }
                }
                if raw.len() > MAX_RESPONSE_BODY {
                    return Err((
                        ClientError::OversizedResponse {
                            limit: MAX_RESPONSE_BODY,
                        },
                        raw.len(),
                    ));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err((ClientError::Io(e.to_string()), raw.len())),
        }
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `Content-Length` from a response head, if present.
fn content_length(head: &str) -> Result<Option<usize>, ClientError> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| ClientError::Protocol("bad Content-Length".to_string()));
            }
        }
    }
    Ok(None)
}

/// Parse a complete response buffer into status/headers/body.
fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let head_end = find_head_end(raw)
        .ok_or_else(|| ClientError::Protocol("no head terminator".to_string()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::Protocol("non-UTF8 head".to_string()))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Protocol("empty head".to_string()))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!("bad version {version:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol("bad status code".to_string()))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve `responses` on a loopback listener, one connection each,
    /// draining the request head first. Returns the address.
    fn canned_server(responses: Vec<String>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            for resp in responses {
                let (mut stream, _) = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let mut buf = [0u8; 4096];
                let mut seen = Vec::new();
                // Read until the request head terminator; the tests only
                // send bodies the head fully describes.
                while find_head_end(&seen).is_none() {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(k) => seen.extend_from_slice(&buf[..k]),
                        Err(_) => break,
                    }
                }
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    fn ok_response(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    fn ok_response_with_digest(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nX-Exareq-Digest: {}\r\n\r\n{body}",
            body.len(),
            digest_hex(body.as_bytes())
        )
    }

    #[test]
    fn get_parses_status_headers_and_body() {
        let addr = canned_server(vec![ok_response("{\"status\":\"ok\"}")]);
        let client = HttpClient::new(ClientConfig::default());
        let resp = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect("exchange");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body, b"{\"status\":\"ok\"}");
    }

    #[test]
    fn post_with_retry_honors_retry_after_then_succeeds() {
        let addr = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 4\r\n\r\nbusy"
                .to_string(),
            ok_response("done"),
        ]);
        let client = HttpClient::new(ClientConfig {
            // A computed backoff would be >= 50ms; Retry-After: 0 makes
            // the retry immediate, which the elapsed-time bound checks.
            backoff_base: Duration::from_millis(100),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("retry succeeds");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"done");
        assert!(
            t0.elapsed() < Duration::from_millis(90),
            "Retry-After: 0 should preempt the 100ms backoff schedule"
        );
    }

    #[test]
    fn retry_budget_returns_last_503() {
        let busy =
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n"
                .to_string();
        let addr = canned_server(vec![busy.clone(), busy.clone(), busy]);
        let client = HttpClient::new(ClientConfig {
            retry_budget: 3,
            ..ClientConfig::default()
        });
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("last response surfaces");
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn black_hole_times_out_in_the_read_phase() {
        // Accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_secs(5));
            drop(conn);
        });
        let client = HttpClient::new(ClientConfig {
            exchange_deadline: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect_err("no answer");
        assert_eq!(err, ClientError::Timeout(Phase::Read));
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(client.metrics().timeouts(Phase::Read), 1);
        assert!(client
            .metrics()
            .render()
            .contains("net_request_phase_timeouts_total{phase=\"read\"} 1"));
    }

    #[test]
    fn total_budget_binds_tighter_than_the_exchange_deadline() {
        // Black hole again, but the per-attempt deadline is generous and
        // only the total request budget is small: the request must still
        // resolve within (about) the budget, attributed to the read phase.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_secs(5));
            drop(conn);
        });
        let client = HttpClient::new(ClientConfig {
            exchange_deadline: Duration::from_secs(30),
            request_budget: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect_err("budget expires");
        assert_eq!(err, ClientError::Timeout(Phase::Read));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "budget of 200ms must override the 30s exchange deadline"
        );
    }

    #[test]
    fn total_budget_spans_every_retry_attempt() {
        // Ten 503s with no Retry-After hint: the computed backoff would
        // stretch across seconds, but a 300ms total budget stops the loop
        // and surfaces the last 503 quickly.
        let busy = "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n".to_string();
        let addr = canned_server(vec![busy; 10]);
        let client = HttpClient::new(ClientConfig {
            retry_budget: 10,
            backoff_base: Duration::from_millis(100),
            request_budget: Some(Duration::from_millis(300)),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("last 503 surfaces");
        assert_eq!(resp.status, 503);
        assert!(
            t0.elapsed() < Duration::from_millis(900),
            "ten backoffs must not outlive a 300ms budget (took {:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn short_body_is_a_typed_truncated_response() {
        // Promise 100 bytes, deliver 5, close.
        let addr = canned_server(vec![
            "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello".to_string()
        ]);
        let client = HttpClient::new(ClientConfig::default());
        match client.get(&addr, "/predict", &CancelToken::new()) {
            Err(ClientError::TruncatedResponse { expected, got }) => {
                assert!(got < expected, "{got} < {expected}");
            }
            other => panic!("expected TruncatedResponse, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_a_typed_oversized_response() {
        let addr = canned_server(vec![format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
            MAX_RESPONSE_BODY + 1
        )]);
        let client = HttpClient::new(ClientConfig::default());
        match client.get(&addr, "/predict", &CancelToken::new()) {
            Err(ClientError::OversizedResponse { limit }) => {
                assert_eq!(limit, MAX_RESPONSE_BODY)
            }
            other => panic!("expected OversizedResponse, got {other:?}"),
        }
    }

    #[test]
    fn matching_digest_passes_and_mismatch_fails() {
        let good = ok_response_with_digest("{\"v\":1}");
        let bad = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: 7\r\nX-Exareq-Digest: {}\r\n\r\n{{\"v\":2}}",
            digest_hex(b"{\"v\":1}")
        );
        let addr = canned_server(vec![good, bad]);
        let client = HttpClient::new(ClientConfig::default());
        let resp = client
            .get(&addr, "/predict", &CancelToken::new())
            .expect("matching digest passes");
        assert_eq!(resp.body, b"{\"v\":1}");
        match client.get(&addr, "/predict", &CancelToken::new()) {
            Err(ClientError::Integrity(msg)) => {
                assert!(msg.contains("X-Exareq-Digest"), "message: {msg}")
            }
            other => panic!("expected Integrity error, got {other:?}"),
        }
    }

    #[test]
    fn require_digest_rejects_bare_200s_only() {
        let addr = canned_server(vec![
            ok_response("naked"),
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n".to_string(),
        ]);
        let client = HttpClient::new(ClientConfig {
            require_digest: true,
            retry_budget: 1,
            ..ClientConfig::default()
        });
        match client.get(&addr, "/predict", &CancelToken::new()) {
            Err(ClientError::Integrity(msg)) => {
                assert!(msg.contains("without required"), "message: {msg}")
            }
            other => panic!("expected Integrity error, got {other:?}"),
        }
        // Non-200s carry no data to protect; they pass undigested.
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("503 passes without digest");
        assert_eq!(resp.status, 503);
    }

    /// Serve each inner list of responses on ONE accepted connection
    /// (keep-alive), closing the socket after the list is exhausted.
    /// Returns the address and a count of connections accepted.
    fn keep_alive_server(
        per_conn: Vec<Vec<String>>,
    ) -> (String, std::sync::Arc<std::sync::atomic::AtomicUsize>) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let accepts = std::sync::Arc::new(AtomicUsize::new(0));
        let counter = std::sync::Arc::clone(&accepts);
        std::thread::spawn(move || {
            for responses in per_conn {
                let (mut stream, _) = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                counter.fetch_add(1, Ordering::SeqCst);
                let mut pending = Vec::new();
                for resp in responses {
                    if !read_one_request(&mut stream, &mut pending) {
                        break;
                    }
                    let _ = stream.write_all(resp.as_bytes());
                }
                // Dropping the stream closes the connection.
            }
        });
        (addr, accepts)
    }

    /// Consume exactly one `Content-Length`-framed request from the
    /// stream, carrying pipelined leftovers across calls.
    fn read_one_request(stream: &mut TcpStream, pending: &mut Vec<u8>) -> bool {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(head_end) = find_head_end(pending) {
                let head = String::from_utf8_lossy(&pending[..head_end]).to_string();
                let len = content_length(&head).ok().flatten().unwrap_or(0);
                let total = head_end + 4 + len;
                if pending.len() >= total {
                    pending.drain(..total);
                    return true;
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(k) => pending.extend_from_slice(&buf[..k]),
                Err(_) => return false,
            }
        }
    }

    fn keep_alive_response(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn posts_reuse_one_pooled_keep_alive_connection() {
        use std::sync::atomic::Ordering;
        let (addr, accepts) = keep_alive_server(vec![vec![
            keep_alive_response("a"),
            keep_alive_response("b"),
            keep_alive_response("c"),
        ]]);
        let client = HttpClient::new(ClientConfig::default());
        for expect in ["a", "b", "c"] {
            let resp = client
                .post(&addr, "/predict", b"{}", &CancelToken::new())
                .expect("post");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, expect.as_bytes());
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "three POSTs must share one pooled connection"
        );
        assert_eq!(client.pooled_idle(&addr), 1, "the lane parks back idle");
    }

    #[test]
    fn stale_pooled_connection_is_evicted_and_retried_transparently() {
        use std::sync::atomic::Ordering;
        // Connection 1 answers once keep-alive, then the server closes it
        // while it sits in the pool — the shape a crashed or restarted
        // replica (or a chaos-proxy reset) leaves behind.
        let (addr, accepts) = keep_alive_server(vec![
            vec![keep_alive_response("first")],
            vec![keep_alive_response("second")],
        ]);
        let client = HttpClient::new(ClientConfig::default());
        let resp = client
            .post(&addr, "/predict", b"{}", &CancelToken::new())
            .expect("first post");
        assert_eq!(resp.body, b"first");
        assert_eq!(client.pooled_idle(&addr), 1);
        // Let the server's FIN land before the next attempt reuses it.
        std::thread::sleep(Duration::from_millis(100));
        let resp = client
            .post(&addr, "/predict", b"{}", &CancelToken::new())
            .expect("stale lane must fall through to a fresh connection");
        assert_eq!(resp.body, b"second");
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            2,
            "the dead pooled connection is evicted, not surfaced"
        );
    }

    #[test]
    fn responses_without_keep_alive_are_never_pooled() {
        // `ok_response` carries no `Connection: keep-alive` header, so the
        // connection must be dropped, not parked.
        let addr = canned_server(vec![ok_response("one"), ok_response("two")]);
        let client = HttpClient::new(ClientConfig::default());
        for expect in ["one", "two"] {
            let resp = client
                .post(&addr, "/predict", b"{}", &CancelToken::new())
                .expect("post");
            assert_eq!(resp.body, expect.as_bytes());
        }
        assert_eq!(client.pooled_idle(&addr), 0);
    }

    #[test]
    fn get_probes_stay_one_shot_and_unpooled() {
        let (addr, _accepts) = keep_alive_server(vec![vec![keep_alive_response("ok")]]);
        let client = HttpClient::new(ClientConfig::default());
        let resp = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect("get");
        assert_eq!(resp.body, b"ok");
        assert_eq!(
            client.pooled_idle(&addr),
            0,
            "probes must measure fresh connections, never cached ones"
        );
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind then drop to get a port that refuses quickly.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let client = HttpClient::new(ClientConfig::default());
        match client.get(&addr, "/healthz", &CancelToken::new()) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected connect error, got {other:?}"),
        }
    }
}
