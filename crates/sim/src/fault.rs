//! Deterministic, seed-driven fault injection for the simulator.
//!
//! A [`FaultPlan`] describes *what can go wrong* in a run: rank crashes at
//! a given communication-op count, and per-message drop / duplicate /
//! delay / corruption with configurable probabilities. Faults are injected
//! at the `Rank::send_class` / `Rank::recv_class` chokepoints, so every
//! point-to-point call *and* every collective (they are built from the
//! same chokepoints) is covered without per-algorithm code.
//!
//! Determinism is the design center: each `(src, dst)` link owns an
//! independent [`SplitMix64`] stream seeded from `(plan.seed, src, dst)`,
//! and every send draws a fixed number of values from its link stream.
//! Fault decisions therefore depend only on the plan and the sequence of
//! sends on that link — never on thread interleaving — so the same seed
//! reproduces byte-identical [`FaultStats`] and `CommStats` on every run.
//!
//! Injected faults are byte-accounted in [`FaultStats`], a sibling of
//! `CommStats`: dropped/duplicated/delayed/corrupted messages and bytes,
//! plus injected crash counts, merge across ranks the same way.

use serde::{Deserialize, Serialize};

/// An injected rank crash: the rank dies when it *starts* its `at_op`-th
/// communication operation (sends and receives both count, 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    /// Rank to kill.
    pub rank: usize,
    /// 1-based communication-op index at which the rank dies.
    pub at_op: u64,
}

/// A deterministic fault-injection plan for one simulated run.
///
/// The default plan injects nothing ([`FaultPlan::is_active`] is `false`)
/// and adds zero overhead beyond an op counter. Build plans with the
/// chainable constructors or parse one from a CLI spec with
/// [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all per-link fault streams.
    pub seed: u64,
    /// Ranks to crash, and when.
    pub crashes: Vec<CrashPoint>,
    /// Per-message probability that a send is silently dropped.
    pub drop_prob: f64,
    /// Per-message probability that a send is delivered twice.
    pub dup_prob: f64,
    /// Per-message probability that a send is delayed (reordered behind
    /// the next send to the same destination).
    pub delay_prob: f64,
    /// Per-message probability that payload bytes are corrupted in flight.
    pub corrupt_prob: f64,
    /// How many byte positions to corrupt in a corrupted message.
    pub corrupt_bytes: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            corrupt_prob: 0.0,
            corrupt_bytes: 1,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (same as `FaultPlan::default()`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan with the given stream seed.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a rank crash at the given 1-based communication-op index.
    pub fn crash(mut self, rank: usize, at_op: u64) -> Self {
        self.crashes.push(CrashPoint { rank, at_op });
        self
    }

    /// Sets the per-message drop probability.
    pub fn drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn duplicate(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Sets the per-message delay (reorder) probability.
    pub fn delay(mut self, prob: f64) -> Self {
        self.delay_prob = prob;
        self
    }

    /// Sets the per-message corruption probability and how many byte
    /// positions each corrupted message loses.
    pub fn corrupt(mut self, prob: f64, bytes: u32) -> Self {
        self.corrupt_prob = prob;
        self.corrupt_bytes = bytes.max(1);
        self
    }

    /// Derives the plan for retry attempt `attempt` (1-based) of the
    /// `(p, n)` configuration.
    ///
    /// This is the deterministic **reseeding rule** of the resilient survey
    /// driver: attempt 1 uses the plan verbatim (so a single-attempt sweep
    /// is bit-identical to the non-retrying driver), and every further
    /// attempt re-mixes `(seed, p, n, attempt)` into a fresh stream seed.
    /// Fresh streams give probabilistic faults (drop/dup/delay/corrupt) an
    /// independent chance of sparing the run — the same faulty fabric, a
    /// different day — while *deterministic* crash points are left in
    /// place: a configured crash reproduces on every attempt, exactly like
    /// a real poisoned node. The derivation depends only on plan and
    /// config, never on wall-clock or prior attempts, so an interrupted
    /// sweep resumed from a journal retries with the same seeds and
    /// produces byte-identical measurements.
    pub fn reseeded(&self, p: u64, n: u64, attempt: u32) -> FaultPlan {
        if attempt <= 1 {
            return self.clone();
        }
        FaultPlan {
            seed: derive_attempt_seed(self.seed, p, n, attempt),
            ..self.clone()
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        !self.crashes.is_empty()
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.corrupt_prob > 0.0
    }

    /// Parses a CLI fault spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed=U64`, `crash=RANK@OP` (repeatable), `drop=P`, `dup=P`,
    /// `delay=P`, `corrupt=P`, `corrupt_bytes=N`. Example:
    /// `seed=42,crash=2@50,drop=0.001,corrupt=0.0001`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad seed `{value}`: {e}"))?;
                }
                "crash" => {
                    let (rank, op) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash spec `{value}` is not RANK@OP"))?;
                    plan.crashes.push(CrashPoint {
                        rank: rank
                            .trim()
                            .parse()
                            .map_err(|e| format!("bad crash rank `{rank}`: {e}"))?,
                        at_op: op
                            .trim()
                            .parse()
                            .map_err(|e| format!("bad crash op `{op}`: {e}"))?,
                    });
                }
                "drop" => plan.drop_prob = parse_prob("drop", value)?,
                "dup" => plan.dup_prob = parse_prob("dup", value)?,
                "delay" => plan.delay_prob = parse_prob("delay", value)?,
                "corrupt" => plan.corrupt_prob = parse_prob("corrupt", value)?,
                "corrupt_bytes" => {
                    plan.corrupt_bytes = value
                        .trim()
                        .parse::<u32>()
                        .map_err(|e| format!("bad corrupt_bytes `{value}`: {e}"))?
                        .max(1);
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Builds the per-rank injection state for `rank` in a world of `size`.
    pub(crate) fn state_for(&self, rank: usize, size: usize) -> FaultState {
        let crash_at = self
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at_op.max(1))
            .min();
        let links = (0..size)
            .map(|dst| SplitMix64::new(link_seed(self.seed, rank, dst)))
            .collect();
        FaultState {
            active: self.is_active(),
            crash_at,
            ops: 0,
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            delay_prob: self.delay_prob,
            corrupt_prob: self.corrupt_prob,
            corrupt_bytes: self.corrupt_bytes,
            links,
            delayed: (0..size).map(|_| None).collect(),
        }
    }
}

fn parse_prob(key: &str, value: &str) -> Result<f64, String> {
    let p: f64 = value
        .trim()
        .parse()
        .map_err(|e| format!("bad {key} probability `{value}`: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key} probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// Counters for injected faults, merged across ranks like `CommStats`.
///
/// These count what the fault layer *did*, independently of application
/// byte accounting: `CommStats` records what the application asked for;
/// `FaultStats` records how the fabric betrayed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages silently dropped at send time.
    pub dropped_msgs: u64,
    /// Payload bytes in dropped messages.
    pub dropped_bytes: u64,
    /// Extra deliveries injected by duplication.
    pub duplicated_msgs: u64,
    /// Payload bytes in duplicate deliveries.
    pub duplicated_bytes: u64,
    /// Messages delayed (reordered behind a later send on the same link).
    pub delayed_msgs: u64,
    /// Messages whose payload was corrupted in flight.
    pub corrupted_msgs: u64,
    /// Byte positions flipped by corruption.
    pub corrupted_bytes: u64,
    /// Injected crashes that fired on this rank.
    pub injected_crashes: u64,
    /// Messages that could not be handed to a peer (its receiver was gone).
    pub undelivered_msgs: u64,
}

impl FaultStats {
    /// Element-wise sum of two fault-stat records.
    pub fn merged(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            dropped_msgs: self.dropped_msgs + other.dropped_msgs,
            dropped_bytes: self.dropped_bytes + other.dropped_bytes,
            duplicated_msgs: self.duplicated_msgs + other.duplicated_msgs,
            duplicated_bytes: self.duplicated_bytes + other.duplicated_bytes,
            delayed_msgs: self.delayed_msgs + other.delayed_msgs,
            corrupted_msgs: self.corrupted_msgs + other.corrupted_msgs,
            corrupted_bytes: self.corrupted_bytes + other.corrupted_bytes,
            injected_crashes: self.injected_crashes + other.injected_crashes,
            undelivered_msgs: self.undelivered_msgs + other.undelivered_msgs,
        }
    }

    /// Total injected message-level events (drops + dups + delays +
    /// corruptions + crashes).
    pub fn total_events(&self) -> u64 {
        self.dropped_msgs
            + self.duplicated_msgs
            + self.delayed_msgs
            + self.corrupted_msgs
            + self.injected_crashes
    }
}

/// SplitMix64: tiny, fast, full-period 64-bit PRNG (Steele et al.). Used
/// for fault streams so determinism needs no external crate.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mixes `(base, p, n, attempt)` into the stream seed of one retry
/// attempt: the reseeding rule of [`FaultPlan::reseeded`], exposed for
/// journal forensics and tests. Distinct configs and distinct attempts get
/// independent streams; the same inputs always give the same seed.
pub fn derive_attempt_seed(base: u64, p: u64, n: u64, attempt: u32) -> u64 {
    let mut s = SplitMix64::new(
        base ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ n.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    s.next_u64()
}

/// Mixes (seed, src, dst) into an independent per-link stream seed.
fn link_seed(seed: u64, src: usize, dst: usize) -> u64 {
    let mut s = SplitMix64::new(
        seed ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    s.next_u64()
}

/// What the fault layer decided to do to one outgoing message.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultDecision {
    pub drop: bool,
    pub dup: bool,
    pub delay: bool,
    /// Distinct byte positions to flip (empty = no corruption).
    pub corrupt_at: Vec<usize>,
}

/// Per-rank runtime state of the fault layer.
#[derive(Debug)]
pub(crate) struct FaultState {
    active: bool,
    /// Crash when `ops` reaches this value (1-based), if set.
    crash_at: Option<u64>,
    /// Communication ops (sends + receives) started so far.
    ops: u64,
    drop_prob: f64,
    dup_prob: f64,
    delay_prob: f64,
    corrupt_prob: f64,
    corrupt_bytes: u32,
    /// One independent stream per destination link.
    links: Vec<SplitMix64>,
    /// At most one in-flight delayed message per destination; flushed
    /// after the next send to that destination (or at clean completion).
    pub(crate) delayed: Vec<Option<crate::rank::Msg>>,
}

impl FaultState {
    /// Counts one communication op; returns the op index at which this
    /// rank must crash, if this op is (at or past) its crash point.
    pub(crate) fn tick_op(&mut self) -> Option<u64> {
        self.ops += 1;
        match self.crash_at {
            Some(at) if self.ops >= at => {
                self.crash_at = None; // fire once
                Some(self.ops)
            }
            _ => None,
        }
    }

    /// Draws the fault decision for one message to `dst` of length `len`.
    ///
    /// Always draws the same number of stream values per send (4 uniform
    /// draws, plus `corrupt_bytes` position draws only when corruption
    /// fires) so decisions stay aligned with the send sequence on the link.
    pub(crate) fn decide(&mut self, dst: usize, len: usize) -> FaultDecision {
        if !self.active {
            return FaultDecision::default();
        }
        let n_corrupt = self.corrupt_bytes;
        let stream = &mut self.links[dst];
        let drop = stream.next_f64() < self.drop_prob;
        let dup = stream.next_f64() < self.dup_prob;
        let delay = stream.next_f64() < self.delay_prob;
        let corrupt = stream.next_f64() < self.corrupt_prob && len > 0;
        let mut corrupt_at = Vec::new();
        if corrupt {
            for _ in 0..n_corrupt {
                let pos = (stream.next_u64() % len as u64) as usize;
                // Distinct positions only: flipping the same byte twice
                // would cancel out and under-count corruption.
                if !corrupt_at.contains(&pos) {
                    corrupt_at.push(pos);
                }
            }
        }
        FaultDecision {
            drop,
            dup,
            delay,
            corrupt_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("seed=42, crash=2@50, crash=0@9, drop=0.25, dup=0.1, delay=0.05, corrupt=0.01, corrupt_bytes=3").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.crashes,
            vec![
                CrashPoint { rank: 2, at_op: 50 },
                CrashPoint { rank: 0, at_op: 9 }
            ]
        );
        assert_eq!(plan.drop_prob, 0.25);
        assert_eq!(plan.dup_prob, 0.1);
        assert_eq!(plan.delay_prob, 0.05);
        assert_eq!(plan.corrupt_prob, 0.01);
        assert_eq!(plan.corrupt_bytes, 3);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("crash=2").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn empty_spec_is_inert() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.is_active());
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut s = SplitMix64::new(7);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = SplitMix64::new(7);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut s = SplitMix64::new(8);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn link_seeds_are_direction_sensitive() {
        assert_ne!(link_seed(1, 0, 1), link_seed(1, 1, 0));
        assert_ne!(link_seed(1, 0, 1), link_seed(2, 0, 1));
    }

    #[test]
    fn reseeding_is_deterministic_and_attempt_one_is_verbatim() {
        let plan = FaultPlan::with_seed(42).drop(0.1).crash(1, 5);
        assert_eq!(plan.reseeded(4, 64, 1), plan, "attempt 1 must be verbatim");
        let a2 = plan.reseeded(4, 64, 2);
        assert_ne!(a2.seed, plan.seed);
        assert_eq!(a2, plan.reseeded(4, 64, 2), "same inputs, same plan");
        // Crash points survive reseeding: deterministic faults reproduce.
        assert_eq!(a2.crashes, plan.crashes);
        assert_eq!(a2.drop_prob, plan.drop_prob);
        // Distinct configs and attempts draw distinct seeds.
        assert_ne!(a2.seed, plan.reseeded(4, 64, 3).seed);
        assert_ne!(a2.seed, plan.reseeded(8, 64, 2).seed);
        assert_ne!(a2.seed, plan.reseeded(4, 128, 2).seed);
        assert_ne!(
            derive_attempt_seed(1, 2, 3, 4),
            derive_attempt_seed(2, 2, 3, 4)
        );
    }

    #[test]
    fn decide_draws_are_reproducible() {
        let plan = FaultPlan::with_seed(11).drop(0.5).duplicate(0.5);
        let run = || {
            let mut st = plan.state_for(0, 4);
            (0..32)
                .map(|i| {
                    let d = st.decide(1 + i % 3, 64);
                    (d.drop, d.dup, d.delay)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_fires_once_at_op() {
        let plan = FaultPlan::default().crash(3, 2);
        let mut st = plan.state_for(3, 4);
        assert_eq!(st.tick_op(), None);
        assert_eq!(st.tick_op(), Some(2));
        assert_eq!(st.tick_op(), None);
        let mut other = plan.state_for(1, 4);
        assert_eq!(other.tick_op(), None);
        assert_eq!(other.tick_op(), None);
    }

    #[test]
    fn fault_stats_merge_elementwise() {
        let a = FaultStats {
            dropped_msgs: 1,
            dropped_bytes: 10,
            injected_crashes: 1,
            ..FaultStats::default()
        };
        let b = FaultStats {
            dropped_msgs: 2,
            duplicated_msgs: 3,
            ..FaultStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.dropped_msgs, 3);
        assert_eq!(m.dropped_bytes, 10);
        assert_eq!(m.duplicated_msgs, 3);
        assert_eq!(m.injected_crashes, 1);
        assert_eq!(m.total_events(), 7);
    }
}
