//! Quickstart: measure one application on the simulator, generate its
//! requirement models, and extrapolate to exascale.
//!
//! Run with `cargo run --release --example quickstart`.

use exareq::apps::{survey_app, AppGrid, Kripke};
use exareq::core::multiparam::MultiParamConfig;
use exareq::pipeline::model_requirements;

fn main() {
    // 1. Measure: run the Kripke twin over a 5×5 grid of (processes,
    //    problem size per process) — 25 small simulated runs.
    let grid = AppGrid::default();
    println!(
        "surveying Kripke over p={:?}, n={:?} ...",
        grid.p_values, grid.n_values
    );
    let survey = survey_app(&Kripke, &grid);
    println!("  {} observations collected", survey.observations.len());

    // 2. Model: feed the counters to the Extra-P-style generator.
    let cfg = MultiParamConfig::default();
    let modeled = model_requirements(&survey, &cfg).expect("modeling succeeds");

    println!("\nGenerated requirement models (per process):");
    for (label, fm) in &modeled.fitted {
        println!(
            "  {label:<28} {}   [cv-SMAPE {:.3}%, R² {:.4}]",
            fm.model, fm.cv_smape, fm.r2
        );
    }
    println!("\nSymbolic communication rows:");
    for sym in &modeled.comm_symbolic {
        println!("  {sym}   [clean: {}]", sym.is_clean());
    }

    // 3. Extrapolate: evaluate the FLOP model far beyond the measured range
    //    — the co-design use case.
    let flops_at_exascale = modeled.requirements.flops.eval(&[2e9, 1e6]);
    println!("\nPredicted #FLOP per process at p = 2e9, n = 1e6: {flops_at_exascale:.3e}");

    // 4. Bottlenecks: the ⚠ column of Table II.
    let warnings = modeled.requirements.warnings();
    if warnings.is_empty() {
        println!("no scaling warnings");
    } else {
        for w in &warnings {
            println!("warning: {w}");
        }
    }
}
