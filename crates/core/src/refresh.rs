//! Online model refresh: incremental coefficient refits, the staleness
//! policy, and the adaptive sampling planner.
//!
//! The paper fits requirement models once, from a fixed set of small-scale
//! runs (Section II-B). Applications evolve; models go stale. This module
//! closes the loop:
//!
//! - [`IncrementalFit`] keeps a model's *hypothesis* (its term structure)
//!   fixed and refits only the coefficients as observations arrive, one
//!   Givens row update at a time ([`QrFactor::push_row`]) — `O(k²)` per
//!   observation instead of a full design-matrix rebuild and hypothesis
//!   re-search.
//! - [`StalenessPolicy`] decides when the cheap path stops being honest:
//!   a full PMNF re-search ([`full_refit`]) runs only when the incremental
//!   fit's cross-validated SMAPE drifts past tolerance or enough
//!   observations accumulated since the last search.
//! - [`rank_candidates`] ranks un-measured configurations by expected
//!   variance reduction (statistical leverage × LOO residual variance) —
//!   the active-learning upgrade over the paper's fixed small-scale grid.
//!
//! Confidence intervals come from the same leave-one-out residuals the
//! selection score uses: [`LooSummary::ci95_rel`] is `1.96 ×` the RMS
//! relative LOO residual, a prediction half-width on the relative scale
//! that narrows as consistent observations accumulate.

use crate::fit::{fit_single, FitConfig, FitError, FittedModel};
use crate::linalg::{LinalgError, Matrix, QrFactor};
use crate::measurement::Experiment;
use crate::multiparam::{fit_multi, MultiParamConfig};
use crate::pmnf::{Model, Term};
use crate::quality::smape;

/// Why an incremental refit could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum RefreshError {
    /// Observation coordinates do not match the model's parameter count.
    WrongArity {
        /// Parameter count the model expects.
        expected: usize,
        /// Coordinate count the observation carries.
        got: usize,
    },
    /// Too few observations to (re)fit the hypothesis' coefficients.
    NotEnoughPoints {
        /// Minimum observations required (one per coefficient).
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// The least-squares core failed (rank collapse, non-finite data).
    Linalg(LinalgError),
}

impl core::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RefreshError::WrongArity { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            RefreshError::NotEnoughPoints { needed, got } => {
                write!(f, "need at least {needed} observations, got {got}")
            }
            RefreshError::Linalg(e) => write!(f, "refit failed: {e}"),
        }
    }
}

impl std::error::Error for RefreshError {}

impl From<LinalgError> for RefreshError {
    fn from(e: LinalgError) -> Self {
        RefreshError::Linalg(e)
    }
}

/// The design-matrix row of `model`'s hypothesis at `coords`:
/// `[1, basis₁(coords), …, basis_t(coords)]`, aligned with
/// `[constant, term₁.coeff, …]`.
pub fn design_row(model: &Model, coords: &[f64]) -> Vec<f64> {
    let mut row = Vec::with_capacity(model.terms.len() + 1);
    row.push(1.0);
    for term in &model.terms {
        row.push(term.basis(coords));
    }
    row
}

/// `model` with its hypothesis kept and its coefficients replaced:
/// `coeffs[0]` becomes the constant, `coeffs[1..]` the term coefficients.
///
/// # Panics
/// Panics if `coeffs.len() != model.terms.len() + 1`.
pub fn with_coefficients(model: &Model, coeffs: &[f64]) -> Model {
    assert_eq!(coeffs.len(), model.terms.len() + 1, "coefficient arity");
    let terms = model
        .terms
        .iter()
        .zip(&coeffs[1..])
        .map(|(t, &c)| Term::new(c, t.factors.clone()))
        .collect();
    Model::new(coeffs[0], terms, model.params.clone())
}

/// Leave-one-out summary of a fixed-hypothesis fit over one observation
/// set: the selection score and the confidence half-width derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct LooSummary {
    /// Leave-one-out cross-validated SMAPE (percent, 0..200).
    pub cv_smape: f64,
    /// Signed relative LOO residuals `(pred − actual) / |actual|`, one per
    /// observation that admitted a leave-one-out refit.
    pub rel_residuals: Vec<f64>,
    /// 95% prediction half-width on the relative scale:
    /// `1.96 × RMS(rel_residuals)`. A prediction `ŷ` is read as
    /// `ŷ · (1 ± ci95_rel)`.
    pub ci95_rel: f64,
}

/// A model being refitted online: fixed hypothesis, coefficients tracking
/// the observation stream through rank-1 QR row updates.
#[derive(Debug, Clone)]
pub struct IncrementalFit {
    model: Model,
    qr: QrFactor,
    points: Vec<(Vec<f64>, f64)>,
}

impl IncrementalFit {
    /// Seeds the fit: takes `model`'s hypothesis, refits its coefficients
    /// to `points` (each `(coords, value)`), and readies the factorization
    /// for [`push`](Self::push) updates.
    ///
    /// # Errors
    /// [`RefreshError::NotEnoughPoints`] below one point per coefficient;
    /// [`RefreshError::WrongArity`] on coordinate arity mismatch;
    /// [`RefreshError::Linalg`] when the seed system is degenerate.
    pub fn new(model: &Model, points: &[(Vec<f64>, f64)]) -> Result<Self, RefreshError> {
        let k = model.terms.len() + 1;
        if points.len() < k {
            return Err(RefreshError::NotEnoughPoints {
                needed: k,
                got: points.len(),
            });
        }
        let mut a = Matrix::zeros(points.len(), k);
        let mut b = vec![0.0_f64; points.len()];
        for (i, (coords, value)) in points.iter().enumerate() {
            if coords.len() != model.arity() {
                return Err(RefreshError::WrongArity {
                    expected: model.arity(),
                    got: coords.len(),
                });
            }
            for (j, v) in design_row(model, coords).into_iter().enumerate() {
                a[(i, j)] = v;
            }
            b[i] = *value;
        }
        let qr = QrFactor::new(&a, &b)?;
        let coeffs = qr.solve()?;
        Ok(IncrementalFit {
            model: with_coefficients(model, &coeffs),
            qr,
            points: points.to_vec(),
        })
    }

    /// Folds one observation in — a single `O(k²)` Givens row update, then
    /// a back substitution — and refreshes the coefficients. The design
    /// matrix is never rebuilt.
    ///
    /// # Errors
    /// [`RefreshError::WrongArity`] on arity mismatch;
    /// [`RefreshError::Linalg`] on non-finite input or rank collapse (the
    /// factorization keeps its pre-push state in the arity/finiteness
    /// cases).
    pub fn push(&mut self, coords: &[f64], value: f64) -> Result<(), RefreshError> {
        if coords.len() != self.model.arity() {
            return Err(RefreshError::WrongArity {
                expected: self.model.arity(),
                got: coords.len(),
            });
        }
        let row = design_row(&self.model, coords);
        self.qr.push_row(&row, value)?;
        self.points.push((coords.to_vec(), value));
        let coeffs = self.qr.solve()?;
        self.model = with_coefficients(&self.model, &coeffs);
        Ok(())
    }

    /// The current model: the seeded hypothesis with coefficients refitted
    /// to every observation pushed so far.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Observations folded in (seed + pushes).
    pub fn observations(&self) -> usize {
        self.points.len()
    }

    /// The observations themselves, `(coords, value)` in arrival order.
    pub fn points(&self) -> &[(Vec<f64>, f64)] {
        &self.points
    }

    /// Builds an [`Experiment`] over `params` from the observation set —
    /// the input a full PMNF re-search wants.
    pub fn to_experiment(&self, params: &[String]) -> Experiment {
        let mut exp = Experiment::new(params.to_vec());
        for (coords, value) in &self.points {
            exp.push(coords, *value);
        }
        exp
    }

    /// Leave-one-out cross-validation with the hypothesis held fixed: each
    /// observation is predicted by coefficients refitted to all the others.
    /// Observations whose leave-one-out subproblem is degenerate are
    /// skipped rather than failing the summary.
    ///
    /// # Errors
    /// [`RefreshError::NotEnoughPoints`] below `k + 1` observations (no
    /// point can be left out); [`RefreshError::Linalg`] when *every*
    /// subproblem is degenerate.
    pub fn loo(&self) -> Result<LooSummary, RefreshError> {
        let k = self.model.terms.len() + 1;
        if self.points.len() < k + 1 {
            return Err(RefreshError::NotEnoughPoints {
                needed: k + 1,
                got: self.points.len(),
            });
        }
        let mut preds = Vec::with_capacity(self.points.len());
        let mut actuals = Vec::with_capacity(self.points.len());
        let mut rel = Vec::with_capacity(self.points.len());
        let mut last_err = None;
        for leave in 0..self.points.len() {
            let mut a = Matrix::zeros(self.points.len() - 1, k);
            let mut b = vec![0.0_f64; self.points.len() - 1];
            let mut r = 0;
            for (i, (coords, value)) in self.points.iter().enumerate() {
                if i == leave {
                    continue;
                }
                for (j, v) in design_row(&self.model, coords).into_iter().enumerate() {
                    a[(r, j)] = v;
                }
                b[r] = *value;
                r += 1;
            }
            let coeffs = match QrFactor::new(&a, &b).and_then(|qr| qr.solve()) {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let (coords, actual) = &self.points[leave];
            let pred = with_coefficients(&self.model, &coeffs).eval(coords);
            preds.push(pred);
            actuals.push(*actual);
            rel.push((pred - actual) / actual.abs().max(f64::MIN_POSITIVE));
        }
        if preds.is_empty() {
            return Err(RefreshError::Linalg(
                last_err.unwrap_or(LinalgError::DimensionMismatch),
            ));
        }
        let mean_sq = rel.iter().map(|e| e * e).sum::<f64>() / rel.len() as f64;
        Ok(LooSummary {
            cv_smape: smape(&preds, &actuals),
            rel_residuals: rel,
            ci95_rel: 1.96 * mean_sq.sqrt(),
        })
    }

    /// Statistical leverage of a hypothetical observation at `coords`
    /// against the current design — see [`QrFactor::leverage`].
    ///
    /// # Errors
    /// [`RefreshError::WrongArity`] on arity mismatch;
    /// [`RefreshError::Linalg`] when the factorization is degenerate.
    pub fn leverage(&self, coords: &[f64]) -> Result<f64, RefreshError> {
        if coords.len() != self.model.arity() {
            return Err(RefreshError::WrongArity {
                expected: self.model.arity(),
                got: coords.len(),
            });
        }
        Ok(self.qr.leverage(&design_row(&self.model, coords))?)
    }
}

/// When does the cheap incremental path give way to a full re-search?
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessPolicy {
    /// Observations required (per metric) before any refit runs at all.
    pub min_points: usize,
    /// Observations since the last full re-search that force the next one
    /// regardless of drift.
    pub full_refit_count: u64,
    /// Cross-validated-SMAPE degradation (percentage points over the last
    /// full-search baseline) that triggers a full re-search early.
    pub cv_drift: f64,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            min_points: 8,
            full_refit_count: 32,
            cv_drift: 5.0,
        }
    }
}

/// What the staleness policy decided for one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitDecision {
    /// Too few observations: record only, keep serving the current model.
    Skip,
    /// Refit coefficients in place (rank-1 QR update), hypothesis kept.
    Incremental,
    /// Run the full PMNF hypothesis re-search.
    Full,
}

impl StalenessPolicy {
    /// Decides the refit kind for a metric with `points` total
    /// observations, `since_full` of them since the last full re-search,
    /// given the baseline CV SMAPE established by that search (if any) and
    /// the incremental fit's current CV SMAPE (if computable).
    pub fn decide(
        &self,
        points: usize,
        since_full: u64,
        baseline_cv: Option<f64>,
        incremental_cv: Option<f64>,
    ) -> RefitDecision {
        if points < self.min_points {
            return RefitDecision::Skip;
        }
        if since_full >= self.full_refit_count {
            return RefitDecision::Full;
        }
        if let (Some(base), Some(cur)) = (baseline_cv, incremental_cv) {
            if cur > base + self.cv_drift {
                return RefitDecision::Full;
            }
        }
        RefitDecision::Incremental
    }
}

/// The full PMNF hypothesis re-search over an observation set — the same
/// generators the one-shot pipeline uses ([`fit_single`] / [`fit_multi`]),
/// so a staleness-triggered re-search selects exactly the hypothesis a
/// from-scratch fit of the same points would.
///
/// # Errors
/// [`FitError`] as the underlying generator reports it.
pub fn full_refit(exp: &Experiment, cfg: &FitConfig) -> Result<FittedModel, FitError> {
    if exp.arity() == 1 {
        fit_single(exp, cfg)
    } else {
        fit_multi(
            exp,
            &MultiParamConfig {
                single: cfg.clone(),
                ..MultiParamConfig::default()
            },
        )
    }
}

/// One ranked sampling candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// The candidate configuration's coordinates.
    pub coords: Vec<f64>,
    /// Statistical leverage against the observed design.
    pub leverage: f64,
    /// Expected variance reduction: `leverage × Var(LOO rel residuals)`.
    pub score: f64,
}

/// Ranks candidate configurations by expected variance reduction: the
/// leverage of each candidate row against the observed design, scaled by
/// the LOO residual variance. High-leverage candidates are the ones whose
/// measurement would shrink coefficient (and hence prediction) variance
/// the most — measure those first. Ties break toward lexicographically
/// smaller coordinates so the plan is deterministic.
///
/// # Errors
/// Propagates [`IncrementalFit::loo`] / [`IncrementalFit::leverage`]
/// failures; candidates with degenerate leverage are dropped, and an empty
/// result means every candidate was degenerate.
pub fn rank_candidates(
    fit: &IncrementalFit,
    candidates: &[Vec<f64>],
) -> Result<Vec<RankedCandidate>, RefreshError> {
    let loo = fit.loo()?;
    let var = if loo.rel_residuals.is_empty() {
        0.0
    } else {
        loo.rel_residuals.iter().map(|e| e * e).sum::<f64>() / loo.rel_residuals.len() as f64
    };
    let mut ranked = Vec::with_capacity(candidates.len());
    for coords in candidates {
        match fit.leverage(coords) {
            Ok(leverage) => ranked.push(RankedCandidate {
                coords: coords.clone(),
                leverage,
                score: leverage * var,
            }),
            Err(RefreshError::Linalg(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then_with(|| {
                a.coords
                    .partial_cmp(&b.coords)
                    .unwrap_or(core::cmp::Ordering::Equal)
            })
    });
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmnf::Exponents;

    /// `f(p, n) = 100 + 3·p·log2(p) + 0.5·n` — a two-term, two-parameter
    /// hypothesis with well-separated bases.
    fn hypothesis() -> Model {
        Model::new(
            1.0, // placeholder coefficients; tests refit them
            vec![
                Term::new(1.0, vec![Exponents::new(1.0, 1.0), Exponents::constant()]),
                Term::new(1.0, vec![Exponents::constant(), Exponents::new(1.0, 0.0)]),
            ],
            vec!["p".to_string(), "n".to_string()],
        )
    }

    fn truth(p: f64, n: f64) -> f64 {
        100.0 + 3.0 * p * p.log2() + 0.5 * n
    }

    fn grid_points() -> Vec<(Vec<f64>, f64)> {
        let mut pts = Vec::new();
        for &p in &[2.0, 4.0, 8.0, 16.0] {
            for &n in &[64.0, 128.0, 256.0] {
                pts.push((vec![p, n], truth(p, n)));
            }
        }
        pts
    }

    #[test]
    fn incremental_fit_recovers_exact_coefficients() {
        let fit = IncrementalFit::new(&hypothesis(), &grid_points()).unwrap();
        let m = fit.model();
        assert!((m.constant - 100.0).abs() < 1e-6, "{}", m.constant);
        assert!((m.terms[0].coeff - 3.0).abs() < 1e-8);
        assert!((m.terms[1].coeff - 0.5).abs() < 1e-8);
    }

    #[test]
    fn push_matches_seeding_from_scratch() {
        let pts = grid_points();
        let mut inc = IncrementalFit::new(&hypothesis(), &pts[..6]).unwrap();
        for (coords, value) in &pts[6..] {
            inc.push(coords, *value).unwrap();
        }
        let scratch = IncrementalFit::new(&hypothesis(), &pts).unwrap();
        assert_eq!(inc.observations(), scratch.observations());
        assert!((inc.model().constant - scratch.model().constant).abs() < 1e-6);
        for (a, b) in inc.model().terms.iter().zip(&scratch.model().terms) {
            assert!((a.coeff - b.coeff).abs() < 1e-6 * (1.0 + a.coeff.abs()));
        }
    }

    #[test]
    fn loo_on_exact_data_is_tight_and_narrows_with_observations() {
        let pts = grid_points();
        let fit = IncrementalFit::new(&hypothesis(), &pts).unwrap();
        let loo = fit.loo().unwrap();
        assert!(loo.cv_smape < 1e-6, "{}", loo.cv_smape);
        assert!(loo.ci95_rel < 1e-6, "{}", loo.ci95_rel);

        // Noisy data: more observations → narrower interval.
        let noisy = |k: usize| {
            let mut pts = Vec::new();
            let mut sign = 1.0;
            for &p in &[2.0, 4.0, 8.0, 16.0, 32.0] {
                for &n in &[64.0, 128.0, 256.0, 512.0] {
                    sign = -sign;
                    pts.push((vec![p, n], truth(p, n) * (1.0 + sign * 0.02)));
                    if pts.len() == k {
                        return pts;
                    }
                }
            }
            pts
        };
        let narrow = IncrementalFit::new(&hypothesis(), &noisy(20))
            .unwrap()
            .loo()
            .unwrap();
        let wide = IncrementalFit::new(&hypothesis(), &noisy(5))
            .unwrap()
            .loo()
            .unwrap();
        assert!(
            narrow.ci95_rel < wide.ci95_rel,
            "{} !< {}",
            narrow.ci95_rel,
            wide.ci95_rel
        );
    }

    #[test]
    fn too_few_points_are_reported() {
        let pts = grid_points();
        assert!(matches!(
            IncrementalFit::new(&hypothesis(), &pts[..2]),
            Err(RefreshError::NotEnoughPoints { needed: 3, .. })
        ));
        // Three points varying both axes (the first three grid points all
        // share p = 2, which is rank-deficient, not merely too few).
        let three = vec![pts[0].clone(), pts[4].clone(), pts[8].clone()];
        let fit = IncrementalFit::new(&hypothesis(), &three).unwrap();
        assert!(matches!(
            fit.loo(),
            Err(RefreshError::NotEnoughPoints { needed: 4, .. })
        ));
    }

    #[test]
    fn arity_mismatches_are_reported() {
        let mut fit = IncrementalFit::new(&hypothesis(), &grid_points()).unwrap();
        assert!(matches!(
            fit.push(&[2.0], 1.0),
            Err(RefreshError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            fit.leverage(&[2.0, 3.0, 4.0]),
            Err(RefreshError::WrongArity { .. })
        ));
    }

    #[test]
    fn staleness_policy_decides_as_documented() {
        let policy = StalenessPolicy {
            min_points: 4,
            full_refit_count: 10,
            cv_drift: 5.0,
        };
        assert_eq!(policy.decide(3, 3, None, None), RefitDecision::Skip);
        assert_eq!(policy.decide(4, 4, None, None), RefitDecision::Incremental);
        assert_eq!(policy.decide(20, 10, None, None), RefitDecision::Full);
        // CV drift past tolerance forces the full search early.
        assert_eq!(
            policy.decide(8, 5, Some(2.0), Some(8.0)),
            RefitDecision::Full
        );
        assert_eq!(
            policy.decide(8, 5, Some(2.0), Some(6.0)),
            RefitDecision::Incremental
        );
    }

    #[test]
    fn planner_prefers_extrapolation_corners() {
        let fit = IncrementalFit::new(&hypothesis(), &grid_points()).unwrap();
        let candidates = vec![
            vec![4.0, 128.0],   // interior of the observed grid
            vec![256.0, 64.0],  // far-p extrapolation
            vec![8.0, 128.0],   // interior
            vec![16.0, 4096.0], // far-n extrapolation
        ];
        let ranked = rank_candidates(&fit, &candidates).unwrap();
        assert_eq!(ranked.len(), 4);
        // Both extrapolation points outrank both interior points.
        let pos = |c: &[f64]| {
            ranked
                .iter()
                .position(|r| r.coords == c)
                .expect("candidate present")
        };
        assert!(pos(&[256.0, 64.0]) < pos(&[4.0, 128.0]));
        assert!(pos(&[256.0, 64.0]) < pos(&[8.0, 128.0]));
        assert!(pos(&[16.0, 4096.0]) < pos(&[4.0, 128.0]));
        assert!(ranked[0].leverage >= ranked[1].leverage || ranked[0].score >= ranked[1].score);
    }

    #[test]
    fn full_refit_is_deterministic_on_the_same_points() {
        let mut exp = Experiment::new(vec!["p", "n"]);
        for (coords, value) in grid_points() {
            exp.push(&coords, value);
        }
        let cfg = FitConfig::coarse();
        let a = full_refit(&exp, &cfg).unwrap();
        let b = full_refit(&exp, &cfg).unwrap();
        assert_eq!(a.model, b.model, "hypothesis selection must be stable");
    }
}
