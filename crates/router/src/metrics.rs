//! Router-side counters in the Prometheus text exposition format,
//! following the serve/fleet metrics idiom: relaxed atomics, rendered on
//! demand, never torn.
//!
//! The counters are the router's resilience ledger — every failover,
//! hedge, and degraded-mode answer is visible here, which is what lets
//! the chaos tests and CI assert "the kill was absorbed by failover"
//! instead of merely "the response was a 200".

use exareq_net::health::HealthTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Endpoint labels, in the order of the per-endpoint counter slots.
pub const ENDPOINTS: [&str; 5] = ["predict", "predict_batch", "upgrade", "strawman", "models"];

/// Maps a request path to its [`ENDPOINTS`] slot (`None` for paths the
/// router does not aggregate, like `/healthz`).
pub fn endpoint_index(path: &str) -> Option<usize> {
    match path {
        "/predict" => Some(0),
        "/predict_batch" => Some(1),
        "/upgrade" => Some(2),
        "/strawman" => Some(3),
        "/models" => Some(4),
        _ => None,
    }
}

/// All router counters; shared across worker threads behind an `Arc`.
#[derive(Debug)]
pub struct RouterMetrics {
    /// Requests answered, per endpoint slot.
    requests: [AtomicU64; ENDPOINTS.len()],
    /// Sum of request latencies per endpoint slot, nanoseconds.
    latency_sum_ns: [AtomicU64; ENDPOINTS.len()],
    /// Requests forwarded to each replica (by ring index), including
    /// failover and hedge attempts. CI reads this to learn which replica
    /// actually serves a key before killing it.
    upstream_requests: Vec<AtomicU64>,
    /// Requests retried on another replica after a primary failure.
    failover: AtomicU64,
    /// Hedged duplicate attempts launched after the hedge delay.
    hedge_launched: AtomicU64,
    /// Hedged attempts that produced the winning response.
    hedge_won: AtomicU64,
    /// Requests answered by the in-process degraded-mode fallback.
    degraded: AtomicU64,
    /// Requests currently inside the router (gauge).
    in_flight: AtomicU64,
}

impl RouterMetrics {
    /// Fresh, all-zero metrics for a router over `replicas` upstreams.
    pub fn new(replicas: usize) -> Self {
        RouterMetrics {
            requests: Default::default(),
            latency_sum_ns: Default::default(),
            upstream_requests: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            failover: AtomicU64::new(0),
            hedge_launched: AtomicU64::new(0),
            hedge_won: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    /// Records one answered request on endpoint slot `endpoint` with its
    /// wall latency.
    pub fn record(&self, endpoint: usize, latency: Duration) {
        self.requests[endpoint].fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency_sum_ns[endpoint].fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one attempt forwarded to replica `idx`.
    pub fn record_upstream_request(&self, idx: usize) {
        self.upstream_requests[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failover: the request moved on to another replica.
    pub fn record_failover(&self) {
        self.failover.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged duplicate launched.
    pub fn record_hedge_launched(&self) {
        self.hedge_launched.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged duplicate that won the race.
    pub fn record_hedge_won(&self) {
        self.hedge_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request answered in-process in degraded mode.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request as entered. Pair with
    /// [`end_request`](Self::end_request).
    pub fn begin_request(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request as answered.
    pub fn end_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently inside the router.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Failover count so far.
    pub fn failovers(&self) -> u64 {
        self.failover.load(Ordering::Relaxed)
    }

    /// Hedges launched so far.
    pub fn hedges_launched(&self) -> u64 {
        self.hedge_launched.load(Ordering::Relaxed)
    }

    /// Hedges won so far.
    pub fn hedges_won(&self) -> u64 {
        self.hedge_won.load(Ordering::Relaxed)
    }

    /// Degraded-mode answers so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total requests answered across all endpoints so far.
    pub fn requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the Prometheus text exposition. Replica states come from
    /// the caller's [`HealthTable`] — the same table routing decisions
    /// are made from — and `replicas` supplies the address labels.
    pub fn render(&self, health: &HealthTable, replicas: &[String]) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "router_failover_total",
            "Requests retried on another replica after a failure.",
            self.failovers(),
        );
        counter(
            &mut out,
            "router_hedge_launched_total",
            "Hedged duplicate attempts launched.",
            self.hedges_launched(),
        );
        counter(
            &mut out,
            "router_hedge_won_total",
            "Hedged attempts that produced the winning response.",
            self.hedges_won(),
        );
        counter(
            &mut out,
            "router_degraded_total",
            "Requests answered by the in-process degraded-mode fallback.",
            self.degraded(),
        );

        out.push_str(
            "# HELP router_requests_total Requests answered, per endpoint.\n\
             # TYPE router_requests_total counter\n",
        );
        for (i, name) in ENDPOINTS.iter().enumerate() {
            out.push_str(&format!(
                "router_requests_total{{endpoint=\"{name}\"}} {}\n",
                self.requests[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP router_request_seconds_sum Sum of request latencies, per endpoint.\n\
             # TYPE router_request_seconds_sum counter\n",
        );
        for (i, name) in ENDPOINTS.iter().enumerate() {
            out.push_str(&format!(
                "router_request_seconds_sum{{endpoint=\"{name}\"}} {}\n",
                self.latency_sum_ns[i].load(Ordering::Relaxed) as f64 / 1e9
            ));
        }

        out.push_str(
            "# HELP router_upstream_requests_total Attempts forwarded to each replica.\n\
             # TYPE router_upstream_requests_total counter\n",
        );
        for (i, addr) in replicas.iter().enumerate() {
            out.push_str(&format!(
                "router_upstream_requests_total{{replica=\"{addr}\"}} {}\n",
                self.upstream_requests[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP router_upstream_state Replica liveness (1 on the current state).\n\
             # TYPE router_upstream_state gauge\n",
        );
        for (i, addr) in replicas.iter().enumerate() {
            let current = health.state(i).label();
            for state in ["healthy", "suspect", "dead"] {
                out.push_str(&format!(
                    "router_upstream_state{{replica=\"{addr}\",state=\"{state}\"}} {}\n",
                    u8::from(state == current)
                ));
            }
        }

        out.push_str(&format!(
            "# HELP router_in_flight Requests currently inside the router.\n\
             # TYPE router_in_flight gauge\n\
             router_in_flight {}\n",
            self.in_flight()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_net::health::HealthPolicy;

    #[test]
    fn endpoint_index_covers_the_proxied_paths() {
        assert_eq!(endpoint_index("/predict"), Some(0));
        assert_eq!(endpoint_index("/predict_batch"), Some(1));
        assert_eq!(endpoint_index("/upgrade"), Some(2));
        assert_eq!(endpoint_index("/strawman"), Some(3));
        assert_eq!(endpoint_index("/models"), Some(4));
        assert_eq!(endpoint_index("/healthz"), None);
    }

    #[test]
    fn render_names_every_resilience_metric() {
        let replicas = vec!["127.0.0.1:9101".to_string(), "127.0.0.1:9102".to_string()];
        let m = RouterMetrics::new(replicas.len());
        m.record(0, Duration::from_millis(2));
        m.record(0, Duration::from_millis(1));
        m.record(4, Duration::from_micros(400));
        m.record_upstream_request(0);
        m.record_upstream_request(0);
        m.record_upstream_request(1);
        m.record_failover();
        m.record_hedge_launched();
        m.record_hedge_won();
        m.record_degraded();

        let health = HealthTable::new(2, HealthPolicy::default());
        for _ in 0..3 {
            health.record_failure(1); // dead
        }
        let text = m.render(&health, &replicas);
        assert!(text.contains("router_failover_total 1\n"), "{text}");
        assert!(text.contains("router_hedge_launched_total 1\n"), "{text}");
        assert!(text.contains("router_hedge_won_total 1\n"), "{text}");
        assert!(text.contains("router_degraded_total 1\n"), "{text}");
        assert!(
            text.contains("router_requests_total{endpoint=\"predict\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("router_requests_total{endpoint=\"models\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("router_request_seconds_sum{endpoint=\"predict\"} 0.003\n"),
            "{text}"
        );
        assert!(
            text.contains("router_upstream_requests_total{replica=\"127.0.0.1:9101\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("router_upstream_requests_total{replica=\"127.0.0.1:9102\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "router_upstream_state{replica=\"127.0.0.1:9101\",state=\"healthy\"} 1\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("router_upstream_state{replica=\"127.0.0.1:9102\",state=\"dead\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "router_upstream_state{replica=\"127.0.0.1:9102\",state=\"healthy\"} 0\n"
            ),
            "{text}"
        );
        assert!(text.contains("router_in_flight 0\n"), "{text}");
    }
}
