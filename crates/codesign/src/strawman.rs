//! Absolute system design: the exascale straw men of Table VI and the
//! maximum-problem / minimum-wall-time analysis of Table VII.

use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::AppRequirements;
use crate::skeleton::SystemSkeleton;
use serde::{Deserialize, Serialize};

/// One straw-man exascale system (a row set of Table VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrawMan {
    /// System name.
    pub name: String,
    /// Node count.
    pub nodes: f64,
    /// Total processor count (one process per processor).
    pub processors: f64,
    /// Memory per processor in bytes.
    pub mem_per_processor: f64,
    /// Floating-point rate per processor (flop/s).
    pub flops_per_processor: f64,
}

impl StrawMan {
    /// Processors per node.
    pub fn processors_per_node(&self) -> f64 {
        self.processors / self.nodes
    }

    /// Aggregate peak rate — all three straw men reach 1 exaflop/s.
    pub fn total_flops(&self) -> f64 {
        self.processors * self.flops_per_processor
    }

    /// The system skeleton this straw man exposes to applications.
    pub fn skeleton(&self) -> SystemSkeleton {
        SystemSkeleton::new(self.processors, self.mem_per_processor)
    }
}

/// The three candidate designs of Table VI. Total memory 10 PB each,
/// divided equally among processors.
pub fn table_six() -> Vec<StrawMan> {
    vec![
        StrawMan {
            name: "Massively parallel".to_string(),
            nodes: 2e4,
            processors: 2e9,
            mem_per_processor: 5e6,
            flops_per_processor: 5e8,
        },
        StrawMan {
            name: "Vector".to_string(),
            nodes: 5e4,
            processors: 5e7,
            mem_per_processor: 2e8,
            flops_per_processor: 2e10,
        },
        StrawMan {
            name: "Hybrid".to_string(),
            nodes: 1e4,
            processors: 1e8,
            mem_per_processor: 1e8,
            flops_per_processor: 1e10,
        },
    ]
}

/// Per-system outcome for one application (columns of Table VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemOutcome {
    /// System name.
    pub system: String,
    /// Problem size per process that fills memory.
    pub max_n: f64,
    /// Maximum overall problem size `p · n`.
    pub max_overall: f64,
    /// Lower-bound wall time for the common benchmark problem, in seconds
    /// (perfect parallelization, no communication overhead).
    pub min_wall_time: f64,
}

/// Table VII rows for one application, or its exclusion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrawManAnalysis {
    /// The application fits all systems; one outcome per system.
    Fits {
        /// Application name.
        app: String,
        /// The common benchmark problem (largest solvable everywhere).
        benchmark_overall: f64,
        /// One outcome per system, in [`table_six`] order.
        outcomes: Vec<SystemOutcome>,
    },
    /// The application cannot fully utilize at least one system — icoFoam's
    /// exclusion: "the memory requirement regardless of problem size per
    /// process is larger than what is available if all processors are used".
    Excluded {
        /// Application name.
        app: String,
        /// Names of the systems it cannot fill.
        cannot_use: Vec<String>,
    },
}

/// Runs the Table VII workflow for one application over a set of straw men.
pub fn analyze_strawmen(app: &AppRequirements, systems: &[StrawMan]) -> StrawManAnalysis {
    // Step 1: inflate the problem on every system.
    let mut inflated: Vec<(f64, f64)> = Vec::new(); // (n, overall)
    let mut cannot = Vec::new();
    for s in systems {
        match inflate_problem(&app.bytes_used, &s.skeleton()) {
            Inflation::Fits(n) => inflated.push((n, n * s.processors)),
            _ => cannot.push(s.name.clone()),
        }
    }
    if !cannot.is_empty() {
        return StrawManAnalysis::Excluded {
            app: app.name.clone(),
            cannot_use: cannot,
        };
    }

    // Step 2: the common benchmark is the biggest overall problem solvable
    // on all systems.
    let benchmark_overall = inflated
        .iter()
        .map(|&(_, overall)| overall)
        .fold(f64::INFINITY, f64::min);

    // Step 3: per-system wall-time lower bound for the benchmark problem.
    let outcomes = systems
        .iter()
        .zip(&inflated)
        .map(|(s, &(max_n, max_overall))| {
            let n_bench = benchmark_overall / s.processors;
            let flops = app.flops.eval(&[s.processors, n_bench]);
            SystemOutcome {
                system: s.name.clone(),
                max_n,
                max_overall,
                min_wall_time: flops / s.flops_per_processor,
            }
        })
        .collect();
    StrawManAnalysis::Fits {
        app: app.name.clone(),
        benchmark_overall,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn table_six_reaches_one_exaflop() {
        for s in table_six() {
            assert_eq!(s.total_flops(), 1e18, "{}", s.name);
            // Total memory 10 PB.
            assert_eq!(s.processors * s.mem_per_processor, 1e16, "{}", s.name);
        }
    }

    #[test]
    fn processors_per_node_match_table_six() {
        let t = table_six();
        assert_eq!(t[0].processors_per_node(), 1e5);
        assert_eq!(t[1].processors_per_node(), 1e3);
        assert_eq!(t[2].processors_per_node(), 1e4);
    }

    #[test]
    fn kripke_and_milc_indifferent_to_design() {
        // Paper: "for Kripke and MILC the different system types do not
        // affect the largest overall problem size" and wall times are equal.
        for app in [catalog::kripke(), catalog::milc()] {
            match analyze_strawmen(&app, &table_six()) {
                StrawManAnalysis::Fits { outcomes, .. } => {
                    let o0 = &outcomes[0];
                    for o in &outcomes[1..] {
                        let r = o.max_overall / o0.max_overall;
                        assert!((r - 1.0).abs() < 1e-6, "{}: {r}", app.name);
                        let rt = o.min_wall_time / o0.min_wall_time;
                        assert!((rt - 1.0).abs() < 0.05, "{}: {rt}", app.name);
                    }
                }
                other => panic!("{}: {other:?}", app.name),
            }
        }
    }

    #[test]
    fn milc_wall_time_is_about_100s() {
        // Table VII: MILC minimum wall time 10² s on every system.
        match analyze_strawmen(&catalog::milc(), &table_six()) {
            StrawManAnalysis::Fits { outcomes, .. } => {
                for o in &outcomes {
                    assert!(
                        o.min_wall_time > 50.0 && o.min_wall_time < 200.0,
                        "{}: {}",
                        o.system,
                        o.min_wall_time
                    );
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relearn_prefers_vector_for_problem_size_and_time() {
        // Table VII: Relearn max problem 5e10 (MP) / 4e12 (V) / 1e12 (H);
        // wall times 4 / 0.02 / 0.2 s.
        match analyze_strawmen(&catalog::relearn(), &table_six()) {
            StrawManAnalysis::Fits { outcomes, .. } => {
                let (mp, v, h) = (&outcomes[0], &outcomes[1], &outcomes[2]);
                assert!(
                    (mp.max_overall - 5e10).abs() / 5e10 < 0.05,
                    "{}",
                    mp.max_overall
                );
                assert!(
                    (v.max_overall - 2e12).abs() / 2e12 < 0.05,
                    "{}",
                    v.max_overall
                );
                assert!(
                    (h.max_overall - 1e12).abs() / 1e12 < 0.05,
                    "{}",
                    h.max_overall
                );
                // Wall-time ordering: vector ≪ hybrid ≪ massively parallel.
                assert!(v.min_wall_time < h.min_wall_time);
                assert!(h.min_wall_time < mp.min_wall_time);
                // MP is dominated by the p-term: ≈ 2e9/5e8 = 4 s (paper: 4 s).
                assert!((mp.min_wall_time - 4.0).abs() < 0.5, "{}", mp.min_wall_time);
                // Vector ≈ 0.015–0.02 s (paper: 0.02 s).
                assert!(v.min_wall_time < 0.03, "{}", v.min_wall_time);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lulesh_max_problem_prefers_massively_parallel() {
        match analyze_strawmen(&catalog::lulesh(), &table_six()) {
            StrawManAnalysis::Fits { outcomes, .. } => {
                let (mp, v, h) = (&outcomes[0], &outcomes[1], &outcomes[2]);
                assert!(
                    mp.max_overall > v.max_overall,
                    "MP should allow the biggest problem"
                );
                assert!(mp.max_overall > h.max_overall);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn icofoam_is_excluded_from_every_strawman() {
        match analyze_strawmen(&catalog::icofoam(), &table_six()) {
            StrawManAnalysis::Excluded { cannot_use, .. } => {
                assert_eq!(cannot_use.len(), 3);
            }
            other => panic!("expected exclusion, got {other:?}"),
        }
    }

    #[test]
    fn benchmark_problem_is_minimum_of_maxima() {
        match analyze_strawmen(&catalog::relearn(), &table_six()) {
            StrawManAnalysis::Fits {
                benchmark_overall,
                outcomes,
                ..
            } => {
                let min = outcomes
                    .iter()
                    .map(|o| o.max_overall)
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(benchmark_overall, min);
            }
            other => panic!("{other:?}"),
        }
    }
}
