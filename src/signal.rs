//! Minimal in-tree POSIX signal binding for graceful preemption.
//!
//! The `exareq` CLI must react to `SIGINT` (Ctrl-C) and `SIGTERM` (the
//! signal batch schedulers send before a hard kill) by *cooperatively*
//! cancelling the running survey: flush the journal, write a partial
//! artifact, print the resume command, exit with the documented code.
//! Rust's standard library exposes no signal API and this workspace adds
//! no external crates, so this module binds `sigaction(2)` directly
//! against the C library that is already linked into every Linux binary.
//!
//! The handler itself does the only thing an async-signal-safe handler
//! can do: a single lock-free compare-exchange on the cancellation flag
//! shared with a [`CancelToken`] (obtained via
//! [`CancelToken::signal_flag`]). First reason wins, exactly as in
//! [`CancelToken::cancel`] — a deadline that fired just before the
//! signal is not overwritten. Everything else (journal flush, artifact
//! write, exit) happens on the main thread at the next checkpoint.
//!
//! On non-Linux targets the module compiles to inert stubs:
//! [`install_termination_handlers`] reports `false` and the CLI simply
//! runs without signal-triggered preemption (deadlines and budgets still
//! work — they never involve the OS).

use exareq_core::cancel::CancelToken;

/// Signal number for keyboard interrupt (`SIGINT`).
pub const SIGINT: i32 = 2;
/// Signal number for polite termination (`SIGTERM`).
pub const SIGTERM: i32 = 15;

#[cfg(target_os = "linux")]
mod imp {
    use exareq_core::cancel::{CancelReason, CancelToken};
    use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};

    /// glibc's `struct sigaction` on Linux: handler pointer, 1024-bit
    /// signal mask, flags, obsolete restorer slot. (The *kernel* struct
    /// orders the fields differently; we only ever hand this to the libc
    /// wrapper, which translates.)
    #[repr(C)]
    struct SigAction {
        sa_sigaction: usize,
        sa_mask: [u64; 16],
        sa_flags: i32,
        sa_restorer: usize,
    }

    /// Restart interrupted syscalls instead of surfacing `EINTR`: the
    /// cancellation is delivered through the flag, not through errno.
    const SA_RESTART: i32 = 0x1000_0000;

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    /// The cancellation flag the handler writes to. Null until
    /// [`install`] has run; the pointee is leaked by
    /// `CancelToken::signal_flag`, so it is valid for the process
    /// lifetime once set.
    static FLAG: AtomicPtr<AtomicU8> = AtomicPtr::new(std::ptr::null_mut());

    extern "C" fn on_termination_signal(_signum: i32) {
        let flag = FLAG.load(Ordering::Acquire);
        if !flag.is_null() {
            // First reason wins, mirroring CancelToken::cancel. A plain
            // store would clobber an already-recorded Deadline/Budget.
            let _ = unsafe { &*flag }.compare_exchange(
                0,
                CancelReason::Interrupt.code(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    pub fn install(token: &CancelToken, signals: &[i32]) -> bool {
        let flag = token.signal_flag();
        FLAG.store(flag as *const AtomicU8 as *mut AtomicU8, Ordering::Release);
        let act = SigAction {
            sa_sigaction: on_termination_signal as *const () as usize,
            sa_mask: [0; 16],
            sa_flags: SA_RESTART,
            sa_restorer: 0,
        };
        signals
            .iter()
            .all(|&sig| unsafe { sigaction(sig, &act, std::ptr::null_mut()) } == 0)
    }

    pub fn send(pid: u32, sig: i32) -> bool {
        unsafe { kill(pid as i32, sig) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use exareq_core::cancel::CancelToken;

    pub fn install(_token: &CancelToken, _signals: &[i32]) -> bool {
        false
    }

    pub fn send(_pid: u32, _sig: i32) -> bool {
        false
    }
}

/// Routes `SIGINT` and `SIGTERM` to `token` as a
/// [`CancelReason::Interrupt`](exareq_core::cancel::CancelReason)
/// cancellation. Returns `true` when both handlers were installed
/// (always `false` off Linux, where this is a no-op).
///
/// Call this once, early, from the binary's entry point. Installing
/// for a second token re-routes the signals to the new token.
pub fn install_termination_handlers(token: &CancelToken) -> bool {
    imp::install(token, &[SIGINT, SIGTERM])
}

/// Sends `sig` to process `pid` via `kill(2)`; `true` on success.
/// Exists so integration tests can deliver a real `SIGTERM` to a
/// spawned `exareq` subprocess without any external crate.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    imp::send(pid, sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_core::cancel::CancelReason;

    // One test, sequential phases: the handler routes through a single
    // process-global pointer, so concurrent installs would race.
    #[test]
    #[cfg(target_os = "linux")]
    fn real_signals_cancel_without_overwriting_earlier_reasons() {
        let token = CancelToken::new();
        assert!(install_termination_handlers(&token));
        // Deliver SIGINT to ourselves; the handler runs synchronously on
        // this thread before kill() returns.
        assert!(send_signal(std::process::id(), SIGINT));
        assert_eq!(token.reason(), Some(CancelReason::Interrupt));

        // Re-route to a token that already carries a reason: the signal
        // must not clobber it (first reason wins).
        let expired = CancelToken::new();
        expired.cancel(CancelReason::Deadline);
        assert!(install_termination_handlers(&expired));
        assert!(send_signal(std::process::id(), SIGTERM));
        assert_eq!(expired.reason(), Some(CancelReason::Deadline));
    }
}
