//! Burst sampling and instruction-group attribution (the Threadspotter
//! methodology of Section II-B).
//!
//! Threadspotter keeps runtime dilation practical by sampling execution "in
//! short bursts where all memory accesses are documented, followed by
//! periods during which no measurements are gathered", and reports distance
//! metrics at the granularity of *instruction groups* — the instructions in
//! a loop that access the same array. The paper then ignores any group with
//! fewer than 100 samples and models the **median** over the gathered
//! samples.

use crate::distance::{AccessDistances, DistanceAnalyzer};
use serde::{Deserialize, Serialize};

/// Minimum samples a group needs before it is modeled (Section II-B).
pub const MIN_SAMPLES: usize = 100;

/// Identifier of an instruction group (e.g. "the accesses to array B in the
/// sweep loop").
pub type GroupId = usize;

/// Sampling schedule: `burst` accesses monitored, then `gap` accesses
/// skipped, repeating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSchedule {
    /// Accesses recorded per burst.
    pub burst: u64,
    /// Accesses skipped between bursts.
    pub gap: u64,
}

impl Default for BurstSchedule {
    fn default() -> Self {
        // Documented Threadspotter-like duty cycle: monitor 1 in 8 windows
        // (the paper reports roughly 8× dilation when monitoring, so real
        // deployments keep bursts short relative to gaps).
        BurstSchedule {
            burst: 4096,
            gap: 7 * 4096,
        }
    }
}

impl BurstSchedule {
    /// A schedule that samples every access (exact mode, for tests and small
    /// kernels).
    pub fn always() -> Self {
        BurstSchedule { burst: 1, gap: 0 }
    }
}

/// Distance samples collected for one instruction group.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupSamples {
    /// Group name (for reports).
    pub name: String,
    /// Stack-distance samples (warm accesses observed during bursts).
    pub stack: Vec<u64>,
    /// Reuse-distance samples.
    pub reuse: Vec<u64>,
    /// Total accesses attributed to this group (sampled or not) — the basis
    /// for estimating per-group access counts from whole-program load/store
    /// totals (Section II-B).
    pub accesses: u64,
    /// Cold (first-touch) accesses observed during bursts.
    pub cold: u64,
}

impl GroupSamples {
    /// True if the group has enough samples to be modeled.
    pub fn is_modelable(&self) -> bool {
        self.stack.len() >= MIN_SAMPLES
    }

    /// Median stack distance (the paper's modeled statistic), `None` if no
    /// samples.
    pub fn median_stack(&self) -> Option<f64> {
        median(&self.stack)
    }

    /// Median reuse distance.
    pub fn median_reuse(&self) -> Option<f64> {
        median(&self.reuse)
    }

    /// Mean stack distance (used by the aggregation ablation).
    pub fn mean_stack(&self) -> Option<f64> {
        if self.stack.is_empty() {
            None
        } else {
            Some(self.stack.iter().sum::<u64>() as f64 / self.stack.len() as f64)
        }
    }

    /// `q`-quantile (0..=1) of the stack-distance samples.
    pub fn stack_quantile(&self, q: f64) -> Option<f64> {
        quantile(&self.stack, q)
    }
}

fn median(v: &[u64]) -> Option<f64> {
    quantile(v, 0.5)
}

fn quantile(v: &[u64], q: f64) -> Option<f64> {
    if v.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut s = v.to_vec();
    s.sort_unstable();
    let idx = q * (s.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    Some(s[lo] as f64 * (1.0 - frac) + s[hi] as f64 * frac)
}

/// The sampling front end: feeds every access to the exact distance engine
/// (so distances stay correct) but *records* samples only during bursts,
/// attributed to the issuing instruction group.
#[derive(Debug, Clone)]
pub struct BurstSampler {
    analyzer: DistanceAnalyzer,
    schedule: BurstSchedule,
    position: u64,
    groups: Vec<GroupSamples>,
}

impl BurstSampler {
    /// Creates a sampler with the given schedule.
    pub fn new(schedule: BurstSchedule) -> Self {
        BurstSampler {
            analyzer: DistanceAnalyzer::new(),
            schedule,
            position: 0,
            groups: Vec::new(),
        }
    }

    /// Registers an instruction group and returns its id.
    pub fn register_group(&mut self, name: impl Into<String>) -> GroupId {
        self.groups.push(GroupSamples {
            name: name.into(),
            ..GroupSamples::default()
        });
        self.groups.len() - 1
    }

    /// True if the sampler is currently inside a burst window.
    fn in_burst(&self) -> bool {
        let cycle = self.schedule.burst + self.schedule.gap;
        if cycle == 0 {
            return true;
        }
        self.position % cycle < self.schedule.burst
    }

    /// Processes one access from `group` to `addr`.
    ///
    /// # Panics
    /// Panics if `group` was not registered.
    pub fn access(&mut self, group: GroupId, addr: u64) -> AccessDistances {
        let sampling = self.in_burst();
        self.position += 1;
        let d = self.analyzer.access(addr);
        let g = &mut self.groups[group];
        g.accesses += 1;
        if sampling {
            match (d.stack, d.reuse) {
                (Some(s), Some(r)) => {
                    g.stack.push(s);
                    g.reuse.push(r);
                }
                _ => g.cold += 1,
            }
        }
        d
    }

    /// Collected samples per group.
    pub fn groups(&self) -> &[GroupSamples] {
        &self.groups
    }

    /// Groups that pass the ≥[`MIN_SAMPLES`] filter.
    pub fn modelable_groups(&self) -> impl Iterator<Item = (GroupId, &GroupSamples)> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_modelable())
    }

    /// Estimated access share of a group: its fraction of all attributed
    /// accesses. Multiplied by a whole-program load/store count this yields
    /// the paper's per-group access estimate.
    pub fn access_share(&self, group: GroupId) -> f64 {
        let total: u64 = self.groups.iter().map(|g| g.accesses).sum();
        if total == 0 {
            0.0
        } else {
            self.groups[group].accesses as f64 / total as f64
        }
    }

    /// Total accesses observed (all groups).
    pub fn total_accesses(&self) -> u64 {
        self.analyzer.accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_schedule_samples_everything() {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let g = s.register_group("A");
        s.access(g, 1);
        s.access(g, 1);
        s.access(g, 1);
        assert_eq!(s.groups()[g].stack.len(), 2); // first touch is cold
        assert_eq!(s.groups()[g].cold, 1);
        assert_eq!(s.groups()[g].accesses, 3);
    }

    #[test]
    fn burst_schedule_skips_gaps() {
        let mut s = BurstSampler::new(BurstSchedule { burst: 2, gap: 3 });
        let g = s.register_group("A");
        // 10 accesses to the same address: positions 0,1 (burst), 2-4 (gap),
        // 5,6 (burst), 7-9 (gap) → sampled warm accesses at 1, 5, 6.
        for _ in 0..10 {
            s.access(g, 42);
        }
        assert_eq!(s.groups()[g].stack.len(), 3);
        assert_eq!(s.groups()[g].accesses, 10);
    }

    #[test]
    fn distances_remain_exact_despite_gaps() {
        // The analyzer sees every access even during gaps, so a sample taken
        // in a later burst reflects the true distance.
        let mut s = BurstSampler::new(BurstSchedule { burst: 1, gap: 4 });
        let g = s.register_group("A");
        // Access pattern: x, a, b, c, d, x → the second x has RD 4.
        let d_first = s.access(g, 100);
        assert!(d_first.is_cold());
        for addr in [1, 2, 3, 4] {
            s.access(g, addr);
        }
        let d = s.access(g, 100); // position 5 → burst (5 % 5 == 0)
        assert_eq!(d.reuse, Some(4));
        assert_eq!(d.stack, Some(4));
        assert_eq!(s.groups()[g].stack, vec![4]);
    }

    #[test]
    fn group_attribution_is_separate() {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let ga = s.register_group("A");
        let gb = s.register_group("B");
        s.access(ga, 1);
        s.access(gb, 2);
        s.access(ga, 1); // warm for A: 1 access between (b), 1 unique
        assert_eq!(s.groups()[ga].stack, vec![1]);
        assert!(s.groups()[gb].stack.is_empty());
        assert!((s.access_share(ga) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_sample_filter() {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let g = s.register_group("A");
        for _ in 0..MIN_SAMPLES {
            s.access(g, 7);
        }
        // MIN_SAMPLES accesses → MIN_SAMPLES − 1 warm samples: not modelable.
        assert!(!s.groups()[g].is_modelable());
        s.access(g, 7);
        assert!(s.groups()[g].is_modelable());
        assert_eq!(s.modelable_groups().count(), 1);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let g = GroupSamples {
            name: "loop".into(),
            stack: vec![2, 2, 2, 2, 2, 2, 2, 1_000_000],
            reuse: vec![],
            accesses: 8,
            cold: 0,
        };
        assert_eq!(g.median_stack(), Some(2.0));
        assert!(g.mean_stack().unwrap() > 100_000.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let g = GroupSamples {
            name: "q".into(),
            stack: vec![0, 10, 20, 30],
            reuse: vec![5],
            accesses: 5,
            cold: 0,
        };
        assert_eq!(g.stack_quantile(0.0), Some(0.0));
        assert_eq!(g.stack_quantile(1.0), Some(30.0));
        assert_eq!(g.stack_quantile(0.5), Some(15.0));
        assert_eq!(g.median_reuse(), Some(5.0));
        assert_eq!(g.stack_quantile(2.0), None);
    }

    #[test]
    fn empty_group_has_no_stats() {
        let g = GroupSamples::default();
        assert_eq!(g.median_stack(), None);
        assert_eq!(g.mean_stack(), None);
        assert!(!g.is_modelable());
    }
}
