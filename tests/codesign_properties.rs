//! Property-based verification of the co-design layer: problem inflation
//! inverts footprint models, upgrade algebra is consistent, and straw-man
//! analysis respects its definitions.

use exareq::codesign::{
    analyze_upgrade, catalog, inflate_problem, Inflation, SystemSkeleton, Upgrade,
};
use exareq::core::pmnf::{Exponents, Model, Term};
use proptest::prelude::*;

fn footprint(coeff: f64, poly: f64, log: f64) -> Model {
    Model::new(
        0.0,
        vec![Term::new(
            coeff,
            vec![Exponents::constant(), Exponents::new(poly, log)],
        )],
        vec!["p".into(), "n".into()],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inflation inverts the footprint: footprint(p, n*) == memory.
    #[test]
    fn inflation_inverts_footprint(
        coeff in 1.0f64..1e6,
        poly in prop_oneof![Just(0.5f64), Just(1.0), Just(1.5), Just(2.0)],
        log in prop_oneof![Just(0.0f64), Just(1.0)],
        mem_exp in 8.0f64..14.0,
    ) {
        let f = footprint(coeff, poly, log);
        let sys = SystemSkeleton::new(1e4, 10f64.powf(mem_exp));
        match inflate_problem(&f, &sys) {
            Inflation::Fits(n) => {
                let back = f.eval(&[sys.processes, n]);
                prop_assert!(
                    (back - sys.mem_per_process).abs() / sys.mem_per_process < 1e-6,
                    "footprint({n}) = {back} vs memory {}",
                    sys.mem_per_process
                );
            }
            Inflation::TooBig { floor_bytes } => {
                // Only possible if even n = 1 exceeds memory.
                prop_assert!(floor_bytes > sys.mem_per_process);
            }
            Inflation::Unbounded => prop_assert!(false, "model depends on n"),
        }
    }

    /// More memory never shrinks the inflated problem (monotonicity).
    #[test]
    fn inflation_monotone_in_memory(
        coeff in 1.0f64..1e5,
        poly in prop_oneof![Just(0.5f64), Just(1.0), Just(1.5)],
        m1 in 9.0f64..12.0,
        dm in 0.1f64..2.0,
    ) {
        let f = footprint(coeff, poly, 0.0);
        let s1 = SystemSkeleton::new(100.0, 10f64.powf(m1));
        let s2 = SystemSkeleton::new(100.0, 10f64.powf(m1 + dm));
        let n1 = inflate_problem(&f, &s1).n().unwrap();
        let n2 = inflate_problem(&f, &s2).n().unwrap();
        prop_assert!(n2 >= n1);
    }

    /// Upgrade algebra: overall-problem ratio equals p_factor × n-ratio for
    /// every application and upgrade (by definition of the workflow).
    #[test]
    fn overall_ratio_decomposes(app_idx in 0usize..5, up_idx in 0usize..3) {
        let apps = catalog::paper_models();
        let app = &apps[app_idx];
        let up = &Upgrade::ALL[up_idx];
        let base = SystemSkeleton::reference_large();
        if let Ok(o) = analyze_upgrade(app, &base, up) {
            prop_assert!(
                (o.ratio_overall - up.p_factor * o.ratio_n).abs()
                    <= 1e-9 * (1.0 + o.ratio_overall),
                "{} {}: {} vs {}",
                app.name,
                up.name,
                o.ratio_overall,
                up.p_factor * o.ratio_n
            );
        }
    }

    /// Applying an upgrade then its inverse restores the skeleton.
    #[test]
    fn upgrades_invert(p_exp in 2.0f64..7.0, m_exp in 8.0f64..12.0, up_idx in 0usize..3) {
        let base = SystemSkeleton::new(10f64.powf(p_exp), 10f64.powf(m_exp));
        let up = &Upgrade::ALL[up_idx];
        let there = up.apply(&base);
        let inverse = Upgrade {
            name: "inv",
            description: "inverse",
            p_factor: 1.0 / up.p_factor,
            m_factor: 1.0 / up.m_factor,
        };
        let back = inverse.apply(&there);
        prop_assert!((back.processes - base.processes).abs() / base.processes < 1e-12);
        prop_assert!(
            (back.mem_per_process - base.mem_per_process).abs() / base.mem_per_process < 1e-12
        );
    }
}

#[test]
fn model_sum_matches_pointwise_addition() {
    // Cross-check Model::sum against evaluation on a grid, with the real
    // catalog models.
    let milc = catalog::milc();
    let sum = Model::sum(&[&milc.flops, &milc.comm_bytes]);
    for p in [2.0, 64.0, 1e6] {
        for n in [16.0, 1024.0, 1e6] {
            let direct = milc.flops.eval(&[p, n]) + milc.comm_bytes.eval(&[p, n]);
            let via_sum = sum.eval(&[p, n]);
            assert!(
                (direct - via_sum).abs() <= 1e-9 * (1.0 + direct.abs()),
                "at ({p}, {n}): {direct} vs {via_sum}"
            );
        }
    }
}
