//! Property-based verification of the simulator: collectives compute the
//! right values for arbitrary inputs and rank counts, byte accounting
//! is conserved (every byte sent is received), fault injection is a pure
//! function of the plan seed, and injected crashes always produce a clean
//! structured outcome rather than a hang or a stray panic.

use exareq::sim::{
    run_ranks, run_ranks_supervised, run_ranks_with_faults, total_stats, FaultPlan, RankStatus,
    SimConfig,
};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allreduce produces the exact serial sum on every rank, for any rank
    /// count and any payload.
    #[test]
    fn allreduce_equals_serial_sum(
        p in 1usize..12,
        seed in proptest::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let len = seed.len();
        let results = run_ranks(p, |rank| {
            // Rank r contributes seed rotated by r (deterministic, distinct).
            let mut v: Vec<f64> = (0..len)
                .map(|i| seed[(i + rank.rank()) % len])
                .collect();
            rank.allreduce_sum(&mut v);
            v
        });
        // Serial reference.
        let mut expect = vec![0.0f64; len];
        for r in 0..p {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += seed[(i + r) % len];
            }
        }
        for res in &results {
            for (got, want) in res.value.iter().zip(&expect) {
                prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "{got} vs {want}");
            }
        }
    }

    /// Bytes are conserved: total sent equals total received, for any mix
    /// of collectives.
    #[test]
    fn bytes_conserved(p in 2usize..10, payload in 1usize..300, root in 0usize..10) {
        let root = root % p;
        let results = run_ranks(p, |rank| {
            let data = vec![1u8; payload];
            let _ = rank.bcast(root, &data);
            let mut v = vec![1.0f64; payload.min(32)];
            rank.allreduce_sum(&mut v);
            let blocks: Vec<Vec<u8>> = (0..rank.size()).map(|_| vec![0u8; 8]).collect();
            let _ = rank.alltoall(&blocks);
            let _ = rank.allgather(&data[..payload.min(16)]);
        });
        let t = total_stats(&results);
        prop_assert_eq!(t.total_sent(), t.total_recv());
        prop_assert_eq!(t.messages_sent, t.messages_recv);
    }

    /// Allgather returns every rank's block, in rank order, for arbitrary
    /// block contents.
    #[test]
    fn allgather_orders_blocks(p in 1usize..10, tag in 0u8..255) {
        let results = run_ranks(p, |rank| {
            let mine = vec![tag ^ rank.rank() as u8; 3];
            rank.allgather(&mine)
                .into_iter()
                .map(|b| b[0])
                .collect::<Vec<u8>>()
        });
        for res in &results {
            for (src, &byte) in res.value.iter().enumerate() {
                prop_assert_eq!(byte, tag ^ src as u8);
            }
        }
    }

    /// Determinism: identical programs produce identical statistics.
    #[test]
    fn runs_are_deterministic(p in 2usize..8, payload in 1usize..100) {
        let run = || {
            let results = run_ranks(p, |rank| {
                let data = vec![0u8; payload];
                let _ = rank.bcast(0, &data);
                rank.stats().clone()
            });
            total_stats(&results)
        };
        prop_assert_eq!(run(), run());
    }

    /// Fault injection is a pure function of the plan: for any seed and any
    /// mix of message-fault probabilities, two runs of the same program
    /// produce byte-identical per-rank statuses, comm stats, and fault
    /// stats, regardless of thread interleaving.
    #[test]
    fn fault_injection_is_reproducible_for_any_seed(
        p in 2usize..6,
        seed in any::<u64>(),
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.4,
        delay_p in 0.0f64..0.4,
        corrupt_p in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::with_seed(seed)
            .drop(drop_p)
            .duplicate(dup_p)
            .delay(delay_p)
            .corrupt(corrupt_p, 1);
        let run = || {
            let outcome = run_ranks_with_faults(p, &plan, |rank| {
                // Fire-and-forget: every rank streams messages to every
                // peer and never receives, so no fault can block the run.
                for round in 0..6u64 {
                    for dst in 0..rank.size() {
                        if dst != rank.rank() {
                            rank.send(dst, round, &[rank.rank() as u8; 24]);
                        }
                    }
                }
            })
            .expect("a send-only program cannot stall");
            outcome
                .ranks
                .iter()
                .map(|r| (r.status.clone(), r.stats.clone(), r.faults.clone()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Injected rank crashes never hang a collective and never surface as
    /// an unstructured panic: every rank reports Completed, Crashed, or
    /// Aborted, and when the crash point lies beyond the program all
    /// ranks complete with the exact collective result.
    #[test]
    fn collectives_complete_or_fail_cleanly_under_crashes(
        p in 2usize..7,
        victim in 0usize..7,
        at_op in 1u64..24,
        kind in 0usize..4,
    ) {
        let victim = victim % p;
        let cfg = SimConfig {
            faults: FaultPlan::with_seed(0xC4A5).crash(victim, at_op),
            watchdog: Some(Duration::from_secs(10)),
        };
        let outcome = run_ranks_supervised(p, &cfg, |rank| match kind {
            0 => {
                let mut v = vec![1.0f64];
                rank.allreduce_sum(&mut v);
                v[0]
            }
            1 => rank.bcast(0, &[3u8; 4]).iter().map(|&b| f64::from(b)).sum(),
            2 => rank
                .allgather(&[rank.rank() as u8])
                .iter()
                .map(|b| f64::from(b[0]))
                .sum(),
            _ => {
                let blocks: Vec<Vec<u8>> = (0..rank.size()).map(|_| vec![1u8]).collect();
                rank.alltoall(&blocks).iter().map(|b| f64::from(b[0])).sum()
            }
        })
        .expect("a crash-only plan must not be diagnosed as a deadlock");
        prop_assert!(outcome.stall.is_none(), "crash cascade stalled: {:?}", outcome.stall);
        for r in &outcome.ranks {
            prop_assert!(
                !matches!(r.status, RankStatus::Panicked { .. }),
                "rank {} leaked an unstructured panic: {:?}",
                r.rank,
                r.status
            );
        }
        let expected = match kind {
            0 => p as f64,                         // allreduce of 1.0 per rank
            1 => 12.0,                             // bcast of [3; 4]
            2 => (0..p).map(|r| r as f64).sum(),   // allgather of rank ids
            _ => p as f64,                         // alltoall of 1-byte blocks
        };
        if outcome.completed() == p {
            // The crash point lay beyond the program's op count.
            prop_assert_eq!(outcome.total_faults().injected_crashes, 0);
            for r in &outcome.ranks {
                prop_assert_eq!(r.value, Some(expected));
            }
        } else {
            // The crash fired: exactly the victim is Crashed, everyone
            // else either finished first or aborted on the dead peer.
            prop_assert!(matches!(outcome.ranks[victim].status, RankStatus::Crashed { .. }));
            prop_assert_eq!(outcome.total_faults().injected_crashes, 1);
            for r in &outcome.ranks {
                if r.rank != victim {
                    prop_assert!(matches!(
                        r.status,
                        RankStatus::Completed | RankStatus::Aborted { .. }
                    ));
                }
            }
        }
    }
}
