//! Property-based corruption-safety checks for the chaos layer and the
//! hardened net client, mirroring `http_properties.rs`: no seeded
//! mangling of the wire — corruption, truncation — may ever let a
//! digest-checking client commit a `200` whose body diverges from what
//! the origin actually sent. The allowed outcomes are a typed error, a
//! non-200 status, or a byte-identical body; nothing else.
//!
//! The schedule itself is property-checked too: for arbitrary seeds and
//! mixes, `ChaosPlan::schedule` must be a pure function of
//! `(seed, connection index)` — the replay contract behind
//! `--chaos-seed`.

use exareq::chaos::{ChaosPlan, ChaosProxy};
use exareq::core::cancel::{CancelReason, CancelToken};
use exareq::net::{digest_hex, ClientConfig, HttpClient};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::Duration;

/// A one-shot origin: accepts connections until dropped, answers each
/// with the same well-formed, digest-stamped `200` carrying `body`.
/// Returns the listen address.
fn spawn_origin(body: Vec<u8>) -> (String, std::thread::JoinHandle<()>, CancelToken) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind origin");
    let addr = listener.local_addr().expect("origin addr").to_string();
    listener.set_nonblocking(true).expect("nonblocking accept");
    let cancel = CancelToken::new();
    let handle = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            while !cancel.is_cancelled() {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                        // Drain the request head (single small write from
                        // the proxy; GETs end at the blank line).
                        let mut buf = Vec::new();
                        let mut chunk = [0u8; 1024];
                        while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                            match stream.read(&mut chunk) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                            }
                        }
                        let head = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\nX-Exareq-Digest: {}\r\n\r\n",
                            body.len(),
                            digest_hex(&body)
                        );
                        let _ = stream.write_all(head.as_bytes());
                        let _ = stream.write_all(&body);
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        })
    };
    (addr, handle, cancel)
}

/// Drives one `GET` through a chaos proxy running `plan` and asserts the
/// corruption-safety property: any `200` the hardened client accepts is
/// byte-identical to the origin body.
fn assert_no_divergent_200(plan: ChaosPlan, body: Vec<u8>) {
    let (origin_addr, origin_thread, origin_cancel) = spawn_origin(body.clone());
    let chaos_cancel = CancelToken::new();
    let proxy = ChaosProxy::start("127.0.0.1:0", &origin_addr, plan, &chaos_cancel)
        .expect("chaos proxy starts");

    let client = HttpClient::new(ClientConfig {
        connect_timeout: Duration::from_millis(500),
        exchange_deadline: Duration::from_millis(800),
        retry_budget: 1,
        request_budget: Some(Duration::from_millis(800)),
        require_digest: true,
        ..ClientConfig::default()
    });
    let result = client.get(&proxy.addr().to_string(), "/q", &CancelToken::new());
    if let Ok(response) = result {
        if response.status == 200 {
            assert_eq!(
                response.body, body,
                "a mangled stream must never be committed as a divergent 200"
            );
        }
    }
    // Every other outcome — typed transport/integrity error, non-200 —
    // is a safe refusal.

    chaos_cancel.cancel(CancelReason::Interrupt);
    proxy.join();
    origin_cancel.cancel(CancelReason::Interrupt);
    let _ = origin_thread.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded byte-flipping corruption on the response path never yields
    /// a divergent 200 through a digest-checking client.
    #[test]
    fn corrupted_stream_never_commits_a_divergent_200(
        seed in any::<u64>(),
        flips in 1usize..24,
        body in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        assert_no_divergent_200(ChaosPlan::with_seed(seed).corrupt(1.0, flips), body);
    }

    /// Mid-body truncation never yields a divergent (short) 200: the
    /// bounded reader turns it into `TruncatedResponse` instead.
    #[test]
    fn truncated_stream_never_commits_a_divergent_200(
        seed in any::<u64>(),
        body in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        assert_no_divergent_200(ChaosPlan::with_seed(seed).truncate(1.0), body);
    }

    /// The schedule is a pure function of `(seed, connection index)`:
    /// re-parsing the same spec replays the same schedule, and
    /// per-connection decisions match their schedule entries.
    #[test]
    fn schedules_are_pure_in_seed_and_connection(
        seed in any::<u64>(),
        reset in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
        n in 1usize..128,
    ) {
        let a = ChaosPlan::with_seed(seed).reset(reset).corrupt(corrupt, 4);
        let b = ChaosPlan::with_seed(seed).reset(reset).corrupt(corrupt, 4);
        prop_assert_eq!(a.schedule(n), b.schedule(n));
        let schedule = a.schedule(n);
        for (conn, entry) in schedule.iter().enumerate() {
            prop_assert_eq!(&a.decision(conn as u64), entry);
        }
    }
}
