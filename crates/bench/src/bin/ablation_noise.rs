//! Ablation **A2**: robustness of model generation under multiplicative
//! measurement noise.
//!
//! The paper relies on "highly reproducible hardware and software counters"
//! and needs only one run per configuration; this study quantifies how much
//! that assumption buys. Synthetic requirements with known exponents are
//! perturbed with uniform multiplicative noise of increasing level; we
//! report how often the generator still recovers the exact generating
//! exponents and how far its exascale extrapolation drifts.
//!
//! Run with `cargo run --release -p exareq-bench --bin ablation_noise`.

use exareq_bench::write_report;
use exareq_core::fit::{fit_single, FitConfig};
use exareq_core::measurement::Experiment;
use exareq_core::pmnf::Exponents;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn main() {
    let shapes: [(&str, f64, f64); 4] = [
        ("n", 1.0, 0.0),
        ("n·log n", 1.0, 1.0),
        ("sqrt(n)", 0.5, 0.0),
        ("p^0.25·log p", 0.25, 1.0),
    ];
    let xs: [f64; 7] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let levels = [0.0, 0.005, 0.01, 0.02, 0.05, 0.10];
    let reps = 30usize;
    let horizon: f64 = 1e6;
    let cfg = FitConfig::default();
    let mut rng = StdRng::seed_from_u64(0xC0DE5EED);

    let mut out = String::new();
    out.push_str("== Ablation A2: model recovery under multiplicative noise ==\n");
    out.push_str(&format!(
        "({} repetitions per cell; exact-exponent recovery rate | median extrapolation error at x = 1e6)\n\n",
        reps
    ));
    out.push_str(&format!("{:<16}", "shape"));
    for l in levels {
        out.push_str(&format!(" {:>16}", format!("±{:.1}%", l * 100.0)));
    }
    out.push('\n');

    for (name, i, j) in shapes {
        out.push_str(&format!("{name:<16}"));
        for level in levels {
            let mut hits = 0usize;
            let mut errs: Vec<f64> = Vec::new();
            for _ in 0..reps {
                let clean = Experiment::from_fn(vec!["x"], &[&xs], |c| {
                    1e5 * c[0].powf(i) * c[0].log2().powf(j)
                });
                let noisy = clean.with_noise(level, || rng.random::<f64>());
                let Ok(m) = fit_single(&noisy, &cfg) else {
                    continue;
                };
                if m.model.dominant_exponents(0) == Exponents::new(i, j) {
                    hits += 1;
                }
                let truth = 1e5 * horizon.powf(i) * horizon.log2().powf(j);
                errs.push(((m.model.eval(&[horizon]) - truth) / truth).abs());
            }
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN);
            out.push_str(&format!(
                " {:>7.0}%|{:>6.1}%",
                100.0 * hits as f64 / reps as f64,
                med * 100.0
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\nReading: with deterministic counters (0% noise) recovery is exact.\n\
         Moderate noise mostly perturbs the *coefficients* (extrapolation\n\
         error grows gracefully); exponent recovery degrades once noise\n\
         approaches the inter-hypothesis separation on the measured range —\n\
         motivating the paper's choice of reproducible counters over timings.\n",
    );
    print!("{out}");
    write_report("ablation_noise.txt", &out);
}
