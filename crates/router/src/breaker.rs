//! Per-replica circuit breakers.
//!
//! The health table (`exareq_net::health`) answers "is this replica
//! alive?" from the *prober's* point of view — a slow background pulse.
//! The breaker answers the complementary, faster question from the
//! *request path*: "have my own recent exchanges with this replica been
//! failing so consistently that sending more traffic is just queueing
//! pain?" Three states, classic transitions:
//!
//! - **Closed** — normal. Consecutive request failures are counted;
//!   [`TRIP_AFTER`] of them in a row trips the breaker open.
//! - **Open** — the replica is skipped at plan time. After `cooldown`
//!   elapses the next [`CircuitBreaker::allow`] call converts the state
//!   to half-open and admits the caller as the trial request.
//! - **HalfOpen** — traffic is admitted; the first recorded outcome
//!   decides (success closes, failure re-opens and restarts the
//!   cooldown). Admitting all half-open traffic instead of exactly one
//!   trial keeps `plan()` side-effect free: planning a route must not
//!   consume the trial of a request that is never sent.
//!
//! What counts as a breaker failure is wider than a health failure:
//! transport errors *and* overload statuses (503/504) trip it, because
//! both mean "this replica cannot absorb my traffic right now", while
//! only transport errors mark a replica suspect/dead — an overloaded
//! replica is alive and will drain.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Consecutive request-path failures that trip a closed breaker open.
pub const TRIP_AFTER: u32 = 5;

/// Breaker states, in the order a failing replica traverses them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: skip this replica until the cooldown elapses.
    Open,
    /// Cooldown elapsed: traffic admitted, first outcome decides.
    HalfOpen,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// One replica's circuit breaker. Cheap interior mutability; every call
/// takes the lock for a few instructions only.
pub struct CircuitBreaker {
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that, once tripped, waits `cooldown` before
    /// admitting a half-open trial.
    pub fn new(cooldown: Duration) -> Self {
        CircuitBreaker {
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// Whether a request may be sent to this replica right now. An open
    /// breaker whose cooldown has elapsed flips to half-open here and
    /// answers yes — the caller becomes the trial traffic.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if elapsed {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful exchange: closes the breaker and resets the
    /// failure streak.
    pub fn record_ok(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Records a failed exchange. A half-open trial failure re-opens
    /// immediately; a closed breaker opens after [`TRIP_AFTER`]
    /// consecutive failures.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= TRIP_AFTER {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Current state, without side effects (no half-open promotion).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_open_after_consecutive_failures_only() {
        let breaker = CircuitBreaker::new(Duration::from_millis(50));
        for _ in 0..TRIP_AFTER - 1 {
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        // A success resets the streak: the next failures start from zero.
        breaker.record_ok();
        for _ in 0..TRIP_AFTER - 1 {
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
    }

    #[test]
    fn half_open_trial_success_closes() {
        let breaker = CircuitBreaker::new(Duration::from_millis(20));
        for _ in 0..TRIP_AFTER {
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(30));
        assert!(breaker.allow(), "cooldown elapsed: trial admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_ok();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow());
    }

    #[test]
    fn half_open_trial_failure_reopens_and_restarts_cooldown() {
        let breaker = CircuitBreaker::new(Duration::from_millis(40));
        for _ in 0..TRIP_AFTER {
            breaker.record_failure();
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(breaker.allow());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "cooldown restarted by the trial failure");
        std::thread::sleep(Duration::from_millis(50));
        assert!(breaker.allow(), "second cooldown elapsed");
    }

    #[test]
    fn open_breaker_ignores_further_failures() {
        let breaker = CircuitBreaker::new(Duration::from_secs(60));
        for _ in 0..TRIP_AFTER + 3 {
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
    }
}
