//! Bootstrap stability of fitted models.
//!
//! The paper leans on "highly reproducible hardware and software counters"
//! to justify one run per configuration; when a user instead brings noisy
//! repeated measurements, the natural question is *how much to trust the
//! selected exponents*. This module answers it by case resampling: refit
//! on bootstrap resamples of the repetitions and report how often the
//! dominant exponents of the original fit are re-selected, plus the spread
//! of an extrapolated prediction.

use crate::fit::{fit_single, FitConfig};
use crate::measurement::Experiment;
use crate::pmnf::Exponents;
use serde::{Deserialize, Serialize};

/// Result of a bootstrap stability analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stability {
    /// Dominant exponents of the fit on the full data.
    pub lead: Exponents,
    /// Fraction of bootstrap resamples whose refit picked the same
    /// dominant exponents (1.0 = fully stable).
    pub exponent_agreement: f64,
    /// Number of resamples that produced a fit at all.
    pub successful_resamples: usize,
    /// Relative half-spread of the extrapolated prediction at the probe
    /// point: `(p90 − p10) / (2·median)` over resamples.
    pub prediction_spread: f64,
}

/// Runs a case-resampling bootstrap over the experiment's observations.
///
/// `resamples` fits are performed on datasets drawn with replacement
/// (grouped by coordinate so every configuration keeps at least one
/// observation); `probe_x` is where extrapolation spread is evaluated.
/// `uniform` supplies randomness in `[0, 1)` (pass a seeded RNG closure
/// for reproducibility).
///
/// Returns `None` if the original fit fails.
pub fn bootstrap_stability(
    exp: &Experiment,
    cfg: &FitConfig,
    resamples: usize,
    probe_x: f64,
    mut uniform: impl FnMut() -> f64,
) -> Option<Stability> {
    let base = fit_single(exp, cfg).ok()?;
    let lead = base.model.dominant_exponents(0);

    // Group observation indices by coordinate.
    let mut groups: Vec<(Vec<f64>, Vec<usize>)> = Vec::new();
    for (i, m) in exp.points.iter().enumerate() {
        match groups.iter_mut().find(|(c, _)| c == &m.coords) {
            Some((_, idx)) => idx.push(i),
            None => groups.push((m.coords.clone(), vec![i])),
        }
    }

    let mut agree = 0usize;
    let mut ok = 0usize;
    let mut predictions: Vec<f64> = Vec::new();
    for _ in 0..resamples {
        let mut re = Experiment::new(exp.params.clone());
        for (_, idx) in &groups {
            // Draw |idx| observations with replacement from this config.
            for _ in 0..idx.len() {
                let pick = idx[(uniform() * idx.len() as f64) as usize % idx.len()];
                let m = &exp.points[pick];
                re.push(&m.coords, m.value);
            }
        }
        let Ok(fit) = fit_single(&re, cfg) else {
            continue;
        };
        ok += 1;
        if fit.model.dominant_exponents(0) == lead {
            agree += 1;
        }
        predictions.push(fit.model.eval(&[probe_x]));
    }
    if ok == 0 {
        return Some(Stability {
            lead,
            exponent_agreement: 0.0,
            successful_resamples: 0,
            prediction_spread: f64::INFINITY,
        });
    }
    predictions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |t: f64| predictions[((predictions.len() - 1) as f64 * t) as usize];
    let med = q(0.5).abs().max(1e-300);
    Some(Stability {
        lead,
        exponent_agreement: agree as f64 / ok as f64,
        successful_resamples: ok,
        prediction_spread: (q(0.9) - q(0.1)).abs() / (2.0 * med),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LCG so tests need no external RNG.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn noisy_experiment(level: f64, seed: u64) -> Experiment {
        let mut rng = lcg(seed);
        let mut exp = Experiment::new(vec!["x"]);
        for &x in &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            for _rep in 0..5 {
                let eps = (rng() * 2.0 - 1.0) * level;
                exp.push(&[x], 100.0 * x * (1.0 + eps));
            }
        }
        exp
    }

    #[test]
    fn exact_data_is_fully_stable() {
        let exp = noisy_experiment(0.0, 1);
        let s = bootstrap_stability(&exp, &FitConfig::coarse(), 30, 1e6, lcg(2)).unwrap();
        assert_eq!(s.lead, Exponents::new(1.0, 0.0));
        assert_eq!(s.exponent_agreement, 1.0);
        assert_eq!(s.successful_resamples, 30);
        assert!(s.prediction_spread < 1e-9, "{}", s.prediction_spread);
    }

    #[test]
    fn mild_noise_keeps_high_agreement() {
        // Consistent with ablation A2: exponent identification is fragile —
        // already at ±2% noise the dense grid's neighbors become
        // exchangeable. At ±0.2% the selection stays solid, and that is
        // exactly the trust signal bootstrap_stability exists to expose.
        let exp = noisy_experiment(0.002, 3);
        let s = bootstrap_stability(&exp, &FitConfig::coarse(), 40, 1e6, lcg(4)).unwrap();
        assert!(
            s.exponent_agreement >= 0.8,
            "agreement {}",
            s.exponent_agreement
        );
        assert!(s.prediction_spread < 0.5, "{}", s.prediction_spread);
        // And the degradation is visible one decade of noise later.
        let noisy = noisy_experiment(0.05, 3);
        let sn = bootstrap_stability(&noisy, &FitConfig::coarse(), 40, 1e6, lcg(4)).unwrap();
        assert!(sn.exponent_agreement <= s.exponent_agreement);
    }

    #[test]
    fn heavy_noise_lowers_confidence_signal() {
        // Not asserting low agreement (the grid may stay lucky) — assert the
        // *spread* reflects the noise: heavier noise ⇒ wider predictions.
        let mild = bootstrap_stability(
            &noisy_experiment(0.01, 5),
            &FitConfig::coarse(),
            40,
            1e6,
            lcg(6),
        )
        .unwrap();
        let heavy = bootstrap_stability(
            &noisy_experiment(0.20, 5),
            &FitConfig::coarse(),
            40,
            1e6,
            lcg(6),
        )
        .unwrap();
        assert!(
            heavy.prediction_spread > mild.prediction_spread,
            "mild {} vs heavy {}",
            mild.prediction_spread,
            heavy.prediction_spread
        );
    }

    #[test]
    fn resampling_preserves_config_counts() {
        // Indirect check: stability runs successfully on minimal data where
        // losing a whole configuration would make fitting impossible.
        let mut exp = Experiment::new(vec!["x"]);
        for &x in &[2.0, 4.0, 8.0] {
            exp.push(&[x], 7.0 * x);
        }
        let s = bootstrap_stability(&exp, &FitConfig::coarse(), 20, 100.0, lcg(7)).unwrap();
        assert_eq!(s.successful_resamples, 20);
    }
}
