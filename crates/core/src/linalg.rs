//! Small dense linear algebra for least-squares fitting.
//!
//! The model generator solves many tiny least-squares problems (tens of rows,
//! at most a handful of columns), so we implement a compact column-major
//! matrix and a Householder-QR least-squares solver rather than pulling in a
//! full linear-algebra dependency. Columns are scaled to unit infinity-norm
//! before factorization because PMNF basis values span many orders of
//! magnitude (`n^3` vs `log2(n)`).

// Matrix code reads clearest with explicit row/column index loops.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Column-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element (r, c) lives at `data[c * rows + r]`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice of slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns column `c` as a slice.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Returns column `c` as a mutable slice.
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Computes `self * x` for a vector `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for c in 0..self.cols {
            let col = self.col(c);
            let xc = x[c];
            for r in 0..self.rows {
                y[r] += col[r] * xc;
            }
        }
        y
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[c * self.rows + r]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[c * self.rows + r]
    }
}

/// Error returned when a least-squares system cannot be solved reliably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The design matrix is (numerically) rank deficient.
    RankDeficient {
        /// Index of the first column whose pivot collapsed.
        column: usize,
    },
    /// Dimensions of the inputs do not match.
    DimensionMismatch,
    /// A non-finite value (NaN/∞) appeared in the inputs.
    NonFinite,
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::RankDeficient { column } => {
                write!(f, "design matrix is rank deficient at column {column}")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::NonFinite => write!(f, "non-finite value in input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Relative pivot threshold below which a column is declared dependent.
const RANK_TOL: f64 = 1e-10;

/// Solves `min ‖A·x − b‖₂` by Householder QR with column scaling.
///
/// Returns the coefficient vector `x` (length `A.cols()`).
///
/// Columns of `A` are first scaled to unit infinity norm, which makes the
/// rank test meaningful when basis functions differ by many orders of
/// magnitude; the returned coefficients are expressed for the *original*
/// (unscaled) columns.
///
/// # Errors
/// - [`LinalgError::DimensionMismatch`] if `b.len() != A.rows()` or the
///   system is underdetermined (`rows < cols`).
/// - [`LinalgError::NonFinite`] if any input entry is not finite.
/// - [`LinalgError::RankDeficient`] if two basis columns are linearly
///   dependent on the sampled points.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = (a.rows(), a.cols());
    if b.len() != m || m < n || n == 0 {
        return Err(LinalgError::DimensionMismatch);
    }
    if a.data.iter().any(|v| !v.is_finite()) || b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }

    // Column scaling: A' = A * D, solve A'y = b, x = D y.
    let mut work = a.clone();
    let mut scale = vec![1.0_f64; n];
    for c in 0..n {
        let mx = work.col(c).iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
        if mx > 0.0 {
            scale[c] = 1.0 / mx;
            for v in work.col_mut(c) {
                *v *= scale[c];
            }
        }
    }
    let mut rhs = b.to_vec();

    // Householder QR, applying reflectors to rhs as we go. The reflector
    // vector is copied out of the matrix before use so the updates cannot
    // corrupt it.
    let mut v = vec![0.0_f64; m];
    for k in 0..n {
        // Build reflector for column k, rows k..m.
        let mut norm = 0.0_f64;
        for r in k..m {
            norm += work[(r, k)] * work[(r, k)];
        }
        let norm = norm.sqrt();
        if norm < RANK_TOL {
            return Err(LinalgError::RankDeficient { column: k });
        }
        let alpha = if work[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x − alpha·e1, copied into a scratch buffer.
        v[k] = work[(k, k)] - alpha;
        if v[k] == 0.0 {
            // Column already triangular; a null reflector would divide by 0.
            v[k] = f64::MIN_POSITIVE;
        }
        let mut vnorm2 = v[k] * v[k];
        for r in k + 1..m {
            v[r] = work[(r, k)];
            vnorm2 += v[r] * v[r];
        }
        // Apply H = I − 2 v vᵀ / ‖v‖² to the remaining columns and rhs.
        for c in k..n {
            let mut dot = 0.0;
            for r in k..m {
                dot += v[r] * work[(r, c)];
            }
            let f = 2.0 * dot / vnorm2;
            for r in k..m {
                work[(r, c)] -= f * v[r];
            }
        }
        {
            let mut dot = 0.0;
            for r in k..m {
                dot += v[r] * rhs[r];
            }
            let f = 2.0 * dot / vnorm2;
            for r in k..m {
                rhs[r] -= f * v[r];
            }
        }
        // Enforce exact triangularity for the back substitution.
        work[(k, k)] = alpha;
        for r in k + 1..m {
            work[(r, k)] = 0.0;
        }
    }

    // Back substitution on the upper-triangular R (first n rows).
    let mut x = vec![0.0_f64; n];
    for k in (0..n).rev() {
        let mut s = rhs[k];
        for c in k + 1..n {
            s -= work[(k, c)] * x[c];
        }
        let d = work[(k, k)];
        if d.abs() < RANK_TOL {
            return Err(LinalgError::RankDeficient { column: k });
        }
        x[k] = s / d;
    }

    // Undo column scaling.
    for (xi, s) in x.iter_mut().zip(&scale) {
        *xi *= *s;
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    Ok(x)
}

/// An updatable QR factorization for recursive least squares.
///
/// [`lstsq`] refactorizes from scratch — right for one-shot fits, wasteful
/// for the refresh path where observations arrive one at a time against a
/// *fixed* hypothesis. `QrFactor` keeps only the `n × n` triangular factor
/// `R`, the projected right-hand side `Qᵀb`, and the accumulated residual:
/// [`QrFactor::push_row`] folds one new row in with a sweep of Givens
/// rotations (`O(n²)`, no design-matrix rebuild), after which
/// [`QrFactor::solve`] returns the refitted coefficients.
///
/// Column scaling is fixed at construction (unit infinity norm over the
/// seed matrix, exactly as [`lstsq`] scales) so pushed rows are measured
/// against the same conditioning baseline as the seed rows.
#[derive(Debug, Clone)]
pub struct QrFactor {
    cols: usize,
    rows: usize,
    /// Upper-triangular `R` of the scaled design (`cols × cols`).
    r: Matrix,
    /// First `cols` entries of `Qᵀb`.
    qtb: Vec<f64>,
    /// Accumulated residual sum of squares `‖A·x − b‖₂²` at the optimum.
    rss: f64,
    /// Fixed per-column scale factors (seed-matrix unit infinity norm).
    scale: Vec<f64>,
}

impl QrFactor {
    /// Factorizes the seed system `A·x ≈ b` by pushing its rows one at a
    /// time — the initial build *is* the row update, so the incremental
    /// path has no separate batch code to drift from.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch or zero
    /// columns; [`LinalgError::NonFinite`] on NaN/∞ entries.
    pub fn new(a: &Matrix, b: &[f64]) -> Result<Self, LinalgError> {
        let (m, n) = (a.rows(), a.cols());
        if b.len() != m || n == 0 {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut scale = vec![1.0_f64; n];
        for c in 0..n {
            let mx = a.col(c).iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
            if !mx.is_finite() {
                return Err(LinalgError::NonFinite);
            }
            if mx > 0.0 {
                scale[c] = 1.0 / mx;
            }
        }
        let mut qr = QrFactor {
            cols: n,
            rows: 0,
            r: Matrix::zeros(n, n),
            qtb: vec![0.0; n],
            rss: 0.0,
            scale,
        };
        let mut row = vec![0.0_f64; n];
        for i in 0..m {
            for c in 0..n {
                row[c] = a[(i, c)];
            }
            qr.push_row(&row, b[i])?;
        }
        Ok(qr)
    }

    /// Folds one new observation row into the factorization: a sweep of
    /// Givens rotations against `R` (`O(cols²)`), updating `Qᵀb` and the
    /// residual as it goes. The design matrix is never rebuilt.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `row.len() != cols`;
    /// [`LinalgError::NonFinite`] on NaN/∞ entries.
    pub fn push_row(&mut self, row: &[f64], y: f64) -> Result<(), LinalgError> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        if row.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let mut u: Vec<f64> = row.iter().zip(&self.scale).map(|(v, s)| v * s).collect();
        let mut z = y;
        for k in 0..self.cols {
            let a = self.r[(k, k)];
            let b = u[k];
            if b == 0.0 {
                continue;
            }
            let h = a.hypot(b);
            let (c, s) = (a / h, b / h);
            for j in k..self.cols {
                let rkj = self.r[(k, j)];
                let uj = u[j];
                self.r[(k, j)] = c * rkj + s * uj;
                u[j] = c * uj - s * rkj;
            }
            let q = self.qtb[k];
            self.qtb[k] = c * q + s * z;
            z = c * z - s * q;
        }
        self.rss += z * z;
        self.rows += 1;
        Ok(())
    }

    /// Rows folded in so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of coefficient columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Residual sum of squares at the current least-squares optimum.
    pub fn rss(&self) -> f64 {
        self.rss
    }

    /// Solves for the coefficients of the rows pushed so far — back
    /// substitution on `R`, unscaled to the original columns. Agrees with
    /// [`lstsq`] on the same rows up to rounding (the reflectors differ;
    /// the minimizer does not).
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] while underdetermined
    /// (`rows < cols`); [`LinalgError::RankDeficient`] when a pivot
    /// collapsed; [`LinalgError::NonFinite`] if the solution overflowed.
    pub fn solve(&self) -> Result<Vec<f64>, LinalgError> {
        let n = self.cols;
        if self.rows < n {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut x = vec![0.0_f64; n];
        for k in (0..n).rev() {
            let mut s = self.qtb[k];
            for c in k + 1..n {
                s -= self.r[(k, c)] * x[c];
            }
            let d = self.r[(k, k)];
            if d.abs() < RANK_TOL {
                return Err(LinalgError::RankDeficient { column: k });
            }
            x[k] = s / d;
        }
        for (xi, s) in x.iter_mut().zip(&self.scale) {
            *xi *= *s;
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
        Ok(x)
    }

    /// Statistical leverage `h = x*ᵀ (XᵀX)⁻¹ x*` of a candidate row
    /// against the rows pushed so far — the design-side factor of the
    /// expected variance reduction a measurement at `row` would buy.
    /// Computed as `‖R⁻ᵀ · D·x*‖²` by forward substitution (`XᵀX = RᵀR`
    /// on the scaled columns), so no normal matrix is ever formed.
    ///
    /// # Errors
    /// Same conditions as [`QrFactor::solve`].
    pub fn leverage(&self, row: &[f64]) -> Result<f64, LinalgError> {
        let n = self.cols;
        if row.len() != n || self.rows < n {
            return Err(LinalgError::DimensionMismatch);
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
        let u: Vec<f64> = row.iter().zip(&self.scale).map(|(v, s)| v * s).collect();
        let mut w = vec![0.0_f64; n];
        for k in 0..n {
            let mut s = u[k];
            for j in 0..k {
                s -= self.r[(j, k)] * w[j];
            }
            let d = self.r[(k, k)];
            if d.abs() < RANK_TOL {
                return Err(LinalgError::RankDeficient { column: k });
            }
            w[k] = s / d;
        }
        Ok(w.iter().map(|v| v * v).sum())
    }
}

/// Residual sum of squares `‖A·x − b‖₂²`.
pub fn rss(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(p, y)| (p - y) * (p - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} != {b}"
        );
    }

    #[test]
    fn index_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m[(2, 1)] = 7.5;
        m[(0, 0)] = -1.0;
        assert_eq!(m[(2, 1)], 7.5);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(1, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(2, 0)], 5.0);
        assert_eq!(m.col(0), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn mul_vec_simple() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let x = lstsq(&a, &[6.0, 8.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn overdetermined_line_fit() {
        // y = 2 + 3x sampled exactly at 5 points.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut a = Matrix::zeros(5, 2);
        let mut b = vec![0.0; 5];
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = x;
            b[i] = 2.0 + 3.0 * x;
        }
        let c = lstsq(&a, &b).unwrap();
        assert_close(c[0], 2.0, 1e-10);
        assert_close(c[1], 3.0, 1e-10);
        assert!(rss(&a, &c, &b) < 1e-18);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Noisy data: solution must beat small perturbations of itself.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
        let b = [1.1, 1.9, 3.2, 3.9];
        let x = lstsq(&a, &b).unwrap();
        let base = rss(&a, &x, &b);
        for d0 in [-1e-3, 1e-3] {
            for d1 in [-1e-3, 1e-3] {
                let pert = [x[0] + d0, x[1] + d1];
                assert!(rss(&a, &pert, &b) >= base - 1e-12);
            }
        }
    }

    #[test]
    fn wildly_scaled_columns() {
        // Columns differing by 15 orders of magnitude still solve cleanly.
        let xs = [2.0_f64, 4.0, 8.0, 16.0, 32.0, 64.0];
        let mut a = Matrix::zeros(6, 2);
        let mut b = vec![0.0; 6];
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = x.log2(); // ~1..6
            a[(i, 1)] = x.powi(3) * 1e12; // huge
            b[i] = 5.0 * x.log2() + 2e-12 * (x.powi(3) * 1e12);
        }
        let c = lstsq(&a, &b).unwrap();
        assert_close(c[0], 5.0, 1e-8);
        assert_close(c[1], 2e-12, 1e-8);
    }

    #[test]
    fn rank_deficiency_detected() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let err = lstsq(&a, &[1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, LinalgError::RankDeficient { .. }));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(
            lstsq(&a, &[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
    }

    #[test]
    fn non_finite_rejected() {
        let a = Matrix::from_rows(&[&[1.0], &[f64::NAN]]);
        assert_eq!(lstsq(&a, &[1.0, 2.0]).unwrap_err(), LinalgError::NonFinite);
    }

    #[test]
    fn zero_column_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0]),
            Err(LinalgError::RankDeficient { column: 1 })
        ));
    }

    #[test]
    fn rhs_length_mismatch_rejected() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(
            lstsq(&a, &[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
    }

    /// Seed system used by the `QrFactor` tests: y = 2 + 3x + noise.
    fn noisy_line() -> (Matrix, Vec<f64>) {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let noise = [0.05, -0.03, 0.02, -0.04, 0.01, 0.03];
        let mut a = Matrix::zeros(6, 2);
        let mut b = vec![0.0; 6];
        for (i, (&x, &e)) in xs.iter().zip(&noise).enumerate() {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = x;
            b[i] = 2.0 + 3.0 * x + e;
        }
        (a, b)
    }

    #[test]
    fn qr_factor_agrees_with_lstsq() {
        let (a, b) = noisy_line();
        let qr = QrFactor::new(&a, &b).unwrap();
        let batch = lstsq(&a, &b).unwrap();
        let inc = qr.solve().unwrap();
        for (x, y) in batch.iter().zip(&inc) {
            assert_close(*x, *y, 1e-10);
        }
        assert_close(qr.rss(), rss(&a, &batch, &b), 1e-10);
    }

    #[test]
    fn push_row_equals_refactorizing_from_scratch() {
        let (a, b) = noisy_line();
        // Seed on the first 4 rows, push the remaining 2 one at a time.
        let mut seed = Matrix::zeros(4, 2);
        for r in 0..4 {
            seed[(r, 0)] = a[(r, 0)];
            seed[(r, 1)] = a[(r, 1)];
        }
        let mut qr = QrFactor::new(&seed, &b[..4]).unwrap();
        for r in 4..6 {
            qr.push_row(&[a[(r, 0)], a[(r, 1)]], b[r]).unwrap();
        }
        let batch = lstsq(&a, &b).unwrap();
        let inc = qr.solve().unwrap();
        for (x, y) in batch.iter().zip(&inc) {
            assert_close(*x, *y, 1e-9);
        }
        assert_eq!(qr.rows(), 6);
        assert_eq!(qr.cols(), 2);
    }

    #[test]
    fn qr_factor_is_underdetermined_until_enough_rows() {
        let seed = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut qr = QrFactor::new(&seed, &[3.0]).unwrap();
        assert_eq!(qr.solve().unwrap_err(), LinalgError::DimensionMismatch);
        qr.push_row(&[1.0, 5.0], 6.0).unwrap();
        assert!(qr.solve().is_ok());
    }

    #[test]
    fn qr_factor_rejects_bad_rows() {
        let (a, b) = noisy_line();
        let mut qr = QrFactor::new(&a, &b).unwrap();
        assert_eq!(
            qr.push_row(&[1.0], 2.0).unwrap_err(),
            LinalgError::DimensionMismatch
        );
        assert_eq!(
            qr.push_row(&[1.0, f64::NAN], 2.0).unwrap_err(),
            LinalgError::NonFinite
        );
        assert_eq!(
            qr.push_row(&[1.0, 2.0], f64::INFINITY).unwrap_err(),
            LinalgError::NonFinite
        );
        // Failed pushes must not corrupt the factorization.
        let batch = lstsq(&a, &b).unwrap();
        for (x, y) in batch.iter().zip(&qr.solve().unwrap()) {
            assert_close(*x, *y, 1e-10);
        }
    }

    #[test]
    fn qr_factor_detects_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrFactor::new(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            qr.solve().unwrap_err(),
            LinalgError::RankDeficient { .. }
        ));
    }

    #[test]
    fn leverage_matches_direct_normal_equation() {
        let (a, b) = noisy_line();
        let qr = QrFactor::new(&a, &b).unwrap();
        // Direct: h = x*ᵀ (AᵀA)⁻¹ x* via a 2×2 explicit inverse.
        let (mut s00, mut s01, mut s11) = (0.0, 0.0, 0.0);
        for r in 0..a.rows() {
            s00 += a[(r, 0)] * a[(r, 0)];
            s01 += a[(r, 0)] * a[(r, 1)];
            s11 += a[(r, 1)] * a[(r, 1)];
        }
        let det = s00 * s11 - s01 * s01;
        let probe = [1.0, 7.5];
        let direct = (probe[0] * (s11 * probe[0] - s01 * probe[1])
            + probe[1] * (s00 * probe[1] - s01 * probe[0]))
            / det;
        assert_close(qr.leverage(&probe).unwrap(), direct, 1e-9);
        // An extreme extrapolation point has higher leverage than an
        // interior one — the property the sampling planner rides on.
        assert!(qr.leverage(&[1.0, 50.0]).unwrap() > qr.leverage(&[1.0, 3.5]).unwrap());
    }
}
