//! Behavioural twin of **Relearn** — structural plasticity of the brain's
//! connectome (creation/deletion of synapses between neurons).
//!
//! Target per-process requirement signature (Table II):
//!
//! | metric          | model                                         |
//! |-----------------|-----------------------------------------------|
//! | #Bytes used     | `c · n^0.5`                                   |
//! | #FLOP           | `c₁ · n log n · log p + p`                    |
//! | #Bytes sent/rcv | `c·Allreduce(p) + c·Alltoall(p) + c·n` (p2p)  |
//! | #Loads & stores | `c₁ · n log n + c₂ · p log p`                 |
//! | Stack distance  | constant                                      |
//!
//! The `n^0.5` memory footprint is the paper's curious *empirical* finding
//! (theory predicts linear; the authors keep the measured model for
//! methodological consistency, and so do we): the twin's resident set is a
//! distance-sorted candidate cache that grows with the square root of the
//! neuron count. The compute kernel is an octree-style gather over the
//! candidate lists (`n log n`, deepening with `log p`), the exchange phase
//! is a small fixed allreduce plus a tiny alltoall plus neighbor traffic
//! linear in `n`.

use crate::shapes::{log2f, ops, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// Connectivity-update rounds.
const ROUNDS: usize = 10;

/// The Relearn behavioural twin.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relearn;

impl MiniApp for Relearn {
    fn name(&self) -> &'static str {
        "Relearn"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size();
        let nf = n as f64;

        // Distance-sorted candidate cache — the √n empirical footprint.
        let mut cache = Arena::new(ops(40.0 * nf.sqrt()) as usize);
        prof.footprint.alloc(cache.bytes());

        // Octree traversal: vacant-element matching over the candidate
        // lists; depth grows with the process count.
        prof.callpath.enter("update_connectivity");
        cache.compute(
            ops(3.0 * nf * log2f(n) * log2f(p as u64)),
            prof.callpath.counters(),
        );
        cache.compute(ops(500.0 * p as f64), prof.callpath.counters());
        prof.callpath.exit();

        // Synaptic-element bookkeeping: candidate-list sort/merge traffic.
        prof.callpath.enter("update_elements");
        cache.stream(ops(5.0 * nf * log2f(n)), prof.callpath.counters());
        cache.stream(
            ops(2.0 * p as f64 * log2f(p as u64)),
            prof.callpath.counters(),
        );
        prof.callpath.exit();

        // Exchange phase per round: global calcium allreduce (fixed
        // payload), a tiny alltoall of per-pair counts, and neighbor
        // spike traffic linear in n.
        prof.callpath.enter("exchange");
        let before = rank.stats().total();
        let spikes = vec![0u8; ops(nf / 2.0) as usize];
        for round in 0..ROUNDS {
            let mut calcium = [0.0f64; 100];
            rank.allreduce_sum(&mut calcium);
            if p > 1 {
                let next = (rank.rank() + 1) % p;
                let prev = (rank.rank() + p - 1) % p;
                rank.send(next, 400 + round as u64, &spikes);
                let _ = rank.recv(prev, 400 + round as u64);
            }
        }
        let counts: Vec<Vec<u8>> = (0..p).map(|_| vec![0u8; 16]).collect();
        let _ = rank.alltoall(&counts);
        prof.callpath.add_comm_bytes(rank.stats().total() - before);
        prof.callpath.exit();
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Candidate evaluation reuses a fixed-size neighbor window.
        let g_cand = sampler.register_group("candidate window");
        let g_state = sampler.register_group("neuron state");
        for _pass in 0..4 {
            for i in 0..80u64 {
                sampler.access(g_cand, 0x3000 + i);
            }
            for i in 0..40u64 {
                sampler.access(g_state, 0xB000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn footprint_scales_with_sqrt_n() {
        let a = measure(&Relearn, 2, 1024);
        let b = measure(&Relearn, 2, 4096);
        let r = b.bytes_used / a.bytes_used;
        assert!((r - 2.0).abs() < 0.05, "sqrt scaling {r}");
    }

    #[test]
    fn flops_scale_nlogn_logp() {
        let a = measure(&Relearn, 4, 1024);
        let b = measure(&Relearn, 4, 4096);
        // n log n term: 4·(12/10) = 4.8; the 500·p side term dilutes it a
        // little: (3·4096·12·2 + 2000)/(3·1024·10·2 + 2000) ≈ 4.68.
        let r = b.flops / a.flops;
        assert!((r - 4.68).abs() < 0.1, "{r}");
        let c = measure(&Relearn, 16, 1024);
        let rp = c.flops / a.flops;
        assert!((rp - 2.0).abs() < 0.1, "log p scaling {rp}");
    }

    #[test]
    fn comm_has_all_three_channels() {
        let m = measure(&Relearn, 8, 1024);
        assert!(m.comm_class("Allreduce") > 0.0);
        assert!(m.comm_class("Alltoall") > 0.0);
        assert!(m.comm_class("P2P") > 0.0);
        assert_eq!(m.comm_class("Bcast"), 0.0);
    }

    #[test]
    fn p2p_linear_in_n_allreduce_constant_in_n() {
        let a = measure(&Relearn, 8, 512);
        let b = measure(&Relearn, 8, 2048);
        let r = b.comm_class("P2P") / a.comm_class("P2P");
        assert!((r - 4.0).abs() < 0.05, "{r}");
        assert_eq!(a.comm_class("Allreduce"), b.comm_class("Allreduce"));
    }

    #[test]
    fn loads_additive_in_n_and_p() {
        let base = measure(&Relearn, 2, 1024);
        let big_p = measure(&Relearn, 32, 1024);
        // p log p term: 2·(32·5 − 2·1) = 316 extra moves — small but present.
        let delta = big_p.loads_stores - base.loads_stores;
        assert!(delta > 200.0 && delta < 1000.0, "{delta}");
    }

    #[test]
    fn stack_distance_constant() {
        let run = |n: u64| {
            let mut s =
                exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
            Relearn.run_locality(n, &mut s);
            s.groups()[0].median_stack().unwrap()
        };
        assert_eq!(run(256), run(16384));
    }
}
