//! Plain-text renderers that lay results out the way the paper's tables do.

use crate::requirements::{AppRequirements, RateMetric};
use crate::strawman::{StrawManAnalysis, SystemOutcome};
use crate::workflow::UpgradeOutcome;

/// Formats a ratio with one decimal, as Table V prints them.
pub fn fmt_ratio(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    format!("{v:.1}")
}

/// Formats a large magnitude as a power of ten (Table VII style) when the
/// mantissa is close to 1, otherwise as `m·10^e`.
pub fn fmt_magnitude(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let exp = v.abs().log10().floor();
    let mant = v / 10f64.powf(exp);
    if (mant - 1.0).abs() < 0.05 {
        format!("10^{}", exp as i64)
    } else {
        format!("{mant:.1}e{}", exp as i64)
    }
}

/// Renders a Table II block: one row per metric, with warnings marked `(!)`.
pub fn render_requirements(app: &AppRequirements) -> String {
    let warns = app.warnings();
    let has = |pred: &dyn Fn(&crate::requirements::Warning) -> bool| {
        if warns.iter().any(pred) {
            "  (!)"
        } else {
            ""
        }
    };
    use crate::requirements::Warning as W;
    let rounded = |m: &exareq_core::pmnf::Model| m.rounded_to_power_of_ten().to_string();
    let mut s = String::new();
    s.push_str(&format!("== {} ==\n", app.name));
    s.push_str(&format!(
        "  #Bytes used            : {}{}\n",
        rounded(&app.bytes_used),
        has(&|w| matches!(w, W::FootprintGrowsWithP))
    ));
    s.push_str(&format!(
        "  #FLOP                  : {}{}\n",
        rounded(&app.flops),
        has(&|w| matches!(w, W::MultiplicativeInteraction(RateMetric::Computation)))
    ));
    s.push_str(&format!(
        "  #Bytes sent & received : {}{}\n",
        rounded(&app.comm_bytes),
        has(&|w| matches!(
            w,
            W::MultiplicativeInteraction(RateMetric::Communication) | W::CommGrowsSuperLogInP
        ))
    ));
    s.push_str(&format!(
        "  #Loads & stores        : {}{}\n",
        rounded(&app.loads_stores),
        has(&|w| matches!(w, W::MultiplicativeInteraction(RateMetric::MemoryAccess)))
    ));
    s.push_str(&format!(
        "  Stack distance         : {}{}\n",
        if app
            .stack_distance
            .param_index("n")
            .map(|i| app.stack_distance.depends_on(i))
            .unwrap_or(false)
        {
            rounded(&app.stack_distance)
        } else {
            "Constant".to_string()
        },
        has(&|w| matches!(w, W::LocalityDecaysWithN))
    ));
    s
}

/// Renders one Table V block (one upgrade across apps plus the baseline).
pub fn render_upgrade_block(
    title: &str,
    outcomes: &[UpgradeOutcome],
    baseline: &UpgradeOutcome,
) -> String {
    let mut s = String::new();
    s.push_str(&format!("System upgrade {title}\n"));
    let header: Vec<String> = std::iter::once("Ratios".to_string())
        .chain(outcomes.iter().map(|o| o.app.clone()))
        .chain(std::iter::once("Baseline".to_string()))
        .collect();
    s.push_str(&format!("  {}\n", header.join("\t")));
    let row = |label: &str, get: &dyn Fn(&UpgradeOutcome) -> f64| {
        let cells: Vec<String> = std::iter::once(label.to_string())
            .chain(outcomes.iter().map(|o| fmt_ratio(get(o))))
            .chain(std::iter::once(fmt_ratio(get(baseline))))
            .collect();
        format!("  {}\n", cells.join("\t"))
    };
    s.push_str(&row("Problem size per process", &|o| o.ratio_n));
    s.push_str(&row("Overall problem size", &|o| o.ratio_overall));
    s.push_str(&row("Computation", &|o| o.rate(RateMetric::Computation)));
    s.push_str(&row("Communication", &|o| {
        o.rate(RateMetric::Communication)
    }));
    s.push_str(&row("Memory access", &|o| o.rate(RateMetric::MemoryAccess)));
    s
}

/// Renders one application's Table VII block.
pub fn render_strawman_block(analysis: &StrawManAnalysis) -> String {
    match analysis {
        StrawManAnalysis::Excluded { app, cannot_use } => format!(
            "== {app} ==\n  excluded: cannot fully utilize {}\n",
            cannot_use.join(", ")
        ),
        StrawManAnalysis::Fits {
            app,
            benchmark_overall,
            outcomes,
        } => {
            let mut s = format!(
                "== {app} ==  (benchmark problem: {})\n",
                fmt_magnitude(*benchmark_overall)
            );
            let line = |label: &str, get: &dyn Fn(&SystemOutcome) -> String| {
                let cells: Vec<String> = std::iter::once(format!("  {label}"))
                    .chain(outcomes.iter().map(get))
                    .collect();
                format!("{}\n", cells.join("\t"))
            };
            let header: Vec<String> = std::iter::once("  ".to_string())
                .chain(outcomes.iter().map(|o| o.system.clone()))
                .collect();
            s.push_str(&format!("{}\n", header.join("\t")));
            s.push_str(&line("Maximum overall problem size", &|o| {
                fmt_magnitude(o.max_overall)
            }));
            s.push_str(&line("Minimum wall time [s]", &|o| {
                format!("{:.3}", o.min_wall_time)
            }));
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::skeleton::{SystemSkeleton, Upgrade};
    use crate::strawman::{analyze_strawmen, table_six};
    use crate::workflow::{analyze_upgrade, baseline_expectation};

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ratio(1.234), "1.2");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
        assert_eq!(fmt_magnitude(1e10), "10^10");
        assert_eq!(fmt_magnitude(3.9e10), "3.9e10");
        assert_eq!(fmt_magnitude(0.0), "0");
    }

    #[test]
    fn requirements_block_marks_warnings() {
        let s = render_requirements(&catalog::kripke());
        assert!(s.contains("== Kripke =="));
        assert!(s.contains("#Loads & stores"));
        // Kripke's only warning is on loads & stores.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains("(!)")).collect();
        assert_eq!(lines.len(), 1, "{s}");
        assert!(lines[0].contains("Loads"), "{s}");
        // Stack distance renders as Constant.
        assert!(s.contains("Stack distance         : Constant"));
    }

    #[test]
    fn upgrade_block_renders_all_rows() {
        let base = SystemSkeleton::reference_large();
        let up = Upgrade::DOUBLE_RACKS;
        let outcomes: Vec<_> = [catalog::kripke(), catalog::lulesh()]
            .iter()
            .map(|a| analyze_upgrade(a, &base, &up).unwrap())
            .collect();
        let baseline = baseline_expectation(&base, &up);
        let s = render_upgrade_block("A: Double the racks", &outcomes, &baseline);
        assert!(s.contains("Kripke"));
        assert!(s.contains("Baseline"));
        for row in [
            "Problem size per process",
            "Overall problem size",
            "Computation",
            "Communication",
            "Memory access",
        ] {
            assert!(s.contains(row), "missing {row} in {s}");
        }
    }

    #[test]
    fn strawman_block_renders_exclusion() {
        let s = render_strawman_block(&analyze_strawmen(&catalog::icofoam(), &table_six()));
        assert!(s.contains("excluded"));
        assert!(s.contains("Massively parallel"));
    }

    #[test]
    fn strawman_block_renders_rows() {
        let s = render_strawman_block(&analyze_strawmen(&catalog::milc(), &table_six()));
        assert!(s.contains("Maximum overall problem size"));
        assert!(s.contains("Minimum wall time"));
        assert!(s.contains("benchmark problem"));
    }
}
