//! Property-based verification of the simulator: collectives compute the
//! right values for arbitrary inputs and rank counts, and byte accounting
//! is conserved (every byte sent is received).

use exareq::sim::{run_ranks, total_stats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allreduce produces the exact serial sum on every rank, for any rank
    /// count and any payload.
    #[test]
    fn allreduce_equals_serial_sum(
        p in 1usize..12,
        seed in proptest::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let len = seed.len();
        let results = run_ranks(p, |rank| {
            // Rank r contributes seed rotated by r (deterministic, distinct).
            let mut v: Vec<f64> = (0..len)
                .map(|i| seed[(i + rank.rank()) % len])
                .collect();
            rank.allreduce_sum(&mut v);
            v
        });
        // Serial reference.
        let mut expect = vec![0.0f64; len];
        for r in 0..p {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += seed[(i + r) % len];
            }
        }
        for res in &results {
            for (got, want) in res.value.iter().zip(&expect) {
                prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "{got} vs {want}");
            }
        }
    }

    /// Bytes are conserved: total sent equals total received, for any mix
    /// of collectives.
    #[test]
    fn bytes_conserved(p in 2usize..10, payload in 1usize..300, root in 0usize..10) {
        let root = root % p;
        let results = run_ranks(p, |rank| {
            let data = vec![1u8; payload];
            let _ = rank.bcast(root, &data);
            let mut v = vec![1.0f64; payload.min(32)];
            rank.allreduce_sum(&mut v);
            let blocks: Vec<Vec<u8>> = (0..rank.size()).map(|_| vec![0u8; 8]).collect();
            let _ = rank.alltoall(&blocks);
            let _ = rank.allgather(&data[..payload.min(16)]);
        });
        let t = total_stats(&results);
        prop_assert_eq!(t.total_sent(), t.total_recv());
        prop_assert_eq!(t.messages_sent, t.messages_recv);
    }

    /// Allgather returns every rank's block, in rank order, for arbitrary
    /// block contents.
    #[test]
    fn allgather_orders_blocks(p in 1usize..10, tag in 0u8..255) {
        let results = run_ranks(p, |rank| {
            let mine = vec![tag ^ rank.rank() as u8; 3];
            rank.allgather(&mine)
                .into_iter()
                .map(|b| b[0])
                .collect::<Vec<u8>>()
        });
        for res in &results {
            for (src, &byte) in res.value.iter().enumerate() {
                prop_assert_eq!(byte, tag ^ src as u8);
            }
        }
    }

    /// Determinism: identical programs produce identical statistics.
    #[test]
    fn runs_are_deterministic(p in 2usize..8, payload in 1usize..100) {
        let run = || {
            let results = run_ranks(p, |rank| {
                let data = vec![0u8; payload];
                let _ = rank.bcast(0, &data);
                rank.stats().clone()
            });
            total_stats(&results)
        };
        prop_assert_eq!(run(), run());
    }
}
