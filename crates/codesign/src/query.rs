//! Query-shaped entry points for interactive consumers.
//!
//! The batch CLIs walk whole tables; a query daemon answers one question
//! per request and wants the answer as one value. This module packages the
//! paper's upgrade question (Table IV/V, "which upgrade helps this
//! application?") into a single call: every Table III upgrade analyzed,
//! scored, and ranked, plus the communication/computation crossover that
//! explains *why* an upgrade stops paying off at scale.

use crate::crossover::crossover;
use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::AppRequirements;
use crate::skeleton::{SystemSkeleton, Upgrade};
use crate::workflow::{analyze_upgrade, upgrade_score, UpgradeOutcome, WorkflowError};

/// One analyzed upgrade: the Table V outcome plus the summary score used
/// for ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeRow {
    /// Human-readable description of the upgrade (Table III).
    pub description: String,
    /// The Table IV/V workflow result.
    pub outcome: UpgradeOutcome,
    /// [`upgrade_score`] of the outcome; higher is better for the app.
    pub score: f64,
}

/// The complete answer to "which upgrade helps this application?".
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeAdvice {
    /// Analyzed upgrades, in [`Upgrade::ALL`] order.
    pub rows: Vec<UpgradeRow>,
    /// Upgrades the application cannot use, with the reason (e.g. it no
    /// longer fits the upgraded system).
    pub excluded: Vec<(String, String)>,
    /// Name of the best-scoring upgrade, if any was analyzable.
    pub best: Option<String>,
    /// Process count at which the communication requirement overtakes the
    /// computation requirement with `n` held at the base system's fill
    /// (`None` when one side dominates everywhere on the search domain).
    pub comm_crossover_p: Option<f64>,
}

/// Runs the upgrade workflow for every Table III upgrade on `base`,
/// ranks the outcomes, and locates the communication/computation
/// crossover at the base system's problem fill.
pub fn upgrade_advice(app: &AppRequirements, base: &SystemSkeleton) -> UpgradeAdvice {
    let mut rows = Vec::new();
    let mut excluded = Vec::new();
    for up in &Upgrade::ALL {
        match analyze_upgrade(app, base, up) {
            Ok(outcome) => {
                let score = upgrade_score(&outcome);
                rows.push(UpgradeRow {
                    description: up.description.to_string(),
                    outcome,
                    score,
                });
            }
            Err(e) => excluded.push((up.name.to_string(), reason(&e))),
        }
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .map(|r| r.outcome.upgrade_name.clone());
    UpgradeAdvice {
        comm_crossover_p: comm_crossover(app, base),
        rows,
        excluded,
        best,
    }
}

fn reason(e: &WorkflowError) -> String {
    e.to_string()
}

/// Process count where communication overtakes computation with the
/// problem size fixed at the base system's memory fill.
fn comm_crossover(app: &AppRequirements, base: &SystemSkeleton) -> Option<f64> {
    // Both models come from the same fit, so their parameter lists agree;
    // a mismatch would make `crossover` panic, so guard anyway.
    if app.comm_bytes.params != app.flops.params || app.comm_bytes.arity() != 2 {
        return None;
    }
    let n = match inflate_problem(&app.bytes_used, base) {
        Inflation::Fits(n) => n,
        Inflation::TooBig { .. } | Inflation::Unbounded => return None,
    };
    let p_index = app.comm_bytes.param_index("p")?;
    let mut fixed = [n; 2];
    fixed[p_index] = base.processes;
    crossover(&app.comm_bytes, &app.flops, p_index, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn milc_and_relearn_rank_memory_first() {
        // Matches the workflow-level test: doubling memory scores best.
        let base = SystemSkeleton::reference_large();
        for app in [catalog::milc(), catalog::relearn()] {
            let advice = upgrade_advice(&app, &base);
            assert_eq!(advice.rows.len(), 3, "{}", app.name);
            assert_eq!(
                advice.best.as_deref(),
                Some(Upgrade::DOUBLE_MEMORY.name),
                "{}",
                app.name
            );
        }
    }

    #[test]
    fn icofoam_excludes_socket_doubling() {
        // The p·log p footprint term exceeds the halved per-process memory.
        let base = SystemSkeleton::reference_large();
        let advice = upgrade_advice(&catalog::icofoam(), &base);
        assert_eq!(advice.rows.len(), 2);
        assert_eq!(advice.excluded.len(), 1);
        assert_eq!(advice.excluded[0].0, Upgrade::DOUBLE_SOCKETS.name);
        assert!(advice.excluded[0].1.contains("does not fit"));
        assert_eq!(advice.best.as_deref(), Some(Upgrade::DOUBLE_MEMORY.name));
    }

    #[test]
    fn rows_follow_upgrade_all_order_and_scores_are_finite() {
        let base = SystemSkeleton::reference_large();
        let advice = upgrade_advice(&catalog::kripke(), &base);
        let names: Vec<&str> = advice
            .rows
            .iter()
            .map(|r| r.outcome.upgrade_name.as_str())
            .collect();
        assert_eq!(
            names,
            Upgrade::ALL.iter().map(|u| u.name).collect::<Vec<_>>()
        );
        assert!(advice.rows.iter().all(|r| r.score.is_finite()));
    }
}
