//! The original Extra-P use case (the SC13 paper this method grew out of):
//! hunting scalability bugs by modeling every call path separately and
//! ranking regions by how fast their computation grows with the process
//! count.
//!
//! MILC is the demo: its `overlap_recompute` region carries the hidden
//! `n·log p` growth that the whole-program model shows only as a small
//! second term — per-region modeling pins it to the exact program
//! location.
//!
//! Run with `cargo run --release --example scalability_bugs`.

use exareq::apps::{survey_app, AppGrid, Milc};
use exareq::core::describe::describe_growth;
use exareq::core::multiparam::MultiParamConfig;
use exareq::pipeline::find_scalability_bugs;

fn main() {
    println!("surveying MILC ...");
    let survey = survey_app(&Milc, &AppGrid::default());
    let regions =
        find_scalability_bugs(&survey, &MultiParamConfig::default()).expect("modeling succeeds");

    println!("\ncall paths ranked by computation growth in p (worst first):");
    for r in &regions {
        println!("  {:<28} {}", r.path, r.fitted.model);
        println!("    -> {}", describe_growth(&r.fitted.model, "p"));
    }
    if let Some(worst) = regions.first() {
        println!(
            "\nverdict: `{}` is the scalability hazard — fix that loop first.",
            worst.path
        );
    }
}
