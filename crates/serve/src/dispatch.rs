//! Endpoint routing: one parsed [`Request`] in, one [`Response`] out.
//!
//! Every handler builds its body through [`crate::api`] so daemon answers
//! stay byte-identical to direct library calls. The request token carries
//! the `--request-deadline-ms` deadline; any checkpoint failure along the
//! way becomes a `504` — a parked request never wedges a worker past its
//! deadline.

use crate::api;
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::refresh::{ObserveError, Refresher};
use crate::registry::ModelRegistry;
use exareq_apps::{all_apps_extended, measure_config_resilient, RetryPolicy, SurveyRunError};
use exareq_core::cancel::{CancelToken, Deadline};
use exareq_sim::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

/// Sleep slice while honouring a `hold_ms` load-testing hold: short enough
/// that an expiring deadline turns into a 504 within ~5 ms.
const HOLD_SLICE: Duration = Duration::from_millis(5);

/// Engine facts dispatch cannot observe on its own: the `/healthz` answer
/// reports them, and `POST /measure` is gated on the worker opt-in.
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// Connections waiting in the accept queue right now.
    pub queue_len: usize,
    /// Whether this daemon accepts `POST /measure` shards
    /// (`exareq serve --allow-measure`).
    pub allow_measure: bool,
    /// The online-refresh engine behind `POST /observations`; `None`
    /// answers that endpoint 503 (a router replica proxying to a daemon
    /// that owns the model dir).
    pub refresher: Option<Arc<Refresher>>,
}

fn bad_request(reason: &str) -> Response {
    Response::json(400, api::error_body(reason).into_bytes())
}

fn not_found(reason: &str) -> Response {
    Response::json(404, api::error_body(reason).into_bytes())
}

fn deadline_expired() -> Response {
    // Like the 503 overflow answer, a 504 carries Retry-After: the worker
    // that timed this request out is alive and immediately usable, and the
    // fleet client honors the header when rescheduling the shard.
    let mut response = Response::json(
        504,
        api::error_body("request deadline expired").into_bytes(),
    );
    response.retry_after = Some(1);
    response
}

fn unknown_model(name: &str) -> Response {
    not_found(&format!("unknown model: {name}"))
}

/// Routes one request. Never panics; every path ends in a response.
pub fn dispatch(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    token: &CancelToken,
    state: &EngineState,
) -> Response {
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            api::health_body(state.queue_len, metrics.in_flight(), registry.generation())
                .into_bytes(),
        ),
        ("GET", "/models") => {
            registry.refresh();
            let observed = state
                .refresher
                .as_deref()
                .map(Refresher::observed)
                .unwrap_or_default();
            Response::json(
                200,
                api::models_body_with_observed(&registry.snapshot(), &observed).into_bytes(),
            )
        }
        ("GET", "/metrics") => {
            let snap = registry.snapshot();
            let staleness = state
                .refresher
                .as_deref()
                .map(Refresher::staleness)
                .unwrap_or_default();
            Response::text(
                200,
                metrics
                    .render(snap.generation, snap.models.len(), &staleness)
                    .into_bytes(),
            )
        }
        ("POST", "/predict") => predict(request, registry, token),
        ("POST", "/predict_batch") => predict_batch(request, registry, token),
        ("POST", "/upgrade") => upgrade(request, registry, token),
        ("POST", "/strawman") => strawman(request, registry, token),
        ("POST", "/observations") => observations(request, registry, metrics, state),
        ("POST", "/measure") => measure(request, metrics, token, state),
        ("GET" | "POST", _) => not_found("no such endpoint"),
        _ => Response::json(405, api::error_body("method not allowed").into_bytes()),
    }
}

/// True when a request may run long enough to need a worker thread rather
/// than the event loop's inline fast path: measurement shards always, and
/// a `/predict` whose body mentions the `hold_ms` load-testing hold. The
/// byte scan is deliberately a heuristic that can only *over*-classify —
/// a body that merely mentions `hold_ms` (say, in a model name) is routed
/// to a worker and answered with identical bytes, just without the inline
/// shortcut. Everything else (predict, batch predict, upgrade, strawman,
/// health, metrics) evaluates in microseconds and stays on the event loop.
pub fn needs_worker(request: &Request) -> bool {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/measure") => true,
        // Observations can escalate to a full PMNF re-search — far too
        // slow for the event loop's inline fast path.
        ("POST", "/observations") => true,
        ("POST", "/predict") => request
            .body
            .windows(b"hold_ms".len())
            .any(|w| w == b"hold_ms"),
        _ => false,
    }
}

fn body_utf8(request: &Request) -> Result<&str, Response> {
    std::str::from_utf8(&request.body).map_err(|_| bad_request("body is not valid UTF-8"))
}

fn predict(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_predict(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(entry) = registry.entry(&query.model) else {
        return unknown_model(&query.model);
    };
    // The load-testing hold: sleep in slices, converting deadline expiry
    // into the same 504 a slow real evaluation would earn.
    let mut held = Duration::ZERO;
    let hold = Duration::from_millis(query.hold_ms);
    while held < hold {
        if token.checkpoint().is_err() {
            return deadline_expired();
        }
        let slice = HOLD_SLICE.min(hold - held);
        std::thread::sleep(slice);
        held += slice;
    }
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    Response::json(
        200,
        api::predict_body_quality(
            &entry.requirements,
            entry.quality.as_ref(),
            query.p,
            query.n,
        )
        .into_bytes(),
    )
}

/// `POST /observations`: journals one live measurement against a served
/// model and lets the refresher's staleness policy decide whether to refit
/// (rank-1 QR) or re-search (full PMNF) and republish the artifact.
fn observations(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    state: &EngineState,
) -> Response {
    let Some(refresher) = state.refresher.as_deref() else {
        return Response::json(
            503,
            api::error_body("refresh is not enabled on this daemon").into_bytes(),
        );
    };
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_observation(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    match refresher.observe(registry, metrics, &query) {
        Ok(outcome) => Response::json(200, api::observation_body(&outcome).into_bytes()),
        Err(ObserveError::UnknownModel) => unknown_model(&query.model),
        Err(ObserveError::NotRefreshable(reason)) => {
            Response::json(409, api::error_body(&reason).into_bytes())
        }
        Err(e) => Response::json(500, api::error_body(&e.to_string()).into_bytes()),
    }
}

/// `POST /predict_batch`: one request, a whole `(p, n)` grid, answered as
/// JSONL — one line per point, each line byte-identical to the single
/// `/predict` body for that point (the compiled flat-table evaluator is
/// bit-identical to the term-walking models, and both render through the
/// same minijson writer), newline-terminated.
fn predict_batch(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_predict_batch(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get_compiled(&query.model) else {
        return unknown_model(&query.model);
    };
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    Response::json(
        200,
        api::predict_batch_body(&app, &query.points).into_bytes(),
    )
}

fn upgrade(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_upgrade(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get(&query.model) else {
        return unknown_model(&query.model);
    };
    let other = match &query.share_with {
        None => None,
        Some(name) => match registry.get(name) {
            Some(o) => Some(o),
            None => return unknown_model(name),
        },
    };
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    match api::upgrade_body(&app, other.as_deref().map(|o| (o, query.fraction))) {
        Ok(body) => Response::json(200, body.into_bytes()),
        Err(reason) => bad_request(&reason),
    }
}

fn strawman(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let model = match api::parse_strawman(body) {
        Ok(m) => m,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get(&model) else {
        return unknown_model(&model);
    };
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    Response::json(200, api::strawman_body(&app).into_bytes())
}

/// `POST /measure`: runs one survey shard on this worker — the same
/// [`measure_config_resilient`] every local driver uses, so the returned
/// journal entries are byte-identical to a local measurement of the same
/// configs under the same fault spec and retry count.
fn measure(
    request: &Request,
    metrics: &Metrics,
    token: &CancelToken,
    state: &EngineState,
) -> Response {
    if !state.allow_measure {
        return Response::json(
            403,
            api::error_body("measurement is disabled; start this worker with --allow-measure")
                .into_bytes(),
        );
    }
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let shard = match api::parse_measure(body) {
        Ok(s) => s,
        Err(reason) => return bad_request(&reason),
    };
    let apps = all_apps_extended();
    let Some(app) = apps
        .iter()
        .find(|a| a.name().eq_ignore_ascii_case(&shard.app))
    else {
        return not_found(&format!("unknown application: {}", shard.app));
    };
    let faults = if shard.fault_spec.is_empty() {
        FaultPlan::none()
    } else {
        match FaultPlan::parse(&shard.fault_spec) {
            Ok(f) => f,
            Err(e) => return bad_request(&format!("faults `{}`: {e}", shard.fault_spec)),
        }
    };
    // Shards routinely outlive --request-deadline-ms (they measure, not
    // evaluate), so an explicit per-shard deadline replaces the serving
    // one; without it the request keeps the serving deadline.
    let shard_token = match shard.deadline_ms {
        Some(ms) => CancelToken::new().with_deadline(Deadline::after(Duration::from_millis(ms))),
        None => token.clone(),
    };
    // The chaos-testing hold, sliced like /predict's so expiry stays a
    // prompt 504 — this is the window tests SIGKILL workers inside.
    let mut held = Duration::ZERO;
    let hold = Duration::from_millis(shard.hold_ms);
    while held < hold {
        if shard_token.checkpoint().is_err() {
            return deadline_expired();
        }
        let slice = HOLD_SLICE.min(hold - held);
        std::thread::sleep(slice);
        held += slice;
    }
    let retry = RetryPolicy {
        max_attempts: shard.max_attempts,
        ..RetryPolicy::default()
    };
    let mut entries = Vec::with_capacity(shard.configs.len());
    for &(p, n) in &shard.configs {
        if shard_token.checkpoint().is_err() {
            return deadline_expired();
        }
        match measure_config_resilient(app.as_ref(), p as usize, n, &faults, &retry, &shard_token) {
            Ok(entry) => entries.push(entry),
            Err(SurveyRunError::Cancelled { .. }) => return deadline_expired(),
            // Unbudgeted policy: BudgetExhausted is unreachable, Journal
            // has no journal to fail; answer 500 rather than panic if the
            // invariant ever breaks.
            Err(e) => return Response::json(500, api::error_body(&e.to_string()).into_bytes()),
        }
    }
    metrics.record_measure_shard();
    Response::json(
        200,
        api::measure_response_body(shard.shard_id, app.name(), &entries).into_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact;
    use crate::registry::Fitter;
    use exareq_codesign::catalog;
    use exareq_core::cancel::Deadline;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn request(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            http10: false,
        }
    }

    fn no_fit() -> Box<Fitter> {
        Box::new(|_| Err("no fitting in this test".to_string()))
    }

    fn registry_with_catalog(tag: &str) -> (Arc<ModelRegistry>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("exareq_dispatch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        for app in catalog::paper_models() {
            std::fs::write(
                dir.join(format!("{}.json", app.name.to_lowercase())),
                artifact::requirements_to_string(&app),
            )
            .expect("write artifact");
        }
        let registry = Arc::new(ModelRegistry::new(&dir, no_fit()));
        registry.refresh();
        (registry, dir)
    }

    fn live_token() -> CancelToken {
        CancelToken::new().with_deadline(Deadline::after(Duration::from_secs(5)))
    }

    #[test]
    fn routes_every_endpoint() {
        let (registry, _dir) = registry_with_catalog("routes");
        let metrics = Metrics::new();
        let token = live_token();
        let ok = |r: Response| {
            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
            r
        };
        ok(dispatch(
            &request("GET", "/healthz", ""),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
        ok(dispatch(
            &request("GET", "/models", ""),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
        ok(dispatch(
            &request("GET", "/metrics", ""),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
        let predict = ok(dispatch(
            &request("POST", "/predict", r#"{"model":"Kripke","p":1e6,"n":4096}"#),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
        assert_eq!(
            String::from_utf8(predict.body).unwrap(),
            api::predict_body(&catalog::kripke(), 1e6, 4096.0),
            "daemon answers must be byte-identical to direct library calls"
        );
        ok(dispatch(
            &request("POST", "/upgrade", r#"{"model":"MILC"}"#),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
        ok(dispatch(
            &request("POST", "/strawman", r#"{"model":"LULESH"}"#),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        ));
    }

    #[test]
    fn batch_predict_is_byte_identical_to_concatenated_singles() {
        let (registry, _dir) = registry_with_catalog("batch");
        let metrics = Metrics::new();
        let token = live_token();
        let points = [(2.0, 64.0), (1e6, 4096.0), (32.0, 1024.0)];
        let body = r#"{"model":"Kripke","points":[[2,64],[1e6,4096],[32,1024]]}"#;
        let r = dispatch(
            &request("POST", "/predict_batch", body),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let expected: String = points
            .iter()
            .map(|&(p, n)| format!("{}\n", api::predict_body(&catalog::kripke(), p, n)))
            .collect();
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            expected,
            "batch output must be the concatenation of the equivalent single predicts"
        );

        // Unknown model and malformed grids answer like /predict does.
        let r = dispatch(
            &request(
                "POST",
                "/predict_batch",
                r#"{"model":"NoSuch","points":[[2,64]]}"#,
            ),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 404);
        let r = dispatch(
            &request(
                "POST",
                "/predict_batch",
                r#"{"model":"Kripke","points":[[0,64]]}"#,
            ),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn worker_classification_flags_only_holds_and_measures() {
        assert!(needs_worker(&request("POST", "/measure", "{}")));
        assert!(needs_worker(&request(
            "POST",
            "/predict",
            r#"{"model":"Kripke","p":2,"n":3,"hold_ms":100}"#
        )));
        assert!(!needs_worker(&request(
            "POST",
            "/predict",
            r#"{"model":"Kripke","p":2,"n":3}"#
        )));
        assert!(!needs_worker(&request("GET", "/healthz", "")));
        assert!(!needs_worker(&request(
            "POST",
            "/predict_batch",
            r#"{"model":"Kripke","points":[[2,64]]}"#
        )));
    }

    #[test]
    fn unknown_routes_models_and_methods_map_to_404_405() {
        let (registry, _dir) = registry_with_catalog("missing");
        let metrics = Metrics::new();
        let token = live_token();
        let r = dispatch(
            &request("GET", "/nope", ""),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 404);
        let r = dispatch(
            &request("POST", "/predict", r#"{"model":"NoSuch","p":2,"n":3}"#),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 404);
        let r = dispatch(
            &request("PUT", "/predict", ""),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 405);
        let r = dispatch(
            &request("POST", "/predict", "{ nope"),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn expired_deadline_is_504_everywhere() {
        let (registry, _dir) = registry_with_catalog("deadline");
        let metrics = Metrics::new();
        let expired = CancelToken::new().with_deadline(Deadline::after(Duration::ZERO));
        for (method, target, body) in [
            ("GET", "/healthz", ""),
            ("POST", "/predict", r#"{"model":"Kripke","p":2,"n":3}"#),
        ] {
            let r = dispatch(
                &request(method, target, body),
                &registry,
                &metrics,
                &expired,
                &EngineState::default(),
            );
            assert_eq!(r.status, 504, "{method} {target}");
        }
    }

    #[test]
    fn hold_past_deadline_is_504_and_within_is_200() {
        let (registry, _dir) = registry_with_catalog("hold");
        let metrics = Metrics::new();
        let short = CancelToken::new().with_deadline(Deadline::after(Duration::from_millis(30)));
        let r = dispatch(
            &request(
                "POST",
                "/predict",
                r#"{"model":"Kripke","p":2,"n":3,"hold_ms":500}"#,
            ),
            &registry,
            &metrics,
            &short,
            &EngineState::default(),
        );
        assert_eq!(r.status, 504);

        let roomy = live_token();
        let r = dispatch(
            &request(
                "POST",
                "/predict",
                r#"{"model":"Kripke","p":2,"n":3,"hold_ms":20}"#,
            ),
            &registry,
            &metrics,
            &roomy,
            &EngineState::default(),
        );
        assert_eq!(r.status, 200);
    }

    #[test]
    fn deadline_504_carries_retry_after() {
        let (registry, _dir) = registry_with_catalog("retry_after");
        let metrics = Metrics::new();
        let expired = CancelToken::new().with_deadline(Deadline::after(Duration::ZERO));
        let r = dispatch(
            &request("GET", "/healthz", ""),
            &registry,
            &metrics,
            &expired,
            &EngineState::default(),
        );
        assert_eq!(r.status, 504);
        assert_eq!(r.retry_after, Some(1), "504 must advertise Retry-After");
    }

    #[test]
    fn healthz_reports_engine_state() {
        let (registry, _dir) = registry_with_catalog("healthz");
        let metrics = Metrics::new();
        metrics.begin_request();
        let state = EngineState {
            queue_len: 5,
            allow_measure: false,
            refresher: None,
        };
        let r = dispatch(
            &request("GET", "/healthz", ""),
            &registry,
            &metrics,
            &live_token(),
            &state,
        );
        assert_eq!(r.status, 200);
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            api::health_body(5, 1, registry.generation())
        );
        metrics.end_request();
    }

    #[test]
    fn measure_is_403_unless_opted_in() {
        let (registry, _dir) = registry_with_catalog("measure_gate");
        let metrics = Metrics::new();
        let body = r#"{"app":"Relearn","shard_id":0,"configs":[[2,64]]}"#;
        let r = dispatch(
            &request("POST", "/measure", body),
            &registry,
            &metrics,
            &live_token(),
            &EngineState::default(),
        );
        assert_eq!(r.status, 403, "{}", String::from_utf8_lossy(&r.body));
        assert!(String::from_utf8_lossy(&r.body).contains("--allow-measure"));
        assert_eq!(metrics.measure_shards(), 0);
    }

    #[test]
    fn measure_shard_equals_local_measurement_bytes() {
        let (registry, _dir) = registry_with_catalog("measure_ok");
        let metrics = Metrics::new();
        let state = EngineState {
            queue_len: 0,
            allow_measure: true,
            refresher: None,
        };
        let body = r#"{"app":"Relearn","shard_id":4,"faults":"seed=7,drop=0.01","max_attempts":2,"deadline_ms":60000,"configs":[[2,64],[2,256]]}"#;
        let r = dispatch(
            &request("POST", "/measure", body),
            &registry,
            &metrics,
            &live_token(),
            &state,
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));

        // The answer must be byte-identical to measuring the same shard
        // locally under the same plan and retry policy.
        let faults = FaultPlan::parse("seed=7,drop=0.01").unwrap();
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let apps = all_apps_extended();
        let app = apps
            .iter()
            .find(|a| a.name() == "Relearn")
            .expect("Relearn twin");
        let token = CancelToken::new();
        let entries: Vec<_> = [(2u64, 64u64), (2, 256)]
            .iter()
            .map(|&(p, n)| {
                measure_config_resilient(app.as_ref(), p as usize, n, &faults, &retry, &token)
                    .expect("local measurement")
            })
            .collect();
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            api::measure_response_body(4, "Relearn", &entries),
            "worker shard answers must be byte-identical to local measurement"
        );
        assert_eq!(metrics.measure_shards(), 1);

        let r = dispatch(
            &request(
                "POST",
                "/measure",
                r#"{"app":"NoSuchTwin","shard_id":0,"configs":[[2,64]]}"#,
            ),
            &registry,
            &metrics,
            &live_token(),
            &state,
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn observations_route_journals_and_surfaces_staleness() {
        use crate::refresh::{RefreshSettings, Refresher};
        let (registry, dir) = registry_with_catalog("observe");
        let metrics = Metrics::new();
        let token = live_token();
        // Without a refresher the endpoint refuses loudly.
        let body = r#"{"model":"Kripke","metric":"flops","p":2,"n":64,"value":6.4e8}"#;
        let r = dispatch(
            &request("POST", "/observations", body),
            &registry,
            &metrics,
            &token,
            &EngineState::default(),
        );
        assert_eq!(r.status, 503, "{}", String::from_utf8_lossy(&r.body));

        let state = EngineState {
            queue_len: 0,
            allow_measure: false,
            refresher: Some(Arc::new(Refresher::new(&dir, RefreshSettings::default()))),
        };
        let r = dispatch(
            &request("POST", "/observations", body),
            &registry,
            &metrics,
            &token,
            &state,
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains(r#""observations":1"#), "{text}");
        assert_eq!(metrics.observations(), 1);

        // Unknown model → 404; malformed → 400; both leave no journal.
        let r = dispatch(
            &request(
                "POST",
                "/observations",
                r#"{"model":"NoSuch","metric":"flops","p":2,"n":64,"value":1}"#,
            ),
            &registry,
            &metrics,
            &token,
            &state,
        );
        assert_eq!(r.status, 404);
        let r = dispatch(
            &request("POST", "/observations", r#"{"model":"Kripke"}"#),
            &registry,
            &metrics,
            &token,
            &state,
        );
        assert_eq!(r.status, 400);

        // /models and /metrics surface what the refresher tracks.
        let r = dispatch(
            &request("GET", "/models", ""),
            &registry,
            &metrics,
            &token,
            &state,
        );
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains(r#""observed":1"#), "{text}");
        assert!(text.contains(r#""since_full_refit":1"#), "{text}");
        let r = dispatch(
            &request("GET", "/metrics", ""),
            &registry,
            &metrics,
            &token,
            &state,
        );
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("refresh_observations_total 1\n"), "{text}");
        assert!(
            text.contains("refresh_model_staleness{model=\"Kripke\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn measure_past_shard_deadline_is_504() {
        let (registry, _dir) = registry_with_catalog("measure_deadline");
        let metrics = Metrics::new();
        let state = EngineState {
            queue_len: 0,
            allow_measure: true,
            refresher: None,
        };
        // The shard's own deadline governs (the request token is roomy):
        // a zero-ms shard deadline expires inside the hold.
        let body =
            r#"{"app":"Relearn","shard_id":0,"deadline_ms":0,"hold_ms":200,"configs":[[2,64]]}"#;
        let r = dispatch(
            &request("POST", "/measure", body),
            &registry,
            &metrics,
            &live_token(),
            &state,
        );
        assert_eq!(r.status, 504, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(r.retry_after, Some(1));
        assert_eq!(metrics.measure_shards(), 0);
    }
}
