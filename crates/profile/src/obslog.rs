//! Crash-consistent per-model observation journal for the refresh loop.
//!
//! `POST /observations` must never lose an accepted measurement: the
//! daemon acknowledges an observation only after it is durably on disk.
//! The [`ObservationLog`] is the same write-ahead shape as the survey
//! journal ([`crate::journal`]) — a JSON-lines file whose first line is a
//! manifest and whose appends are one `write` + fsync each — so the
//! recovery story is identical: after a crash the log contains every
//! observation whose append returned, plus at most one torn tail line,
//! which [`ObservationLog::resume`] detects and truncates away.
//!
//! Two line kinds follow the manifest:
//!
//! - an **observation**: `{"coords":[…],"metric":"flops","value":v}` —
//!   one accepted measurement of one metric at one configuration;
//! - a **refit mark**: `{"refit":"full","metric":"flops"}` — the refresher
//!   durably records each refit it performed, so the staleness counters
//!   ("observations since the last full re-search") survive restarts
//!   exactly instead of resetting to zero.
//!
//! Values round-trip exactly (shortest-round-trip float formatting via
//! [`crate::minijson`]), so a replayed refit sees bit-identical inputs.

use crate::journal::JournalError;
use crate::minijson::{self, Json};
use exareq_core::fsio::{self, ExareqIoError, IoOp};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version of the observation-log file format.
pub const OBSLOG_FORMAT_VERSION: u32 = 1;

/// The header key that identifies a file as an observation log.
const MAGIC_KEY: &str = "exareq_observation_log";

/// Identity of one observation log: the model it feeds and that model's
/// parameter list. Appending observations for a renamed or re-shaped model
/// is rejected loudly, like resuming a survey journal against a different
/// sweep plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsManifest {
    /// Registry name of the model the observations belong to.
    pub model: String,
    /// Parameter names, in coordinate order (e.g. `["p", "n"]`).
    pub params: Vec<String>,
}

impl ObsManifest {
    /// Builds the manifest for observations of `model` over `params`.
    pub fn new(model: impl Into<String>, params: Vec<String>) -> Self {
        ObsManifest {
            model: model.into(),
            params,
        }
    }

    fn to_line(&self) -> String {
        Json::Obj(vec![
            (MAGIC_KEY.into(), Json::Num(OBSLOG_FORMAT_VERSION as f64)),
            ("model".into(), Json::Str(self.model.clone())),
            (
                "params".into(),
                Json::Arr(self.params.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
        ])
        .to_line()
    }

    fn from_json(v: &Json) -> Result<(Self, u32), String> {
        let format = v
            .get(MAGIC_KEY)
            .and_then(Json::as_f64)
            .ok_or("missing observation-log magic header")? as u32;
        let model = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("manifest missing `model`")?
            .to_string();
        let params = v
            .get("params")
            .and_then(Json::as_arr)
            .ok_or("manifest missing `params`")?
            .iter()
            .map(|p| p.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()
            .ok_or("manifest `params` must be strings")?;
        Ok((ObsManifest { model, params }, format))
    }

    fn check_matches(&self, found: &ObsManifest) -> Result<(), JournalError> {
        if found.model != self.model {
            return Err(JournalError::ManifestMismatch {
                field: "model",
                expected: self.model.clone(),
                found: found.model.clone(),
            });
        }
        if found.params != self.params {
            return Err(JournalError::ManifestMismatch {
                field: "params",
                expected: format!("{:?}", self.params),
                found: format!("{:?}", found.params),
            });
        }
        Ok(())
    }
}

/// One journaled line after the manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsLine {
    /// An accepted observation.
    Observation(ObsEntry),
    /// A durably recorded refit of one metric (`kind` is `"incremental"`
    /// or `"full"`).
    RefitMark {
        /// Metric field the refit replaced.
        metric: String,
        /// Refit kind performed.
        kind: String,
    },
}

/// One accepted observation: a metric value at a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEntry {
    /// Parameter coordinates, aligned with [`ObsManifest::params`].
    pub coords: Vec<f64>,
    /// Metric field name (e.g. `flops`).
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

impl ObsLine {
    fn to_json(&self) -> Json {
        match self {
            ObsLine::Observation(e) => Json::Obj(vec![
                (
                    "coords".into(),
                    Json::Arr(e.coords.iter().map(|&c| Json::Num(c)).collect()),
                ),
                ("metric".into(), Json::Str(e.metric.clone())),
                ("value".into(), Json::Num(e.value)),
            ]),
            ObsLine::RefitMark { metric, kind } => Json::Obj(vec![
                ("refit".into(), Json::Str(kind.clone())),
                ("metric".into(), Json::Str(metric.clone())),
            ]),
        }
    }

    /// The line as it appears in the file (before the trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(kind) = v.get("refit").and_then(Json::as_str) {
            let metric = v
                .get("metric")
                .and_then(Json::as_str)
                .ok_or("refit mark missing `metric`")?;
            return Ok(ObsLine::RefitMark {
                metric: metric.to_string(),
                kind: kind.to_string(),
            });
        }
        let coords = v
            .get("coords")
            .and_then(Json::as_arr)
            .ok_or("observation missing `coords`")?
            .iter()
            .map(Json::to_f64_lossless)
            .collect::<Option<Vec<_>>>()
            .ok_or("observation `coords` must be numbers")?;
        let metric = v
            .get("metric")
            .and_then(Json::as_str)
            .ok_or("observation missing `metric`")?
            .to_string();
        let value = v
            .get("value")
            .and_then(Json::to_f64_lossless)
            .ok_or("observation missing `value`")?;
        Ok(ObsLine::Observation(ObsEntry {
            coords,
            metric,
            value,
        }))
    }
}

/// An open, append-mode observation log.
#[derive(Debug)]
pub struct ObservationLog {
    path: PathBuf,
    file: File,
    manifest: ObsManifest,
    lines: Vec<ObsLine>,
    dropped_tail: bool,
}

impl ObservationLog {
    /// Creates a fresh log at `path`, writing and fsyncing the manifest
    /// header. Refuses to clobber an existing file.
    ///
    /// # Errors
    /// [`JournalError::Io`]; creation fails with `AlreadyExists` if `path`
    /// is taken.
    pub fn create(path: impl AsRef<Path>, manifest: ObsManifest) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| ExareqIoError::new(IoOp::Create, path, e))?;
        let mut header = manifest.to_line();
        header.push('\n');
        file.write_all(header.as_bytes())
            .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
        file.sync_all()
            .map_err(|e| ExareqIoError::new(IoOp::Sync, path, e))?;
        fsio::sync_parent_dir(path);
        Ok(ObservationLog {
            path: path.to_path_buf(),
            file,
            manifest,
            lines: Vec::new(),
            dropped_tail: false,
        })
    }

    /// Opens an existing log for appending: replays its lines, verifies
    /// the manifest matches `expected`, truncates a torn tail if the last
    /// writer died mid-append, and re-opens at the end.
    ///
    /// # Errors
    /// Same contract as [`crate::journal::SurveyJournal::resume`]:
    /// mismatched manifests, newer formats, damaged non-tail lines, and
    /// filesystem failures are all typed [`JournalError`]s.
    pub fn resume(path: impl AsRef<Path>, expected: &ObsManifest) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let text = fsio::read_to_string(path)?;
        let mut lines_text: Vec<&str> = Vec::new();
        let mut tail_torn = false;
        for seg in text.split_inclusive('\n') {
            if seg.ends_with('\n') {
                lines_text.push(seg.trim_end_matches(['\n', '\r']));
            } else {
                tail_torn = true;
            }
        }

        let header_text = *lines_text.first().ok_or(JournalError::Corrupt {
            line: 1,
            reason: "empty observation log (no manifest header)".into(),
        })?;
        let header_json = minijson::parse(header_text).map_err(|e| JournalError::Corrupt {
            line: 1,
            reason: e.to_string(),
        })?;
        let (manifest, format) = ObsManifest::from_json(&header_json)
            .map_err(|reason| JournalError::Corrupt { line: 1, reason })?;
        if format > OBSLOG_FORMAT_VERSION {
            return Err(JournalError::UnsupportedVersion {
                what: "format",
                found: format,
                supported: OBSLOG_FORMAT_VERSION,
            });
        }
        expected.check_matches(&manifest)?;

        let mut lines: Vec<ObsLine> = Vec::new();
        let mut valid_bytes = header_text.len() + 1;
        let mut dropped_tail = tail_torn;
        for (i, line) in lines_text.iter().enumerate().skip(1) {
            let is_last_line = i + 1 == lines_text.len() && !tail_torn;
            let parsed = minijson::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|v| ObsLine::from_json(&v));
            match parsed {
                Ok(entry) => {
                    lines.push(entry);
                    valid_bytes += line.len() + 1;
                }
                Err(reason) if is_last_line => {
                    let _ = reason;
                    dropped_tail = true;
                }
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason,
                    })
                }
            }
        }

        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| ExareqIoError::new(IoOp::Create, path, e))?;
        if dropped_tail {
            file.set_len(valid_bytes as u64)
                .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
            file.sync_all()
                .map_err(|e| ExareqIoError::new(IoOp::Sync, path, e))?;
        }
        file.seek(SeekFrom::Start(valid_bytes as u64))
            .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
        Ok(ObservationLog {
            path: path.to_path_buf(),
            file,
            manifest,
            lines,
            dropped_tail,
        })
    }

    /// [`resume`](Self::resume) when `path` exists, [`create`](Self::create)
    /// otherwise — what the refresher wants on first touch of a model.
    ///
    /// # Errors
    /// Whichever of the two constructors ran.
    pub fn open(path: impl AsRef<Path>, manifest: ObsManifest) -> Result<Self, JournalError> {
        if path.as_ref().exists() {
            ObservationLog::resume(path, &manifest)
        } else {
            ObservationLog::create(path, manifest)
        }
    }

    /// Reads a log without a manifest expectation — the offline tooling
    /// path (`exareq plan`) that wants whatever the daemon journaled.
    ///
    /// # Errors
    /// Same parse/IO contract as [`resume`](Self::resume); a torn tail is
    /// skipped, not an error.
    pub fn load(path: impl AsRef<Path>) -> Result<(ObsManifest, Vec<ObsLine>), JournalError> {
        let path = path.as_ref();
        let text = fsio::read_to_string(path)?;
        let mut lines_text: Vec<&str> = Vec::new();
        let mut tail_torn = false;
        for seg in text.split_inclusive('\n') {
            if seg.ends_with('\n') {
                lines_text.push(seg.trim_end_matches(['\n', '\r']));
            } else {
                tail_torn = true;
            }
        }
        let header_text = *lines_text.first().ok_or(JournalError::Corrupt {
            line: 1,
            reason: "empty observation log (no manifest header)".into(),
        })?;
        let header_json = minijson::parse(header_text).map_err(|e| JournalError::Corrupt {
            line: 1,
            reason: e.to_string(),
        })?;
        let (manifest, format) = ObsManifest::from_json(&header_json)
            .map_err(|reason| JournalError::Corrupt { line: 1, reason })?;
        if format > OBSLOG_FORMAT_VERSION {
            return Err(JournalError::UnsupportedVersion {
                what: "format",
                found: format,
                supported: OBSLOG_FORMAT_VERSION,
            });
        }
        let mut lines = Vec::new();
        for (i, line) in lines_text.iter().enumerate().skip(1) {
            let is_last_line = i + 1 == lines_text.len() && !tail_torn;
            match minijson::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|v| ObsLine::from_json(&v))
            {
                Ok(entry) => lines.push(entry),
                Err(_) if is_last_line => {}
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason,
                    })
                }
            }
        }
        Ok((manifest, lines))
    }

    /// Appends one line and **fsyncs** before returning: once this returns
    /// `Ok`, the observation (or refit mark) survives any crash.
    ///
    /// # Errors
    /// [`JournalError::Io`] — the line must then be considered unrecorded.
    pub fn append(&mut self, line: &ObsLine) -> Result<(), JournalError> {
        let mut text = line.to_line();
        text.push('\n');
        self.file
            .write_all(text.as_bytes())
            .map_err(|e| ExareqIoError::new(IoOp::Write, &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| ExareqIoError::new(IoOp::Sync, &self.path, e))?;
        self.lines.push(line.clone());
        Ok(())
    }

    /// Every journaled line, in append order.
    pub fn lines(&self) -> &[ObsLine] {
        &self.lines
    }

    /// The observations of one metric, `(coords, value)` in append order.
    pub fn metric_points(&self, metric: &str) -> Vec<(Vec<f64>, f64)> {
        self.lines
            .iter()
            .filter_map(|l| match l {
                ObsLine::Observation(e) if e.metric == metric => Some((e.coords.clone(), e.value)),
                _ => None,
            })
            .collect()
    }

    /// Observations of `metric` appended after its last `"full"` refit
    /// mark — the crash-exact staleness counter.
    pub fn since_full_refit(&self, metric: &str) -> u64 {
        let mut count = 0u64;
        for line in &self.lines {
            match line {
                ObsLine::Observation(e) if e.metric == metric => count += 1,
                ObsLine::RefitMark { metric: m, kind } if m == metric && kind == "full" => {
                    count = 0
                }
                _ => {}
            }
        }
        count
    }

    /// Total observations journaled (all metrics, marks excluded).
    pub fn observations(&self) -> u64 {
        self.lines
            .iter()
            .filter(|l| matches!(l, ObsLine::Observation(_)))
            .count() as u64
    }

    /// The manifest this log was created with.
    pub fn manifest(&self) -> &ObsManifest {
        &self.manifest
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when [`resume`](Self::resume) found and truncated a torn tail.
    pub fn dropped_tail(&self) -> bool {
        self.dropped_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("exareq_obslog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn manifest() -> ObsManifest {
        ObsManifest::new("kripke", vec!["p".to_string(), "n".to_string()])
    }

    fn obs(p: f64, n: f64, metric: &str, value: f64) -> ObsLine {
        ObsLine::Observation(ObsEntry {
            coords: vec![p, n],
            metric: metric.to_string(),
            value,
        })
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmp("roundtrip.obs.jsonl");
        let mut log = ObservationLog::create(&path, manifest()).unwrap();
        log.append(&obs(2.0, 64.0, "flops", 1.0 / 3.0)).unwrap();
        log.append(&obs(4.0, 64.0, "flops", 123.456)).unwrap();
        log.append(&ObsLine::RefitMark {
            metric: "flops".into(),
            kind: "full".into(),
        })
        .unwrap();
        log.append(&obs(8.0, 64.0, "flops", 7.0)).unwrap();
        log.append(&obs(8.0, 64.0, "comm_bytes", 9.0)).unwrap();
        drop(log);

        let log = ObservationLog::resume(&path, &manifest()).unwrap();
        assert!(!log.dropped_tail());
        assert_eq!(log.lines().len(), 5);
        assert_eq!(log.observations(), 4);
        assert_eq!(log.metric_points("flops").len(), 3);
        assert_eq!(
            log.metric_points("flops")[0].1.to_bits(),
            (1.0f64 / 3.0).to_bits()
        );
        assert_eq!(log.since_full_refit("flops"), 1);
        assert_eq!(log.since_full_refit("comm_bytes"), 1);
    }

    #[test]
    fn open_creates_then_resumes() {
        let path = tmp("open.obs.jsonl");
        let mut log = ObservationLog::open(&path, manifest()).unwrap();
        log.append(&obs(2.0, 64.0, "flops", 5.0)).unwrap();
        drop(log);
        let log = ObservationLog::open(&path, manifest()).unwrap();
        assert_eq!(log.observations(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn.obs.jsonl");
        let mut log = ObservationLog::create(&path, manifest()).unwrap();
        log.append(&obs(2.0, 64.0, "flops", 5.0)).unwrap();
        drop(log);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"coords\":[4,6").unwrap();
        drop(f);

        let mut log = ObservationLog::resume(&path, &manifest()).unwrap();
        assert!(log.dropped_tail());
        assert_eq!(log.observations(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        log.append(&obs(4.0, 64.0, "flops", 6.0)).unwrap();
        drop(log);
        let log = ObservationLog::resume(&path, &manifest()).unwrap();
        assert!(!log.dropped_tail());
        assert_eq!(log.observations(), 2);
    }

    #[test]
    fn manifest_mismatch_and_corruption_are_loud() {
        let path = tmp("mismatch.obs.jsonl");
        ObservationLog::create(&path, manifest()).unwrap();
        let other = ObsManifest::new("lulesh", vec!["p".to_string(), "n".to_string()]);
        assert!(matches!(
            ObservationLog::resume(&path, &other).unwrap_err(),
            JournalError::ManifestMismatch { field: "model", .. }
        ));
        let other = ObsManifest::new("kripke", vec!["p".to_string()]);
        assert!(matches!(
            ObservationLog::resume(&path, &other).unwrap_err(),
            JournalError::ManifestMismatch {
                field: "params",
                ..
            }
        ));

        let path = tmp("corrupt.obs.jsonl");
        let mut log = ObservationLog::create(&path, manifest()).unwrap();
        log.append(&obs(2.0, 64.0, "flops", 5.0)).unwrap();
        log.append(&obs(4.0, 64.0, "flops", 6.0)).unwrap();
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&path, format!("{}\nnot json\n{}\n", lines[0], lines[2])).unwrap();
        assert!(matches!(
            ObservationLog::resume(&path, &manifest()).unwrap_err(),
            JournalError::Corrupt { line: 2, .. }
        ));
    }

    #[test]
    fn load_reads_without_expectations() {
        let path = tmp("load.obs.jsonl");
        let mut log = ObservationLog::create(&path, manifest()).unwrap();
        log.append(&obs(2.0, 64.0, "flops", 5.0)).unwrap();
        drop(log);
        let (m, lines) = ObservationLog::load(&path).unwrap();
        assert_eq!(m, manifest());
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn newer_format_is_rejected() {
        let path = tmp("newer.obs.jsonl");
        let header = manifest().to_line().replace(
            &format!("\"{MAGIC_KEY}\":{OBSLOG_FORMAT_VERSION}"),
            &format!("\"{MAGIC_KEY}\":{}", OBSLOG_FORMAT_VERSION + 1),
        );
        std::fs::write(&path, format!("{header}\n")).unwrap();
        assert!(matches!(
            ObservationLog::resume(&path, &manifest()).unwrap_err(),
            JournalError::UnsupportedVersion { what: "format", .. }
        ));
    }
}
