//! `exareq-serve`: the co-design query daemon behind `exareq serve`.
//!
//! The paper's economics are lopsided on purpose: requirement models
//! `r(p, n)` cost hours of small-scale runs to *learn* and microseconds to
//! *evaluate*. The batch CLIs only exploit the first half; this crate
//! serves the second — a long-running daemon that loads survey/model
//! artifacts once and answers prediction and co-design questions over
//! HTTP until told to stop.
//!
//! Std-only by constraint and by design (the target container is
//! offline), the crate is four layers, one module each:
//!
//! - [`http`] — a minimal hardened HTTP/1.1 codec: request line, headers,
//!   `Content-Length` body; 400/413/431/501 on anything else, never a
//!   panic (`tests/http_properties.rs` fuzzes it).
//! - [`registry`] — the model registry over `--model-dir`: survey and
//!   fitted-requirements artifacts parsed once through the in-tree
//!   `minijson` codec, cached by content hash, hot-reloaded when bytes
//!   change, newer `schema_version`s rejected per file like the journal.
//! - [`server`] + [`dispatch`] + [`poll`] — the request engine: a single
//!   `poll(2)` event loop (in-tree libc binding, like `src/signal.rs`)
//!   multiplexes every connection, answers fast endpoints inline, and
//!   hands slow work (`/measure`, held predicts) to a bounded worker pool
//!   (503 + `Retry-After` on overflow); HTTP/1.1 keep-alive with a
//!   per-connection request cap and idle deadline, per-request
//!   [`Deadline`](exareq_core::cancel::Deadline) (504 on expiry), and the
//!   endpoints `GET /healthz`, `GET /models`, `GET /metrics` (Prometheus
//!   text), `POST /predict`, `POST /predict_batch`, `POST /upgrade`,
//!   `POST /strawman`, `POST /observations`.
//! - [`metrics`] — live counters and a latency histogram for `/metrics`.
//! - [`refresh`] — online model refresh behind `POST /observations`:
//!   measurements are journaled crash-consistently next to the artifact,
//!   coefficients refit incrementally (rank-1 QR), a staleness policy
//!   escalates to a full PMNF re-search, and refits republish the
//!   artifact atomically so the registry hot-reloads it.
//!
//! Response bodies are built exclusively in [`api`] with the same minijson
//! writer the library uses, so every daemon answer is byte-identical to
//! the equivalent direct call — correctness is a `==` on bytes, which
//! `tests/serve.rs` and `serve_throughput` assert under concurrent load.
//!
//! Graceful shutdown mirrors the sweep CLIs: the binary installs the
//! `src/signal.rs` handlers on a [`CancelToken`](exareq_core::cancel::CancelToken)
//! and passes it to [`server::serve`]; SIGINT/SIGTERM stops the acceptor,
//! drains in-flight requests within the drain deadline, and the process
//! exits 0 — a drained server has lost no work, unlike an interrupted
//! sweep (exit 5).

#![warn(missing_docs)]

pub mod api;
pub mod artifact;
pub mod dispatch;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod refresh;
pub mod registry;
pub mod server;

pub use dispatch::EngineState;
pub use http::{parse_request, HttpError, Request, Response, MAX_BODY_LEN, MAX_HEAD_LEN};
pub use metrics::Metrics;
pub use refresh::{ObserveError, RefreshSettings, Refresher};
pub use registry::{ArtifactKind, Fitter, ModelEntry, ModelRegistry, RegistrySnapshot};
pub use server::{serve, ServeConfig, ServeError, ServeSummary};
