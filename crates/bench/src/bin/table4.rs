//! Regenerates **Table IV**: the step-by-step workflow determining LULESH's
//! requirements after doubling the number of racks (upgrade A), from the
//! published Table II models.
//!
//! Run with `cargo run --release -p exareq-bench --bin table4`.

use exareq_bench::write_report;
use exareq_codesign::{
    analyze_upgrade, catalog, inflate_problem, RateMetric, SystemSkeleton, Upgrade,
};

fn main() {
    let app = catalog::lulesh();
    let base = SystemSkeleton::reference_large();
    let up = Upgrade::DOUBLE_RACKS;
    let upgraded = up.apply(&base);

    let mut out = String::new();
    out.push_str("== Table IV reproduction: LULESH under upgrade A ==\n\n");
    out.push_str("I:  requirement models (process & problem scaling)\n");
    for (label, m) in [
        ("#FLOP", &app.flops),
        ("#Bytes sent & recv.", &app.comm_bytes),
        ("#Loads & stores", &app.loads_stores),
        ("#Bytes used", &app.bytes_used),
    ] {
        out.push_str(&format!("    {label:<20} {m}\n"));
    }

    out.push_str("\nII: upgraded system configuration\n");
    out.push_str(&format!(
        "    processes: {:.0e} -> {:.0e}   memory/process: {:.1e} -> {:.1e}\n",
        base.processes, upgraded.processes, base.mem_per_process, upgraded.mem_per_process
    ));

    let old_n = inflate_problem(&app.bytes_used, &base).n().expect("fits");
    let new_n = inflate_problem(&app.bytes_used, &upgraded)
        .n()
        .expect("fits");
    out.push_str("\nIII/IV: problem inflation (footprint = memory per process)\n");
    out.push_str(&format!(
        "    n: {old_n:.4e} -> {new_n:.4e}   ratio {:.2} (paper: 1)\n",
        new_n / old_n
    ));
    out.push_str(&format!(
        "    overall problem: {:.4e} -> {:.4e}   ratio {:.2} (paper: 2)\n",
        base.processes * old_n,
        upgraded.processes * new_n,
        (upgraded.processes * new_n) / (base.processes * old_n)
    ));

    let outcome = analyze_upgrade(&app, &base, &up).expect("LULESH fits");
    out.push_str("\nV:  new requirements per process\n");
    let paper = [1.2, 1.2, 1.0];
    for (m, pv) in RateMetric::ALL.iter().zip(paper) {
        out.push_str(&format!(
            "    {:<20} ratio {:.2}   (paper: ~{pv})\n",
            m.label(),
            outcome.rate(*m)
        ));
    }
    print!("{out}");
    write_report("table4.txt", &out);
}
