//! Ablation **A3**: leave-one-out cross-validated hypothesis selection (the
//! SC13 method our generator implements) versus raw in-sample selection.
//!
//! In-sample selection always prefers the hypothesis with the most freedom
//! to chase noise; cross-validation punishes exactly that. We fit noisy
//! constant and noisy linear data with both selectors and count how often
//! each invents spurious growth, plus the resulting extrapolation damage.
//!
//! Run with `cargo run --release -p exareq-bench --bin ablation_selection`.

use exareq_bench::write_report;
use exareq_core::fit::{fit_single, fit_single_no_cv, FitConfig};
use exareq_core::measurement::Experiment;
use exareq_core::pmnf::Exponents;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn main() {
    let xs: [f64; 7] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let reps = 50usize;
    let noise = 0.05;
    let horizon: f64 = 1e6;
    let cfg = FitConfig::default();
    let mut rng = StdRng::seed_from_u64(0xAB1A7E);

    let cases: [(&str, f64, f64, f64); 2] = [
        // (name, coeff, poly, log)
        ("constant 1e5", 1e5, 0.0, 0.0),
        ("linear 1e3·x", 1e3, 1.0, 0.0),
    ];

    let mut out = String::new();
    out.push_str("== Ablation A3: cross-validated vs in-sample hypothesis selection ==\n");
    out.push_str(&format!(
        "(±{:.0}% noise, {reps} repetitions)\n\n",
        noise * 100.0
    ));
    out.push_str(&format!(
        "{:<16} {:>22} {:>22} {:>18} {:>18}\n",
        "truth", "CV spurious-growth", "in-sample spurious", "CV med extrap", "in-sample extrap"
    ));

    for (name, coeff, i, j) in cases {
        let mut cv_wrong = 0usize;
        let mut is_wrong = 0usize;
        let mut cv_err: Vec<f64> = Vec::new();
        let mut is_err: Vec<f64> = Vec::new();
        for _ in 0..reps {
            let clean = Experiment::from_fn(vec!["x"], &[&xs], |c| {
                coeff * c[0].powf(i) * c[0].log2().powf(j)
            });
            let noisy = clean.with_noise(noise, || rng.random::<f64>());
            let truth_exp = Exponents::new(i, j);
            let truth_val = coeff * horizon.powf(i) * horizon.log2().powf(j);

            if let Ok(m) = fit_single(&noisy, &cfg) {
                let lead = m.model.dominant_exponents(0);
                if lead.growth_cmp(&truth_exp).is_gt() {
                    cv_wrong += 1;
                }
                cv_err.push(((m.model.eval(&[horizon]) - truth_val) / truth_val).abs());
            }
            if let Ok(m) = fit_single_no_cv(&noisy, &cfg) {
                let lead = m.model.dominant_exponents(0);
                if lead.growth_cmp(&truth_exp).is_gt() {
                    is_wrong += 1;
                }
                is_err.push(((m.model.eval(&[horizon]) - truth_val) / truth_val).abs());
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.get(v.len() / 2).copied().unwrap_or(f64::NAN)
        };
        out.push_str(&format!(
            "{:<16} {:>21.0}% {:>21.0}% {:>17.1}% {:>17.1}%\n",
            name,
            100.0 * cv_wrong as f64 / reps as f64,
            100.0 * is_wrong as f64 / reps as f64,
            med(&mut cv_err) * 100.0,
            med(&mut is_err) * 100.0
        ));
    }
    out.push_str(
        "\nReading: in-sample selection manufactures growth terms out of noise\n\
         far more often than cross-validation, and pays for it at exascale\n\
         extrapolation distance — the design rationale for Extra-P's\n\
         cross-validated selection, which this reproduction follows.\n",
    );
    print!("{out}");
    write_report("ablation_selection.txt", &out);
}
