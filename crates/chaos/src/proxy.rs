//! The fault-injecting TCP proxy.
//!
//! One listener, one upstream. Every accepted connection is numbered, looks
//! up its fate in the `ChaosPlan`, and is relayed store-and-forward: the
//! whole stack speaks single-request `Connection: close` HTTP/1.1, so the
//! proxy reads one request, forwards it, reads one response, applies the
//! scheduled fault, and closes. Store-and-forward keeps fault application
//! (truncation offsets, corrupted byte positions) deterministic because the
//! full message is in hand before any transformed byte leaves the proxy.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use exareq_core::cancel::CancelToken;

use crate::metrics::ChaosMetrics;
use crate::plan::{ChaosPlan, FaultClass};

/// How long the proxy waits for an upstream TCP connect.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Hard ceiling on any single connection's lifetime inside the proxy, so a
/// partition against a client with no deadline cannot leak a thread forever.
const MAX_HOLD: Duration = Duration::from_secs(30);
/// Socket read granularity; also the cancellation poll interval.
const SLICE: Duration = Duration::from_millis(50);
/// Cap on one buffered HTTP message (head + body).
const MAX_MESSAGE: usize = 80 * 1024 * 1024;

/// Handle to a running chaos proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    metrics: Arc<ChaosMetrics>,
    acceptor: JoinHandle<()>,
}

impl ChaosProxy {
    /// Bind `listen`, start relaying to `upstream`, and return immediately.
    /// The proxy runs until `cancel` fires; `join` waits for full shutdown.
    pub fn start(
        listen: &str,
        upstream: &str,
        plan: ChaosPlan,
        cancel: &CancelToken,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ChaosMetrics::new());
        let upstream = upstream.to_string();
        let cancel = cancel.clone();
        let shared_metrics = Arc::clone(&metrics);
        let acceptor = thread::spawn(move || {
            accept_loop(listener, upstream, plan, shared_metrics, cancel);
        });
        Ok(ChaosProxy {
            addr,
            metrics,
            acceptor,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared fault counters.
    pub fn metrics(&self) -> Arc<ChaosMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Wait for the acceptor and every connection thread to finish. Only
    /// returns promptly after the associated `CancelToken` has fired.
    pub fn join(self) {
        let _ = self.acceptor.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: String,
    plan: ChaosPlan,
    metrics: Arc<ChaosMetrics>,
    cancel: CancelToken,
) {
    let next_conn = AtomicU64::new(0);
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                let upstream = upstream.clone();
                let plan = plan.clone();
                let metrics = Arc::clone(&metrics);
                let cancel = cancel.clone();
                workers.push(thread::spawn(move || {
                    handle_connection(stream, conn, &upstream, &plan, &metrics, &cancel);
                }));
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(Duration::from_millis(5)),
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

fn handle_connection(
    client: TcpStream,
    conn: u64,
    upstream: &str,
    plan: &ChaosPlan,
    metrics: &ChaosMetrics,
    cancel: &CancelToken,
) {
    metrics.record_connection();
    let started = Instant::now();
    match plan.decision(conn) {
        Some(FaultClass::Partition) => {
            metrics.record_fault(FaultClass::Partition);
            black_hole(client, cancel, started);
        }
        Some(FaultClass::Latency) => {
            metrics.record_fault(FaultClass::Latency);
            sleep_sliced(Duration::from_millis(plan.latency_for(conn)), cancel);
            let _ = relay(client, conn, upstream, plan, metrics, cancel, started, None);
        }
        Some(FaultClass::SlowLorisRequest) => {
            metrics.record_fault(FaultClass::SlowLorisRequest);
            let _ = relay(
                client,
                conn,
                upstream,
                plan,
                metrics,
                cancel,
                started,
                Some(FaultClass::SlowLorisRequest),
            );
        }
        fault => {
            let _ = relay(
                client, conn, upstream, plan, metrics, cancel, started, fault,
            );
        }
    }
}

/// Swallow whatever the client sends and never answer. Ends when the client
/// hangs up, the token fires, or the safety ceiling elapses.
fn black_hole(client: TcpStream, cancel: &CancelToken, started: Instant) {
    let _ = client.set_read_timeout(Some(SLICE));
    let mut sink = [0u8; 4096];
    let mut stream = client;
    // A read EOF is only a half-close (clients may shut down their write
    // side after the request); a black hole keeps the connection pinned
    // until the peer resets it, the plan's hold cap passes, or shutdown.
    let mut half_closed = false;
    while !cancel.is_cancelled() && started.elapsed() < MAX_HOLD {
        if half_closed {
            thread::sleep(SLICE);
            continue;
        }
        match stream.read(&mut sink) {
            Ok(0) => half_closed = true,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// Store-and-forward relay with the scheduled response-path fault applied.
/// `request_fault` marks the one request-path class (slow-loris request).
#[allow(clippy::too_many_arguments)]
fn relay(
    mut client: TcpStream,
    conn: u64,
    upstream: &str,
    plan: &ChaosPlan,
    metrics: &ChaosMetrics,
    cancel: &CancelToken,
    started: Instant,
    fault: Option<FaultClass>,
) -> std::io::Result<()> {
    let request = read_message(&mut client, cancel, started)?;
    if request.is_empty() {
        return Ok(());
    }
    let addr = resolve(upstream)?;
    let mut server = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    server.set_nodelay(true).ok();

    if fault == Some(FaultClass::SlowLorisRequest) {
        drip(
            &mut server,
            &request,
            plan.drip_interval_ms,
            cancel,
            started,
        );
    } else {
        server.write_all(&request)?;
    }
    let _ = server.shutdown(Shutdown::Write);

    let response = read_message(&mut server, cancel, started)?;
    if response.is_empty() {
        return Ok(());
    }

    match fault {
        Some(FaultClass::Reset) => {
            // The upstream did the work and answered; the client gets an
            // abrupt close with zero response bytes — a mid-stream reset
            // from its point of view.
            metrics.record_fault(FaultClass::Reset);
            let _ = client.shutdown(Shutdown::Both);
        }
        Some(FaultClass::Truncate) => {
            let head_end = head_end(&response).unwrap_or(response.len());
            let body_len = response.len() - head_end;
            let keep = head_end + plan.truncate_keep(conn, body_len);
            if keep < response.len() {
                metrics.record_fault(FaultClass::Truncate);
                client.write_all(&response[..keep])?;
            } else {
                client.write_all(&response)?;
            }
            let _ = client.shutdown(Shutdown::Both);
        }
        Some(FaultClass::SlowLorisResponse) => {
            metrics.record_fault(FaultClass::SlowLorisResponse);
            drip(
                &mut client,
                &response,
                plan.drip_interval_ms,
                cancel,
                started,
            );
        }
        Some(FaultClass::Corrupt) => {
            let head_len = head_end(&response).unwrap_or(response.len());
            let body_len = response.len() - head_len;
            let positions = plan.corrupt_positions(conn, body_len);
            if positions.is_empty() {
                client.write_all(&response)?;
            } else {
                metrics.record_fault(FaultClass::Corrupt);
                let mut corrupted = response;
                for p in positions {
                    // xor with a non-zero mask guarantees the byte changes.
                    corrupted[head_len + p] ^= 0xa5;
                }
                client.write_all(&corrupted)?;
            }
        }
        _ => client.write_all(&response)?,
    }
    Ok(())
}

/// Write `bytes` one at a time with `interval_ms` between them, stopping on
/// cancellation, peer hang-up, or the safety ceiling.
fn drip(
    stream: &mut TcpStream,
    bytes: &[u8],
    interval_ms: u64,
    cancel: &CancelToken,
    started: Instant,
) {
    stream.set_nodelay(true).ok();
    let interval = Duration::from_millis(interval_ms.max(1));
    for chunk in bytes.chunks(1) {
        if cancel.is_cancelled() || started.elapsed() >= MAX_HOLD {
            return;
        }
        if stream
            .write_all(chunk)
            .and_then(|_| stream.flush())
            .is_err()
        {
            return;
        }
        sleep_sliced(interval, cancel);
    }
}

/// Read one HTTP/1.1 message: head, then `Content-Length` body bytes (no
/// declared length means no body — every daemon in this stack sends one).
/// Returns whatever arrived if the peer closes early; the caller's fault
/// logic and the client's hardening decide what that means.
fn read_message(
    stream: &mut TcpStream,
    cancel: &CancelToken,
    started: Instant,
) -> std::io::Result<Vec<u8>> {
    stream.set_read_timeout(Some(SLICE))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8192];
    let mut want: Option<usize> = None;
    loop {
        if let Some(total) = want {
            if buf.len() >= total {
                buf.truncate(total);
                return Ok(buf);
            }
        }
        if cancel.is_cancelled() || started.elapsed() >= MAX_HOLD || buf.len() > MAX_MESSAGE {
            return Ok(buf);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(buf),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if want.is_none() {
                    if let Some(he) = head_end(&buf) {
                        want = Some(he + content_length(&buf[..he]).unwrap_or(0));
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Offset just past the `\r\n\r\n` head terminator, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parse a `Content-Length` header out of a raw message head.
fn content_length(head: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(head).ok()?;
    for line in text.split("\r\n") {
        let (name, value) = match line.split_once(':') {
            Some(pair) => pair,
            None => continue,
        };
        if name.eq_ignore_ascii_case("content-length") {
            return value.trim().parse::<usize>().ok();
        }
    }
    None
}

fn resolve(upstream: &str) -> std::io::Result<SocketAddr> {
    upstream.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::AddrNotAvailable, "upstream resolved to nothing")
    })
}

/// Sleep `total` in cancellation-aware slices.
fn sleep_sliced(total: Duration, cancel: &CancelToken) {
    let deadline = Instant::now() + total;
    while !cancel.is_cancelled() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        thread::sleep(left.min(SLICE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_core::cancel::CancelReason;
    use std::io::BufRead;

    /// Minimal single-shot upstream: answers every connection with `body`
    /// wrapped in a well-formed 200.
    fn canned_upstream(body: &'static str, cancel: &CancelToken) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        listener.set_nonblocking(true).ok();
        let addr = listener.local_addr().expect("addr");
        let cancel = cancel.clone();
        thread::spawn(move || {
            while !cancel.is_cancelled() {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream
                            .set_read_timeout(Some(Duration::from_millis(500)))
                            .ok();
                        let mut reader =
                            std::io::BufReader::new(stream.try_clone().expect("clone"));
                        let mut line = String::new();
                        while reader.read_line(&mut line).map(|n| n > 2).unwrap_or(false) {
                            line.clear();
                        }
                        let response = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                            body.len(),
                            body
                        );
                        let _ = stream.write_all(response.as_bytes());
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5))
                    }
                    Err(_) => break,
                }
            }
        });
        addr
    }

    fn fetch(addr: SocketAddr) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.write_all(b"GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")?;
        let _ = stream.shutdown(Shutdown::Write);
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    #[test]
    fn transparent_plan_relays_byte_identically() {
        let cancel = CancelToken::new();
        let upstream = canned_upstream("hello-chaos", &cancel);
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            &upstream.to_string(),
            ChaosPlan::with_seed(1),
            &cancel,
        )
        .expect("proxy starts");
        let direct = fetch(upstream).expect("direct fetch");
        let proxied = fetch(proxy.addr()).expect("proxied fetch");
        assert_eq!(direct, proxied, "inactive plan must be a transparent relay");
        assert_eq!(proxy.metrics().injected_total(), 0);
        assert_eq!(proxy.metrics().connections_total(), 1);
        cancel.cancel(CancelReason::Interrupt);
        proxy.join();
    }

    #[test]
    fn reset_plan_closes_with_zero_response_bytes() {
        let cancel = CancelToken::new();
        let upstream = canned_upstream("unseen", &cancel);
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            &upstream.to_string(),
            ChaosPlan::with_seed(1).reset(1.0),
            &cancel,
        )
        .expect("proxy starts");
        let got = fetch(proxy.addr()).expect("fetch against reset proxy");
        assert!(
            got.is_empty(),
            "reset fault must deliver zero bytes, got {}",
            got.len()
        );
        assert_eq!(proxy.metrics().injected(FaultClass::Reset), 1);
        cancel.cancel(CancelReason::Interrupt);
        proxy.join();
    }

    #[test]
    fn truncate_plan_delivers_a_strict_prefix() {
        let cancel = CancelToken::new();
        let upstream = canned_upstream("a-body-long-enough-to-truncate", &cancel);
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            &upstream.to_string(),
            ChaosPlan::with_seed(9).truncate(1.0),
            &cancel,
        )
        .expect("proxy starts");
        let direct = fetch(upstream).expect("direct fetch");
        let truncated = fetch(proxy.addr()).expect("truncated fetch");
        assert!(truncated.len() < direct.len());
        assert_eq!(&direct[..truncated.len()], &truncated[..]);
        assert_eq!(proxy.metrics().injected(FaultClass::Truncate), 1);
        cancel.cancel(CancelReason::Interrupt);
        proxy.join();
    }

    #[test]
    fn corrupt_plan_flips_body_bytes_only() {
        let cancel = CancelToken::new();
        let upstream = canned_upstream("payload-to-corrupt", &cancel);
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            &upstream.to_string(),
            ChaosPlan::with_seed(4).corrupt(1.0, 2),
            &cancel,
        )
        .expect("proxy starts");
        let direct = fetch(upstream).expect("direct fetch");
        let corrupted = fetch(proxy.addr()).expect("corrupted fetch");
        assert_eq!(direct.len(), corrupted.len());
        let he = head_end(&direct).expect("head end");
        assert_eq!(&direct[..he], &corrupted[..he], "head must be untouched");
        assert_ne!(&direct[he..], &corrupted[he..], "body must differ");
        assert_eq!(proxy.metrics().injected(FaultClass::Corrupt), 1);
        cancel.cancel(CancelReason::Interrupt);
        proxy.join();
    }

    #[test]
    fn partition_plan_answers_nothing_until_client_gives_up() {
        let cancel = CancelToken::new();
        let upstream = canned_upstream("never-seen", &cancel);
        let proxy = ChaosProxy::start(
            "127.0.0.1:0",
            &upstream.to_string(),
            ChaosPlan::with_seed(2).partition(1.0),
            &cancel,
        )
        .expect("proxy starts");
        let started = Instant::now();
        let got = fetch(proxy.addr()).expect("fetch returns after client timeout");
        assert!(got.is_empty(), "partition must deliver zero bytes");
        assert!(
            started.elapsed() >= Duration::from_millis(1500),
            "client should have waited out its own read timeout"
        );
        assert_eq!(proxy.metrics().injected(FaultClass::Partition), 1);
        cancel.cancel(CancelReason::Interrupt);
        proxy.join();
    }
}
