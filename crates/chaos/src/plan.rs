//! Deterministic per-connection fault schedules.
//!
//! The chaos proxy mirrors `crates/sim/src/fault.rs` one layer down: instead
//! of perturbing simulated collectives, it perturbs real TCP connections.
//! Every decision is a pure function of `(plan.seed, connection_index)` —
//! the proxy numbers accepted connections from zero, derives a SplitMix64
//! stream per connection, and draws one uniform per fault class in a fixed
//! order. The first class whose draw lands under its probability fires; a
//! connection carries at most one fault. Replaying the same seed against the
//! same connection ordering therefore reproduces the exact fault schedule,
//! which is what `chaos_soak` and the CI smoke assert.

/// One injectable fault class. A connection is assigned at most one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Sleep before relaying anything (slow link, but correct).
    Latency,
    /// Black hole: swallow the request, never answer, never reset.
    Partition,
    /// Relay the request, then close abruptly with zero response bytes.
    Reset,
    /// Relay the response head plus a prefix of the body, then close.
    Truncate,
    /// Drip the request towards the upstream one byte at a time.
    SlowLorisRequest,
    /// Drip the response towards the client one byte at a time.
    SlowLorisResponse,
    /// Flip bytes inside the response body before relaying it.
    Corrupt,
}

impl FaultClass {
    /// Stable label used in metrics and fault-spec parsing.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Latency => "latency",
            FaultClass::Partition => "partition",
            FaultClass::Reset => "reset",
            FaultClass::Truncate => "truncate",
            FaultClass::SlowLorisRequest => "slowloris_request",
            FaultClass::SlowLorisResponse => "slowloris_response",
            FaultClass::Corrupt => "corrupt",
        }
    }
}

/// Draw order. This is part of the determinism contract: changing it changes
/// every schedule, so it is append-only.
pub const CLASSES: [FaultClass; 7] = [
    FaultClass::Latency,
    FaultClass::Partition,
    FaultClass::Reset,
    FaultClass::Truncate,
    FaultClass::SlowLorisRequest,
    FaultClass::SlowLorisResponse,
    FaultClass::Corrupt,
];

/// Seeded description of what the proxy may do to a connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Base seed for every per-connection stream.
    pub seed: u64,
    /// Probability of added latency, and how much to add.
    pub latency_prob: f64,
    /// Milliseconds slept when a latency fault fires.
    pub latency_ms: u64,
    /// Probability of a black-hole partition.
    pub partition_prob: f64,
    /// Probability of a mid-stream reset (close with no response bytes).
    pub reset_prob: f64,
    /// Probability of response truncation.
    pub truncate_prob: f64,
    /// Probability of dripping the request path.
    pub slow_request_prob: f64,
    /// Probability of dripping the response path.
    pub slow_response_prob: f64,
    /// Probability of response-body corruption.
    pub corrupt_prob: f64,
    /// How many body bytes a corruption fault flips.
    pub corrupt_bytes: u32,
    /// Milliseconds between dripped bytes for the slow-loris classes.
    pub drip_interval_ms: u64,
}

impl ChaosPlan {
    /// A plan that injects nothing (transparent relay).
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            latency_prob: 0.0,
            latency_ms: 150,
            partition_prob: 0.0,
            reset_prob: 0.0,
            truncate_prob: 0.0,
            slow_request_prob: 0.0,
            slow_response_prob: 0.0,
            corrupt_prob: 0.0,
            corrupt_bytes: 3,
            drip_interval_ms: 100,
        }
    }

    /// A transparent plan carrying a seed, ready for builder calls.
    pub fn with_seed(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::none()
        }
    }

    /// Enable added latency with probability `prob`, sleeping `ms`.
    pub fn latency(mut self, prob: f64, ms: u64) -> Self {
        self.latency_prob = prob.clamp(0.0, 1.0);
        self.latency_ms = ms;
        self
    }

    /// Enable black-hole partitions with probability `prob`.
    pub fn partition(mut self, prob: f64) -> Self {
        self.partition_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Enable mid-stream resets with probability `prob`.
    pub fn reset(mut self, prob: f64) -> Self {
        self.reset_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Enable response truncation with probability `prob`.
    pub fn truncate(mut self, prob: f64) -> Self {
        self.truncate_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Enable request-path slow-loris with probability `prob`.
    pub fn slow_request(mut self, prob: f64) -> Self {
        self.slow_request_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Enable response-path slow-loris with probability `prob`.
    pub fn slow_response(mut self, prob: f64) -> Self {
        self.slow_response_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Enable body corruption with probability `prob`, flipping `bytes`.
    pub fn corrupt(mut self, prob: f64, bytes: u32) -> Self {
        self.corrupt_prob = prob.clamp(0.0, 1.0);
        self.corrupt_bytes = bytes.max(1);
        self
    }

    /// Interval between dripped bytes for both slow-loris classes.
    pub fn drip_interval_ms(mut self, ms: u64) -> Self {
        self.drip_interval_ms = ms.max(1);
        self
    }

    /// True when at least one fault class can fire.
    pub fn is_active(&self) -> bool {
        self.latency_prob > 0.0
            || self.partition_prob > 0.0
            || self.reset_prob > 0.0
            || self.truncate_prob > 0.0
            || self.slow_request_prob > 0.0
            || self.slow_response_prob > 0.0
            || self.corrupt_prob > 0.0
    }

    fn prob(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Latency => self.latency_prob,
            FaultClass::Partition => self.partition_prob,
            FaultClass::Reset => self.reset_prob,
            FaultClass::Truncate => self.truncate_prob,
            FaultClass::SlowLorisRequest => self.slow_request_prob,
            FaultClass::SlowLorisResponse => self.slow_response_prob,
            FaultClass::Corrupt => self.corrupt_prob,
        }
    }

    /// The fault (if any) assigned to connection number `conn`. Pure in
    /// `(self.seed, conn)`; draws one uniform per class in `CLASSES` order
    /// regardless of which class fires, so individual probabilities can be
    /// tuned without reshuffling later classes' draws.
    pub fn decision(&self, conn: u64) -> Option<FaultClass> {
        let mut state = conn_seed(self.seed, conn);
        let mut fired = None;
        for class in CLASSES {
            let draw = uniform(&mut state);
            if fired.is_none() && draw < self.prob(class) {
                fired = Some(class);
            }
        }
        fired
    }

    /// Milliseconds of added latency for connection `conn`, in
    /// `[latency_ms/2, latency_ms]` so schedules are not perfectly lockstep.
    pub fn latency_for(&self, conn: u64) -> u64 {
        let mut state = conn_seed(self.seed, conn) ^ 0x006c_6174_656e_6379;
        let base = self.latency_ms.max(1);
        base / 2 + splitmix64(&mut state) % (base / 2 + 1)
    }

    /// How many bytes of an `body_len`-byte body a truncation fault keeps:
    /// strictly fewer than `body_len` whenever the body is non-empty.
    pub fn truncate_keep(&self, conn: u64, body_len: usize) -> usize {
        if body_len == 0 {
            return 0;
        }
        let mut state = conn_seed(self.seed, conn) ^ 0x7472_756e_6361_7465;
        (splitmix64(&mut state) as usize) % body_len
    }

    /// Byte offsets (into the body) flipped by a corruption fault. At most
    /// `corrupt_bytes` distinct positions; empty only for empty bodies.
    pub fn corrupt_positions(&self, conn: u64, body_len: usize) -> Vec<usize> {
        if body_len == 0 {
            return Vec::new();
        }
        let mut state = conn_seed(self.seed, conn) ^ 0x0063_6f72_7275_7074;
        let mut positions: Vec<usize> = (0..self.corrupt_bytes.max(1))
            .map(|_| (splitmix64(&mut state) as usize) % body_len)
            .collect();
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    /// The first `n` connection decisions as a vector — the full schedule a
    /// sequentially-driven proxy will follow. Used by reproducibility tests.
    pub fn schedule(&self, n: u64) -> Vec<Option<FaultClass>> {
        (0..n).map(|c| self.decision(c)).collect()
    }

    /// Parse a compact `key=value,...` spec, mirroring `FaultPlan::parse`:
    /// `seed=42,latency=0.2@150,partition=0.1,reset=0.1,truncate=0.1,`
    /// `slowreq=0.05,slowresp=0.05,corrupt=0.1@3,drip_ms=100`.
    /// `latency` takes an optional `@ms` suffix, `corrupt` an optional
    /// `@bytes` suffix. Empty spec parses to `ChaosPlan::none()`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = ChaosPlan::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec `{part}`: expected key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("chaos seed `{value}`: expected u64"))?;
                }
                "latency" => {
                    let (prob, ms) = parse_prob_at(value, "latency")?;
                    let ms = ms.unwrap_or(plan.latency_ms);
                    plan = plan.latency(prob, ms);
                }
                "partition" => plan = plan.partition(parse_prob(value, "partition")?),
                "reset" => plan = plan.reset(parse_prob(value, "reset")?),
                "truncate" => plan = plan.truncate(parse_prob(value, "truncate")?),
                "slowreq" => plan = plan.slow_request(parse_prob(value, "slowreq")?),
                "slowresp" => plan = plan.slow_response(parse_prob(value, "slowresp")?),
                "corrupt" => {
                    let (prob, bytes) = parse_prob_at(value, "corrupt")?;
                    let bytes = bytes.unwrap_or(u64::from(plan.corrupt_bytes));
                    plan = plan.corrupt(prob, bytes.min(u64::from(u32::MAX)) as u32);
                }
                "drip_ms" => {
                    let ms = value
                        .parse::<u64>()
                        .map_err(|_| format!("chaos drip_ms `{value}`: expected u64"))?;
                    plan = plan.drip_interval_ms(ms);
                }
                other => return Err(format!("chaos spec: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }
}

fn parse_prob(value: &str, key: &str) -> Result<f64, String> {
    let p = value
        .parse::<f64>()
        .map_err(|_| format!("chaos {key} `{value}`: expected probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!(
            "chaos {key} `{value}`: probability must be in [0, 1]"
        ));
    }
    Ok(p)
}

fn parse_prob_at(value: &str, key: &str) -> Result<(f64, Option<u64>), String> {
    match value.split_once('@') {
        Some((p, extra)) => {
            let extra = extra
                .parse::<u64>()
                .map_err(|_| format!("chaos {key} `{value}`: expected prob@u64"))?;
            Ok((parse_prob(p, key)?, Some(extra)))
        }
        None => Ok((parse_prob(value, key)?, None)),
    }
}

/// SplitMix64 step — the same generator the sim fault layer uses.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in [0, 1) using the top 53 bits.
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derive the per-connection stream seed. Mixing the connection index
/// through a multiply before the xor keeps adjacent connections' streams
/// decorrelated (plain `seed ^ conn` would make streams 0 and 1 near-twins).
fn conn_seed(seed: u64, conn: u64) -> u64 {
    let mut s = seed ^ conn.wrapping_add(1).wrapping_mul(0xff51_afd7_ed55_8ccd);
    splitmix64(&mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_and_connection_index() {
        let plan = ChaosPlan::with_seed(42)
            .latency(0.2, 50)
            .partition(0.1)
            .reset(0.1)
            .truncate(0.1)
            .corrupt(0.1, 3);
        let a = plan.schedule(512);
        let b = plan.schedule(512);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        let other = ChaosPlan {
            seed: 43,
            ..plan.clone()
        }
        .schedule(512);
        assert_ne!(
            a, other,
            "different seeds should diverge somewhere in 512 draws"
        );
    }

    #[test]
    fn probabilities_roughly_match_over_many_connections() {
        let plan = ChaosPlan::with_seed(7).partition(0.25);
        let n = 4000;
        let hits = plan
            .schedule(n)
            .iter()
            .filter(|d| **d == Some(FaultClass::Partition))
            .count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.25).abs() < 0.05,
            "partition rate {rate} far from 0.25"
        );
    }

    #[test]
    fn inactive_plan_never_fires() {
        let plan = ChaosPlan::with_seed(99);
        assert!(!plan.is_active());
        assert!(plan.schedule(256).iter().all(|d| d.is_none()));
    }

    #[test]
    fn truncate_keep_is_a_strict_prefix() {
        let plan = ChaosPlan::with_seed(3).truncate(1.0);
        for conn in 0..64 {
            let keep = plan.truncate_keep(conn, 100);
            assert!(keep < 100);
        }
        assert_eq!(plan.truncate_keep(0, 0), 0);
    }

    #[test]
    fn corrupt_positions_are_in_bounds_and_deduped() {
        let plan = ChaosPlan::with_seed(5).corrupt(1.0, 4);
        for conn in 0..64 {
            let positions = plan.corrupt_positions(conn, 37);
            assert!(!positions.is_empty());
            assert!(positions.len() <= 4);
            assert!(positions.iter().all(|&p| p < 37));
            let mut sorted = positions.clone();
            sorted.dedup();
            assert_eq!(sorted, positions);
        }
        assert!(plan.corrupt_positions(0, 0).is_empty());
    }

    #[test]
    fn parse_round_trips_the_documented_spec() {
        let plan = ChaosPlan::parse(
            "seed=42,latency=0.2@150,partition=0.1,reset=0.05,truncate=0.1,\
             slowreq=0.02,slowresp=0.03,corrupt=0.1@5,drip_ms=80",
        )
        .expect("spec parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.latency_prob, 0.2);
        assert_eq!(plan.latency_ms, 150);
        assert_eq!(plan.partition_prob, 0.1);
        assert_eq!(plan.reset_prob, 0.05);
        assert_eq!(plan.truncate_prob, 0.1);
        assert_eq!(plan.slow_request_prob, 0.02);
        assert_eq!(plan.slow_response_prob, 0.03);
        assert_eq!(plan.corrupt_prob, 0.1);
        assert_eq!(plan.corrupt_bytes, 5);
        assert_eq!(plan.drip_interval_ms, 80);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(ChaosPlan::parse("nonsense").is_err());
        assert!(ChaosPlan::parse("unknown=1").is_err());
        assert!(ChaosPlan::parse("partition=1.5").is_err());
        assert!(ChaosPlan::parse("seed=abc").is_err());
        assert!(ChaosPlan::parse("latency=0.2@xyz").is_err());
        assert_eq!(ChaosPlan::parse("").expect("empty ok"), ChaosPlan::none());
    }
}
