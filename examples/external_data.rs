//! Fitting external measurements: the workflow for users who already have
//! profile data from a real system (Score-P, PAPI, a spreadsheet …) and
//! want requirement models without running the simulator.
//!
//! Run with `cargo run --release --example external_data`.

use exareq::core::csv::{experiment_from_csv, experiment_to_csv};
use exareq::core::describe::describe;
use exareq::core::multiparam::{fit_multi, MultiParamConfig};

fn main() {
    // Imagine this came from a 2-parameter scaling study on a real cluster
    // (here: synthesized with 1% systematic perturbation to look the part).
    let mut csv =
        String::from("# wallclock-independent counter: bytes sent per process\np,n,value\n");
    for (i, p) in [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0].iter().enumerate() {
        for n in [1e3f64, 4e3, 1.6e4, 6.4e4, 2.56e5] {
            let truth = 820.0 * n * p.log2() + 3.2e4;
            let wiggle = 1.0 + 0.01 * ((i as f64 * 0.7).sin());
            csv.push_str(&format!("{p},{n},{:.1}\n", truth * wiggle));
        }
    }
    println!("input (first lines):");
    for line in csv.lines().take(5) {
        println!("  {line}");
    }

    let exp = experiment_from_csv(&csv).expect("valid CSV");
    println!(
        "\nparsed {} measurements over {:?}",
        exp.points.len(),
        exp.params
    );

    let fitted = fit_multi(&exp, &MultiParamConfig::default()).expect("fit");
    println!("\nmodel     : {}", fitted.model);
    println!(
        "quality   : cv-SMAPE {:.3}%, R² {:.5}",
        fitted.cv_smape, fitted.r2
    );
    println!("in words  : {}", describe(&fitted.model));

    // Extrapolate to a machine 1000× bigger than anything measured.
    let pred = fitted.model.eval(&[64_000.0, 2.56e5]);
    println!("\nprediction at p = 64000, n = 2.56e5: {pred:.3e} bytes/process");

    // And the round trip, should you want to archive the cleaned data.
    let archived = experiment_to_csv(&exp);
    println!("\narchived CSV is {} bytes", archived.len());
}
