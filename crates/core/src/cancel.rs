//! Cooperative cancellation: a shareable token that long-running layers
//! probe at safe points, so sweeps, fits, and simulated ranks can be asked
//! to wind down instead of being torn down.
//!
//! The design mirrors what batch schedulers force on real co-design
//! pipelines: a preemption signal arrives (SIGTERM, a wall-clock deadline,
//! an exhausted budget) and the job must stop *between* units of work,
//! flush its journal, and leave a resumable trail. Three pieces:
//!
//! - [`CancelToken`] — a cheaply clonable atomic flag with a typed
//!   [`CancelReason`]. The first cancellation wins; later ones are ignored.
//! - [`Deadline`] — a monotonic wall-clock cutoff. A token carrying a
//!   deadline converts expiry into a [`CancelReason::Deadline`]
//!   cancellation at the next probe.
//! - [`CancelToken::checkpoint`] — the probe. On the clean-run path
//!   (no deadline armed) it is a single relaxed atomic load, cheap enough
//!   to sit inside per-operation simulator loops without measurable cost.
//!
//! Cancellation is *cooperative*: nothing unwinds asynchronously. Work in
//! flight between two checkpoints always completes, which is what keeps
//! journal appends atomic and resumed artifacts byte-identical to
//! uninterrupted runs.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An external interrupt (SIGINT/SIGTERM or an explicit stop request).
    Interrupt,
    /// The run's global wall-clock deadline expired.
    Deadline,
    /// A work budget (e.g. a probe allowance in a preemption study) ran out.
    Budget,
}

impl CancelReason {
    /// The wire encoding stored in the token's atomic state.
    ///
    /// `0` is reserved for "live"; signal handlers store
    /// `CancelReason::Interrupt.code()` directly into the flag returned by
    /// [`CancelToken::signal_flag`], so this mapping is part of the public
    /// contract.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            CancelReason::Interrupt => 1,
            CancelReason::Deadline => 2,
            CancelReason::Budget => 3,
        }
    }

    /// Decodes a state byte back into a reason (`None` for "live").
    #[must_use]
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(CancelReason::Interrupt),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Budget),
            _ => None,
        }
    }
}

impl core::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CancelReason::Interrupt => write!(f, "interrupted"),
            CancelReason::Deadline => write!(f, "deadline expired"),
            CancelReason::Budget => write!(f, "budget exhausted"),
        }
    }
}

/// The error a [`CancelToken::checkpoint`] probe returns once the token is
/// cancelled. Carries the typed reason so callers can map it to distinct
/// exit codes and messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the run was cancelled.
    pub reason: CancelReason,
}

impl core::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cancelled: {}", self.reason)
    }
}

impl std::error::Error for Cancelled {}

/// A monotonic wall-clock cutoff.
///
/// Attach one to a token with [`CancelToken::with_deadline`]; expiry then
/// surfaces as [`CancelReason::Deadline`] at the next checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    #[must_use]
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline at an absolute instant.
    #[must_use]
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Has the cutoff passed?
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the cutoff (zero once expired).
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Sentinel for "no probe budget armed".
const BUDGET_UNLIMITED: u64 = u64::MAX;

struct Inner {
    /// 0 = live; otherwise a [`CancelReason::code`] value. First store wins.
    state: AtomicU8,
    /// Remaining work units before a `Budget` self-cancellation;
    /// [`BUDGET_UNLIMITED`] when no budget is armed.
    budget: AtomicU64,
}

/// A shareable cancellation token.
///
/// Clones share the same flag: cancelling any clone cancels them all.
/// Deadlines and budgets are carried per-clone configuration but observe
/// and set the shared flag, so a deadline noticed by one layer stops every
/// other layer at its next probe.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CancelToken")
            .field("reason", &self.reason())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline and no budget.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(0),
                budget: AtomicU64::new(BUDGET_UNLIMITED),
            }),
            deadline: None,
        }
    }

    /// A token that self-cancels with [`CancelReason::Budget`] once
    /// [`consume`](Self::consume) has been charged `units` work units.
    ///
    /// This is the deterministic preemption lever used by the `resilience`
    /// bench and tests: "cancel at config k" without timing races.
    #[must_use]
    pub fn with_budget(units: u64) -> Self {
        let t = CancelToken::new();
        t.inner.budget.store(units, Ordering::Relaxed);
        t
    }

    /// Returns a clone of this token that also enforces `deadline`.
    ///
    /// The shared flag is unchanged; only the clone (and its clones) pay
    /// the `Instant::now()` check at each probe.
    #[must_use]
    pub fn with_deadline(&self, deadline: Deadline) -> Self {
        let mut t = self.clone();
        t.deadline = Some(deadline.at);
        t
    }

    /// The armed deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline.map(|at| Deadline { at })
    }

    /// Cancels the token. The first reason wins; subsequent calls are
    /// no-ops. Returns whether this call was the one that cancelled.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.inner
            .state
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Charges `units` of work against the probe budget (if one is armed).
    /// Crossing zero cancels the token with [`CancelReason::Budget`].
    pub fn consume(&self, units: u64) {
        if self.inner.budget.load(Ordering::Relaxed) == BUDGET_UNLIMITED {
            return;
        }
        let prev = self.inner.budget.fetch_sub(units, Ordering::Relaxed);
        if prev <= units {
            // Clamp so repeated charges cannot wrap back above zero.
            self.inner.budget.store(0, Ordering::Relaxed);
            self.cancel(CancelReason::Budget);
        }
    }

    /// Is the token cancelled? (Does not evaluate the deadline.)
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != 0
    }

    /// The cancellation reason, if cancelled.
    #[must_use]
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.inner.state.load(Ordering::Relaxed))
    }

    /// The cancellation probe. `Ok(())` while live; [`Cancelled`] with the
    /// typed reason once the shared flag is set or this clone's deadline
    /// has expired.
    ///
    /// On the clean-run path (no deadline on this clone) the cost is a
    /// single relaxed atomic load — place probes freely in hot loops.
    ///
    /// # Errors
    /// Returns [`Cancelled`] when the token has been cancelled.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        let code = self.inner.state.load(Ordering::Relaxed);
        if let Some(reason) = CancelReason::from_code(code) {
            return Err(Cancelled { reason });
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                self.cancel(CancelReason::Deadline);
                // Another thread may have raced a different reason in.
                let reason = self.reason().unwrap_or(CancelReason::Deadline);
                return Err(Cancelled { reason });
            }
        }
        Ok(())
    }

    /// Leaks a reference to the shared state flag for use inside a signal
    /// handler.
    ///
    /// A handler may only perform async-signal-safe work; a single atomic
    /// store qualifies. The handler should store
    /// [`CancelReason::Interrupt`]`.code()` with any ordering — every
    /// checkpoint will observe it. The backing allocation is intentionally
    /// leaked (one token per process lifetime) so the pointer can never
    /// dangle, even if every `CancelToken` clone is dropped.
    #[must_use]
    pub fn signal_flag(&self) -> &'static AtomicU8 {
        let keepalive = Arc::clone(&self.inner);
        let ptr: *const AtomicU8 = &keepalive.state;
        std::mem::forget(keepalive);
        // SAFETY: the Arc clone above is leaked, so the pointee lives for
        // the remainder of the process.
        unsafe { &*ptr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_token_passes_checkpoints() {
        let t = CancelToken::new();
        assert!(t.checkpoint().is_ok());
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn first_cancellation_reason_wins() {
        let t = CancelToken::new();
        assert!(t.cancel(CancelReason::Interrupt));
        assert!(!t.cancel(CancelReason::Deadline));
        assert_eq!(t.reason(), Some(CancelReason::Interrupt));
        assert_eq!(
            t.checkpoint(),
            Err(Cancelled {
                reason: CancelReason::Interrupt
            })
        );
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel(CancelReason::Interrupt);
        assert!(c.is_cancelled());
        assert_eq!(c.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn expired_deadline_cancels_at_the_probe() {
        let t = CancelToken::new().with_deadline(Deadline::after(Duration::ZERO));
        // The base clone carries no deadline …
        let err = t.checkpoint().unwrap_err();
        assert_eq!(err.reason, CancelReason::Deadline);
        // … but the shared flag is now set, so every clone observes it.
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn unexpired_deadline_reports_remaining() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3500));
        let t = CancelToken::new().with_deadline(d);
        assert!(t.checkpoint().is_ok());
    }

    #[test]
    fn budget_cancels_after_k_units() {
        let t = CancelToken::with_budget(3);
        t.consume(1);
        assert!(t.checkpoint().is_ok());
        t.consume(1);
        assert!(t.checkpoint().is_ok());
        t.consume(1);
        assert_eq!(
            t.checkpoint(),
            Err(Cancelled {
                reason: CancelReason::Budget
            })
        );
        // Further charges must not wrap the counter back to "unlimited".
        t.consume(1);
        assert!(t.is_cancelled());
    }

    #[test]
    fn unbudgeted_token_ignores_consume() {
        let t = CancelToken::new();
        for _ in 0..10 {
            t.consume(1);
        }
        assert!(t.checkpoint().is_ok());
    }

    #[test]
    fn signal_flag_store_is_observed_by_checkpoints() {
        let t = CancelToken::new();
        let flag = t.signal_flag();
        flag.store(CancelReason::Interrupt.code(), Ordering::Relaxed);
        assert_eq!(t.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn reason_codes_round_trip() {
        for r in [
            CancelReason::Interrupt,
            CancelReason::Deadline,
            CancelReason::Budget,
        ] {
            assert_eq!(CancelReason::from_code(r.code()), Some(r));
        }
        assert_eq!(CancelReason::from_code(0), None);
        assert_eq!(CancelReason::from_code(255), None);
    }

    #[test]
    fn display_is_human_readable() {
        let c = Cancelled {
            reason: CancelReason::Deadline,
        };
        assert_eq!(c.to_string(), "cancelled: deadline expired");
        assert_eq!(CancelReason::Budget.to_string(), "budget exhausted");
    }
}
