//! End-to-end chaos tests: the seeded fault-injecting proxy from
//! `crates/chaos` wedged between a real in-process router (or fleet
//! coordinator) and real `exareq serve` engines.
//!
//! The contract under test is two-sided:
//!
//! - **Determinism.** A fault schedule is a pure function of
//!   `(seed, connection index)` — the same spec replays the same faults.
//! - **Absorption.** Every injected fault — mid-stream reset, black-hole
//!   partition, payload corruption — surfaces as a typed client error
//!   that the router turns into failover and the fleet turns into
//!   redispatch, never as a divergent `200` body and never as a
//!   degraded local answer.
//!
//! Everything runs in-process (serve engines, chaos proxies, router,
//! fleet coordinator) so the tests control every knob the soak bench
//! uses for determinism: hedging off, health demotion off, one startup
//! probe per replica.

use exareq::apps::{all_apps_extended, run_survey_parallel, AppGrid, RetryPolicy};
use exareq::chaos::{ChaosPlan, ChaosProxy, FaultClass};
use exareq::codesign::catalog;
use exareq::core::cancel::{CancelReason, CancelToken};
use exareq::fleet::{run_fleet, FleetConfig};
use exareq::router::{HashRing, ProxyConfig, RouterConfig};
use exareq::serve::registry::Fitter;
use exareq::serve::{api, artifact, ModelRegistry, ServeConfig};
use exareq::sim::FaultPlan;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const SEED: u64 = 42;

/// Writes the published Table II catalog into a fresh model dir as
/// requirements artifacts (no fitting needed — offline and fast).
fn model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exareq_chaos_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    dir
}

/// One in-process serve engine and the token that stops it.
struct Replica {
    addr: SocketAddr,
    cancel: CancelToken,
    thread: std::thread::JoinHandle<exareq::serve::ServeSummary>,
}

fn start_replica(dir: &Path, allow_measure: bool) -> Replica {
    let no_fit: Box<Fitter> = Box::new(|_| Err("tests serve fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 4,
        queue_depth: 64,
        request_deadline: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(2),
        model_dir: dir.to_path_buf(),
        allow_measure,
        keep_alive_requests: 1000,
        idle_deadline: Duration::from_secs(5),
        refresh: Default::default(),
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let thread = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq::serve::serve(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("replica engine runs")
        })
    };
    let addr = rx.recv().expect("replica ready");
    Replica {
        addr,
        cancel,
        thread,
    }
}

fn stop_replica(replica: Replica) {
    replica.cancel.cancel(CancelReason::Interrupt);
    let _ = replica.thread.join();
}

/// An in-process router over the given replica (proxy) addresses, tuned
/// exactly like the soak bench: hedging off, health demotion off, one
/// startup probe per replica, breaker trial re-admitted immediately.
struct Router {
    addr: SocketAddr,
    cancel: CancelToken,
    thread: std::thread::JoinHandle<exareq::router::RouterSummary>,
}

fn start_router(dir: &Path, replicas: Vec<String>, attempt_deadline: Duration) -> Router {
    let mut proxy_cfg = ProxyConfig {
        request_deadline: Duration::from_secs(8),
        attempt_deadline,
        hedge_after: Duration::from_secs(30),
        backoff_base: Duration::from_millis(5),
        breaker_cooldown: Duration::from_millis(1),
        ..ProxyConfig::default()
    };
    proxy_cfg.health.probe_interval = Duration::from_secs(3600);
    proxy_cfg.health.suspect_after = 1_000_000;
    proxy_cfg.health.dead_after = 1_000_000;
    let cfg = RouterConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 2,
        queue_depth: 64,
        replicas,
        model_dir: dir.to_path_buf(),
        drain_deadline: Duration::from_secs(5),
        proxy: proxy_cfg,
    };
    let no_fit: Box<Fitter> = Box::new(|_| Err("tests serve fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let thread = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq::router::route(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("router engine runs")
        })
    };
    let addr = rx.recv().expect("router ready");
    // Let the startup probes claim connection 0 on each proxy before
    // the request sequence starts claiming indices.
    std::thread::sleep(Duration::from_millis(300));
    Router {
        addr,
        cancel,
        thread,
    }
}

fn stop_router(router: Router) {
    router.cancel.cancel(CancelReason::Interrupt);
    let _ = router.thread.join();
}

/// One raw HTTP/1.1 exchange; returns `(status, body)`.
fn http(addr: SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8(raw[..head_end].to_vec()).expect("ASCII head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status in status line");
    (status, raw[head_end + 4..].to_vec())
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, Vec<u8>) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The router's `/metrics` exposition as text.
fn metrics_text(addr: SocketAddr) -> String {
    let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "metrics scrape");
    String::from_utf8(body).expect("UTF-8 metrics")
}

/// Reads one unlabelled counter from an exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
}

/// Reads one sample of a labelled counter family (exact-prefix match).
fn labelled_metric(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("labelled metric {prefix} missing in:\n{text}"))
}

/// A faulted proxy + clean proxy pair in front of two replicas, with
/// the faulted proxy guaranteed to be the ring primary for `Kripke`.
///
/// Proxy listen ports are ephemeral and the ring is a pure function of
/// the address list, so the pair is re-drawn (cheap: two listener
/// threads each) until the ring places the faulted proxy first. Each
/// draw succeeds with probability ~1/2; 64 draws make failure
/// astronomically unlikely.
struct ChaosPair {
    faulted: ChaosProxy,
    clean: ChaosProxy,
    addrs: Vec<String>,
}

fn chaos_primary_pair(
    faulted_upstream: SocketAddr,
    clean_upstream: SocketAddr,
    plan: ChaosPlan,
    cancel: &CancelToken,
) -> ChaosPair {
    for _ in 0..64 {
        let faulted = ChaosProxy::start(
            "127.0.0.1:0",
            &faulted_upstream.to_string(),
            plan.clone(),
            cancel,
        )
        .expect("faulted proxy starts");
        let clean = ChaosProxy::start(
            "127.0.0.1:0",
            &clean_upstream.to_string(),
            ChaosPlan::with_seed(SEED),
            cancel,
        )
        .expect("clean proxy starts");
        let addrs = vec![faulted.addr().to_string(), clean.addr().to_string()];
        let ring = HashRing::new(&addrs);
        if ring.ordered("Kripke").first() == Some(&0) {
            return ChaosPair {
                faulted,
                clean,
                addrs,
            };
        }
        // Wrong primary: drop the pair (their idle listener threads
        // wind down when the shared token is cancelled at test end)
        // and draw fresh ephemeral ports.
        drop(faulted);
        drop(clean);
    }
    panic!("64 ephemeral-port draws never made the faulted proxy primary");
}

#[test]
fn same_seed_replays_the_same_fault_schedule() {
    let spec = "seed=7,reset=0.4,latency=0.3@25,corrupt=0.2@4,drip_ms=10";
    let a = ChaosPlan::parse(spec).expect("spec parses");
    let b = ChaosPlan::parse(spec).expect("spec parses");
    assert_eq!(
        a.schedule(512),
        b.schedule(512),
        "one spec, one schedule — the replay contract"
    );
    // Per-connection decisions are pure in (seed, conn): recomputing an
    // arbitrary decision matches the schedule entry.
    let schedule = a.schedule(512);
    for conn in [0u64, 1, 17, 511] {
        assert_eq!(a.decision(conn), schedule[conn as usize]);
    }
    // A different seed must not replay the same schedule.
    let other = ChaosPlan::parse("seed=8,reset=0.4,latency=0.3@25,corrupt=0.2@4,drip_ms=10")
        .expect("spec parses");
    assert_ne!(a.schedule(512), other.schedule(512));
}

#[test]
fn router_turns_reset_chaos_into_byte_identical_failover() {
    let dir = model_dir("reset");
    let replica_a = start_replica(&dir, false);
    let replica_b = start_replica(&dir, false);
    let chaos_cancel = CancelToken::new();
    // Every connection through the faulted proxy — startup probe and
    // forwarded request alike — is answered with a mid-stream reset.
    let pair = chaos_primary_pair(
        replica_a.addr,
        replica_b.addr,
        ChaosPlan::with_seed(SEED).reset(1.0),
        &chaos_cancel,
    );
    let router = start_router(&dir, pair.addrs.clone(), Duration::from_secs(2));

    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);
    let (status, body) = post(
        router.addr,
        "/predict",
        r#"{"model":"Kripke","p":1e6,"n":4096}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        expected.as_bytes(),
        "the failover answer must be byte-identical to the direct call"
    );

    let text = metrics_text(router.addr);
    assert!(
        metric(&text, "router_failover_total") >= 1.0,
        "the reset primary must cost at least one failover:\n{text}"
    );
    assert_eq!(
        metric(&text, "router_degraded_total"),
        0.0,
        "a healthy secondary means the local fallback must stay cold"
    );
    // The typed error surfaces per-replica in the exposition.
    let last_error_line = format!("router_upstream_last_error{{replica=\"{}\"", pair.addrs[0]);
    assert!(
        text.contains(&last_error_line),
        "missing {last_error_line} in:\n{text}"
    );

    // The proxy counted what it did, under the stable Prometheus name.
    assert!(pair.faulted.metrics().injected(FaultClass::Reset) >= 1);
    let chaos_text = pair.faulted.metrics().render();
    assert!(
        chaos_text.contains("chaos_faults_injected_total{class=\"reset\"}"),
        "chaos exposition missing reset class:\n{chaos_text}"
    );

    stop_router(router);
    chaos_cancel.cancel(CancelReason::Interrupt);
    pair.faulted.join();
    pair.clean.join();
    stop_replica(replica_a);
    stop_replica(replica_b);
}

#[test]
fn black_hole_partition_surfaces_as_a_read_phase_timeout() {
    let dir = model_dir("partition");
    let replica_a = start_replica(&dir, false);
    let replica_b = start_replica(&dir, false);
    let chaos_cancel = CancelToken::new();
    let pair = chaos_primary_pair(
        replica_a.addr,
        replica_b.addr,
        ChaosPlan::with_seed(SEED).partition(1.0),
        &chaos_cancel,
    );
    // A short attempt deadline keeps the black-holed attempt cheap.
    let router = start_router(&dir, pair.addrs.clone(), Duration::from_millis(500));

    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);
    let (status, body) = post(
        router.addr,
        "/predict",
        r#"{"model":"Kripke","p":1e6,"n":4096}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(body, expected.as_bytes());

    let text = metrics_text(router.addr);
    // The black hole swallowed a fully-written request: the budget died
    // waiting for bytes, so the timeout must be attributed to the read
    // phase — that attribution is what distinguishes a partitioned
    // upstream from an unreachable or wedged-accept one.
    assert!(
        labelled_metric(&text, "net_request_phase_timeouts_total{phase=\"read\"}") >= 1.0,
        "expected a read-phase timeout in:\n{text}"
    );
    assert!(metric(&text, "router_failover_total") >= 1.0);
    assert_eq!(metric(&text, "router_degraded_total"), 0.0);
    assert!(pair.faulted.metrics().injected(FaultClass::Partition) >= 1);

    stop_router(router);
    chaos_cancel.cancel(CancelReason::Interrupt);
    pair.faulted.join();
    pair.clean.join();
    stop_replica(replica_a);
    stop_replica(replica_b);
}

#[test]
fn corrupted_payload_never_commits_a_divergent_200() {
    let dir = model_dir("corrupt");
    let replica_a = start_replica(&dir, false);
    let replica_b = start_replica(&dir, false);
    let chaos_cancel = CancelToken::new();
    // Every response through the faulted proxy has bytes flipped. The
    // router's digest check must reject every one of them: the only 200
    // the client can ever see is the clean secondary's.
    let pair = chaos_primary_pair(
        replica_a.addr,
        replica_b.addr,
        ChaosPlan::with_seed(SEED).corrupt(1.0, 6),
        &chaos_cancel,
    );
    let router = start_router(&dir, pair.addrs.clone(), Duration::from_secs(2));

    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);
    for _ in 0..4 {
        let (status, body) = post(
            router.addr,
            "/predict",
            r#"{"model":"Kripke","p":1e6,"n":4096}"#,
        );
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert_eq!(
            body,
            expected.as_bytes(),
            "a corrupted stream must never be committed as a 200 body"
        );
    }

    let text = metrics_text(router.addr);
    assert!(metric(&text, "router_failover_total") >= 1.0);
    assert_eq!(metric(&text, "router_degraded_total"), 0.0);
    assert!(pair.faulted.metrics().injected(FaultClass::Corrupt) >= 1);

    stop_router(router);
    chaos_cancel.cancel(CancelReason::Interrupt);
    pair.faulted.join();
    pair.clean.join();
    stop_replica(replica_a);
    stop_replica(replica_b);
}

#[test]
fn fleet_redispatches_around_chaos_and_merges_byte_identically() {
    let fault_spec = "seed=7,drop=0.01";
    let faults = FaultPlan::parse(fault_spec).expect("fault spec");
    let grid = AppGrid {
        p_values: vec![2, 4],
        n_values: vec![64, 256],
    };
    let retry = RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    };
    let apps = all_apps_extended();
    let app = apps
        .iter()
        .find(|a| a.name() == "Relearn")
        .expect("Relearn twin");

    let baseline = run_survey_parallel(
        app.as_ref(),
        &grid,
        &faults,
        &retry,
        None,
        &CancelToken::new(),
        1,
    )
    .expect("sequential baseline");
    let baseline_json = baseline.try_to_json().expect("baseline JSON");

    let dir = model_dir("fleet");
    let chaos_cancel = CancelToken::new();
    let workers: Vec<Replica> = (0..2).map(|_| start_replica(&dir, true)).collect();
    // Worker 0 sits behind an always-reset proxy: its first dispatch
    // must fail, be requeued, and land on the clean worker.
    let proxy = ChaosProxy::start(
        "127.0.0.1:0",
        &workers[0].addr.to_string(),
        ChaosPlan::with_seed(SEED).reset(1.0),
        &chaos_cancel,
    )
    .expect("chaos proxy starts");

    let cfg = FleetConfig {
        workers: vec![proxy.addr().to_string(), workers[1].addr.to_string()],
        shard_size: 1,
        shard_deadline: Duration::from_secs(10),
        jitter_seed: SEED,
        ..FleetConfig::default()
    };
    let (survey, report) = run_fleet(
        app.as_ref(),
        &grid,
        &faults,
        fault_spec,
        &retry,
        None,
        &CancelToken::new(),
        &cfg,
    )
    .expect("fleet run");
    let fleet_json = survey.try_to_json().expect("fleet JSON");

    assert_eq!(
        fleet_json, baseline_json,
        "the merged fleet artifact must be byte-identical to the sequential survey"
    );
    assert!(
        !report.fallback,
        "a single chaos-fronted worker must not push the fleet into local fallback"
    );
    assert!(
        report.redispatches >= 1,
        "the reset worker's shard must be redispatched at least once"
    );
    assert!(proxy.metrics().injected(FaultClass::Reset) >= 1);

    chaos_cancel.cancel(CancelReason::Interrupt);
    proxy.join();
    for worker in workers {
        stop_replica(worker);
    }
}
