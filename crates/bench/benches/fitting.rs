//! Performance of the model generator (P1): single-parameter search over
//! the full paper exponent space, and the two-parameter compound search on
//! a full measurement grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exareq_core::baseline::fit_baseline;
use exareq_core::fit::{fit_single, FitConfig};
use exareq_core::measurement::Experiment;
use exareq_core::multiparam::{fit_multi, MultiParamConfig};
use std::hint::black_box;

fn one_param_exp(points: usize) -> Experiment {
    let xs: Vec<f64> = (1..=points).map(|i| 2.0f64.powi(i as i32)).collect();
    Experiment::from_fn(vec!["x"], &[&xs], |c| {
        1e5 * c[0] * c[0].log2() + 250.0 * c[0].powf(1.5)
    })
}

fn two_param_exp() -> Experiment {
    Experiment::from_fn(
        vec!["p", "n"],
        &[
            &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            &[64.0, 256.0, 1024.0, 4096.0, 16384.0],
        ],
        |c| 1e5 * c[1] * c[1].log2() * c[0].powf(0.25) * c[0].log2(),
    )
}

fn bench_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_single");
    for points in [5usize, 7, 10] {
        let exp = one_param_exp(points);
        let cfg = FitConfig::default();
        g.bench_with_input(BenchmarkId::new("paper_space", points), &exp, |b, e| {
            b.iter(|| fit_single(black_box(e), &cfg).unwrap());
        });
    }
    let exp = one_param_exp(7);
    let coarse = FitConfig::coarse();
    g.bench_function("coarse_space_7pts", |b| {
        b.iter(|| fit_single(black_box(&exp), &coarse).unwrap());
    });
    g.bench_function("carrington_baseline_7pts", |b| {
        b.iter(|| fit_baseline(black_box(&exp)).unwrap());
    });
    g.finish();
}

fn bench_multi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_multi");
    g.sample_size(20);
    let exp = two_param_exp();
    let cfg = MultiParamConfig::default();
    g.bench_function("paper_space_35pt_grid", |b| {
        b.iter(|| fit_multi(black_box(&exp), &cfg).unwrap());
    });
    let coarse = MultiParamConfig::coarse();
    g.bench_function("coarse_space_35pt_grid", |b| {
        b.iter(|| fit_multi(black_box(&exp), &coarse).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_single, bench_multi);
criterion_main!(benches);
