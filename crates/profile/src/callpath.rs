//! Call-path profiling (the Score-P substitute).
//!
//! Metrics are attributed to the call path active when they occur, so
//! bottlenecks can be "precisely attributed to individual program
//! locations" (Section II-B). Kernels bracket phases with
//! [`CallPathProfiler::enter`] / [`CallPathProfiler::exit`] and report
//! metric deltas through the same profiler.

use crate::counters::Counters;
use serde::{Deserialize, Serialize};

/// Identifier of a node in the call tree.
pub type NodeId = usize;

/// One call-tree node with *exclusive* metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallNode {
    /// Region name (one path segment).
    pub name: String,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children in creation order.
    pub children: Vec<NodeId>,
    /// Counters attributed exclusively to this node.
    pub counters: Counters,
    /// Communication bytes (sent + received) attributed exclusively here.
    pub comm_bytes: u64,
    /// Number of times the region was entered.
    pub visits: u64,
}

/// Call-path profiler for one process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallPathProfiler {
    nodes: Vec<CallNode>,
    stack: Vec<NodeId>,
}

impl Default for CallPathProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl CallPathProfiler {
    /// Creates a profiler with a root region `main`.
    pub fn new() -> Self {
        CallPathProfiler {
            nodes: vec![CallNode {
                name: "main".to_string(),
                parent: None,
                children: Vec::new(),
                counters: Counters::default(),
                comm_bytes: 0,
                visits: 1,
            }],
            stack: vec![0],
        }
    }

    /// Enters a child region of the current region (created on first visit).
    pub fn enter(&mut self, name: &str) {
        let cur = *self.stack.last().expect("root never popped");
        let child = self.nodes[cur]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let id = match child {
            Some(id) => id,
            None => {
                let id = self.nodes.len();
                self.nodes.push(CallNode {
                    name: name.to_string(),
                    parent: Some(cur),
                    children: Vec::new(),
                    counters: Counters::default(),
                    comm_bytes: 0,
                    visits: 0,
                });
                self.nodes[cur].children.push(id);
                id
            }
        };
        self.nodes[id].visits += 1;
        self.stack.push(id);
    }

    /// Exits the current region.
    ///
    /// # Panics
    /// Panics on exit from the root (unbalanced enter/exit).
    pub fn exit(&mut self) {
        assert!(self.stack.len() > 1, "exit without matching enter");
        self.stack.pop();
    }

    /// Runs `f` inside region `name` (exception-safe on panic-free code).
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.enter(name);
        let out = f(self);
        self.exit();
        out
    }

    /// Mutable counters of the current region.
    pub fn counters(&mut self) -> &mut Counters {
        let cur = *self.stack.last().expect("root");
        &mut self.nodes[cur].counters
    }

    /// Attributes communication bytes to the current region.
    pub fn add_comm_bytes(&mut self, bytes: u64) {
        let cur = *self.stack.last().expect("root");
        self.nodes[cur].comm_bytes += bytes;
    }

    /// The `/`-joined path of the current region.
    pub fn current_path(&self) -> String {
        let cur = *self.stack.last().expect("root");
        self.path_of(cur)
    }

    /// The `/`-joined path of a node.
    pub fn path_of(&self, mut id: NodeId) -> String {
        let mut segs = vec![self.nodes[id].name.clone()];
        while let Some(p) = self.nodes[id].parent {
            segs.push(self.nodes[p].name.clone());
            id = p;
        }
        segs.reverse();
        segs.join("/")
    }

    /// All nodes (root first, creation order).
    pub fn nodes(&self) -> &[CallNode] {
        &self.nodes
    }

    /// Inclusive counters of a node (its subtree summed).
    pub fn inclusive(&self, id: NodeId) -> (Counters, u64) {
        let mut c = self.nodes[id].counters;
        let mut comm = self.nodes[id].comm_bytes;
        for &child in &self.nodes[id].children {
            let (cc, ccomm) = self.inclusive(child);
            c = c.merged(&cc);
            comm += ccomm;
        }
        (c, comm)
    }

    /// Whole-program totals (inclusive counters of the root).
    pub fn totals(&self) -> (Counters, u64) {
        self.inclusive(0)
    }

    /// Flat per-path view: `(path, exclusive counters, comm bytes, visits)`
    /// sorted by descending FLOP count — a Score-P-style profile report.
    pub fn flat_profile(&self) -> Vec<(String, Counters, u64, u64)> {
        let mut rows: Vec<(String, Counters, u64, u64)> = (0..self.nodes.len())
            .map(|id| {
                (
                    self.path_of(id),
                    self.nodes[id].counters,
                    self.nodes[id].comm_bytes,
                    self.nodes[id].visits,
                )
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.flops));
        rows
    }

    /// The call path with the largest exclusive value of a projection —
    /// "which program location dominates this requirement".
    pub fn hottest_by(&self, f: impl Fn(&CallNode) -> u64) -> Option<String> {
        (0..self.nodes.len())
            .max_by_key(|&id| f(&self.nodes[id]))
            .map(|id| self.path_of(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_to_current_region() {
        let mut p = CallPathProfiler::new();
        p.counters().add_flops(5); // main
        p.enter("solve");
        p.counters().add_flops(100);
        p.enter("kernel");
        p.counters().add_flops(1000);
        p.add_comm_bytes(64);
        p.exit();
        p.exit();
        let flat = p.flat_profile();
        let find = |path: &str| flat.iter().find(|r| r.0 == path).unwrap();
        assert_eq!(find("main").1.flops, 5);
        assert_eq!(find("main/solve").1.flops, 100);
        assert_eq!(find("main/solve/kernel").1.flops, 1000);
        assert_eq!(find("main/solve/kernel").2, 64);
    }

    #[test]
    fn inclusive_sums_subtree() {
        let mut p = CallPathProfiler::new();
        p.counters().add_flops(1);
        p.enter("a");
        p.counters().add_flops(10);
        p.enter("b");
        p.counters().add_flops(100);
        p.exit();
        p.exit();
        let (totals, _) = p.totals();
        assert_eq!(totals.flops, 111);
        // Inclusive of "a" = 110.
        let a_id = p.nodes().iter().position(|n| n.name == "a").unwrap();
        assert_eq!(p.inclusive(a_id).0.flops, 110);
    }

    #[test]
    fn revisits_reuse_node() {
        let mut p = CallPathProfiler::new();
        for _ in 0..3 {
            p.enter("iter");
            p.counters().add_loads(2);
            p.exit();
        }
        let node = p.nodes().iter().find(|n| n.name == "iter").unwrap();
        assert_eq!(node.visits, 3);
        assert_eq!(node.counters.loads, 6);
        // One node, not three.
        assert_eq!(p.nodes().iter().filter(|n| n.name == "iter").count(), 1);
    }

    #[test]
    fn same_name_different_parents_are_distinct() {
        let mut p = CallPathProfiler::new();
        p.enter("phase1");
        p.enter("kernel");
        p.counters().add_flops(1);
        p.exit();
        p.exit();
        p.enter("phase2");
        p.enter("kernel");
        p.counters().add_flops(2);
        p.exit();
        p.exit();
        let flat = p.flat_profile();
        let k1 = flat.iter().find(|r| r.0 == "main/phase1/kernel").unwrap();
        let k2 = flat.iter().find(|r| r.0 == "main/phase2/kernel").unwrap();
        assert_eq!(k1.1.flops, 1);
        assert_eq!(k2.1.flops, 2);
    }

    #[test]
    fn scoped_helper_balances() {
        let mut p = CallPathProfiler::new();
        let out = p.scoped("work", |p| {
            p.counters().add_stores(9);
            "value"
        });
        assert_eq!(out, "value");
        assert_eq!(p.current_path(), "main");
    }

    #[test]
    fn hottest_by_comm() {
        let mut p = CallPathProfiler::new();
        p.enter("exchange");
        p.add_comm_bytes(500);
        p.exit();
        p.enter("reduce");
        p.add_comm_bytes(100);
        p.exit();
        assert_eq!(p.hottest_by(|n| n.comm_bytes).unwrap(), "main/exchange");
    }

    #[test]
    #[should_panic(expected = "exit without matching enter")]
    fn unbalanced_exit_panics() {
        let mut p = CallPathProfiler::new();
        p.exit();
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = CallPathProfiler::new();
        p.enter("x");
        p.counters().add_flops(3);
        p.exit();
        let s = serde_json::to_string(&p).unwrap();
        let back: CallPathProfiler = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
