//! The per-rank communicator handle: point-to-point messaging with
//! selective receive, byte accounting, and fault injection.
//!
//! Communication failures are *diagnosable*: instead of a bare
//! `expect("peer rank hung up")`, a receive that can never complete
//! raises a [`CommError`] naming the waiting rank, the peer, and the tag.
//! Inside a supervised run the error unwinds as a typed [`RankAbort`]
//! payload that the runner catches and turns into a per-rank status;
//! under the compatibility `run_ranks` entry point it surfaces as a
//! panic whose message is the formatted error.

use crate::fault::{FaultState, FaultStats};
use crate::runner::{PendingMsg, RankState, Supervision};
use crate::stats::{CommStats, OpClass};
use bytes::Bytes;
use exareq_core::cancel::CancelReason;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// A message in flight: source rank, user tag, payload.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub src: usize,
    pub tag: u64,
    pub data: Bytes,
}

/// Control traffic interleaved with data on each rank's single channel.
///
/// Channels are FIFO per sender, so a `PeerDone`/`PeerFailed` from rank
/// `r` is guaranteed to arrive *after* every data message `r` sent —
/// which makes "peer finished without the send I'm waiting for" a
/// deterministic verdict, not a race.
#[derive(Debug, Clone)]
pub(crate) enum Ctl {
    /// The named rank finished its body cleanly; no more data will come.
    PeerDone { rank: usize },
    /// The named rank failed (panic or injected crash).
    PeerFailed { rank: usize, why: String },
    /// The supervisor is tearing the run down (watchdog fired).
    Abort { why: String },
    /// The run's cancellation token fired; every rank should wind down
    /// with a structured `Cancelled` status at its next chokepoint.
    Cancel { reason: CancelReason },
}

/// What actually travels on a rank's channel.
#[derive(Debug, Clone)]
pub(crate) enum Envelope {
    Data(Msg),
    Ctl(Ctl),
}

/// Why a peer can no longer satisfy a receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerReason {
    /// The peer finished its body without sending the awaited message.
    Completed,
    /// The peer failed; the string carries its failure description.
    Failed(String),
}

/// A diagnosable communication failure, naming every party involved.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A receive can never complete: the peer is done or dead and no
    /// matching message is queued or parked.
    PeerUnavailable {
        /// The rank that was blocked in `recv`.
        rank: usize,
        /// The peer it was waiting on.
        peer: usize,
        /// The tag it was waiting for.
        tag: u64,
        /// Why the peer cannot deliver.
        reason: PeerReason,
    },
    /// The rank's own channel infrastructure was torn down mid-receive.
    /// Defensive: the supervisor keeps receivers alive, so this indicates
    /// a runner bug rather than an application one.
    Disconnected {
        /// The rank whose channel died.
        rank: usize,
        /// The peer it was waiting on.
        peer: usize,
        /// The tag it was waiting for.
        tag: u64,
    },
    /// The supervisor aborted the run (e.g. the deadlock watchdog fired)
    /// while this rank was blocked.
    Aborted {
        /// The rank that was told to stop.
        rank: usize,
        /// The supervisor's explanation.
        why: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerUnavailable {
                rank,
                peer,
                tag,
                reason,
            } => match reason {
                PeerReason::Completed => write!(
                    f,
                    "rank {rank}: receive from peer {peer} (tag {tag}) can never \
                     complete: peer {peer} finished without a matching send"
                ),
                PeerReason::Failed(why) => write!(
                    f,
                    "rank {rank}: receive from peer {peer} (tag {tag}) can never \
                     complete: peer {peer} failed: {why}"
                ),
            },
            CommError::Disconnected { rank, peer, tag } => write!(
                f,
                "rank {rank}: channel torn down while receiving from peer {peer} (tag {tag})"
            ),
            CommError::Aborted { rank, why } => {
                write!(f, "rank {rank}: aborted by supervisor: {why}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Typed panic payload used inside supervised runs so the runner can
/// distinguish injected crashes and communication aborts from genuine
/// application panics.
#[derive(Debug)]
pub(crate) enum RankAbort {
    /// A `FaultPlan` crash point fired on this rank at the given op.
    InjectedCrash { op: u64 },
    /// Communication became impossible (peer death cascade, watchdog).
    Comm(CommError),
    /// The run's cancellation token fired (observed at a chokepoint probe
    /// or via a supervisor [`Ctl::Cancel`] notice while blocked).
    Cancelled(CancelReason),
}

/// What this rank knows about each peer's liveness (learned from `Ctl`
/// messages; peers start `Alive`).
#[derive(Debug, Clone)]
enum PeerState {
    Alive,
    Done,
    Failed(String),
}

/// The communicator handle passed to each rank's body.
///
/// Functionally a tiny MPI: `send`/`recv` with tags and selective receive,
/// plus collectives (broadcast, all-reduce, all-gather, all-to-all,
/// barrier — implemented in the `collectives` module). Channels are unbounded,
/// so sends never block and classic exchange patterns cannot deadlock.
/// Under a supervised runner, genuine deadlocks are detected by a watchdog
/// and peer failures surface as diagnosable [`CommError`]s instead of hangs.
pub struct Rank {
    rank: usize,
    size: usize,
    pub(crate) txs: Vec<Sender<Envelope>>,
    pub(crate) rx: Receiver<Envelope>,
    /// Out-of-order messages parked until a matching `recv` is posted.
    pending: Vec<Msg>,
    /// Liveness of each peer as learned from control messages.
    peers: Vec<PeerState>,
    pub(crate) stats: CommStats,
    pub(crate) faults: FaultState,
    pub(crate) fault_stats: FaultStats,
    /// Shared supervision state (progress counter + per-rank run state).
    sup: Arc<Supervision>,
}

impl Rank {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        txs: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        faults: FaultState,
        sup: Arc<Supervision>,
    ) -> Self {
        Rank {
            rank,
            size,
            txs,
            rx,
            pending: Vec::new(),
            peers: vec![PeerState::Alive; size],
            stats: CommStats::default(),
            faults,
            fault_stats: FaultStats::default(),
            sup,
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Injected-fault statistics accumulated so far on this rank.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Sends `data` to `dst` with `tag`, attributed to the point-to-point
    /// class.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or equals this rank (self-sends are a
    /// bug in simulated codes, not a feature).
    pub fn send(&mut self, dst: usize, tag: u64, data: &[u8]) {
        self.send_class(OpClass::P2p, dst, tag, data);
    }

    /// Receives a message from `src` with `tag` (selective receive; blocks).
    ///
    /// # Panics
    /// Panics (with a [`CommError`] description naming rank, peer, and tag)
    /// if the receive can never complete because the peer finished or
    /// failed without sending a matching message.
    pub fn recv(&mut self, src: usize, tag: u64) -> Bytes {
        self.recv_class(OpClass::P2p, src, tag)
    }

    pub(crate) fn send_class(&mut self, class: OpClass, dst: usize, tag: u64, data: &[u8]) {
        // The borrowed API pays exactly one copy (slice → owned buffer),
        // as it always has; callers that already own their payload use
        // [`Rank::send_bytes_class`] and pay none.
        self.send_bytes_class(class, dst, tag, data.to_vec());
    }

    /// Owned-payload send: moves `data` into the message without copying.
    /// Fault corruption flips bytes in place on the owned buffer, so the
    /// whole path — clean or corrupt — allocates nothing beyond the buffer
    /// the caller already built. Byte accounting is identical to the
    /// borrowed path (recorded from the payload length before any fault
    /// decision).
    pub(crate) fn send_bytes_class(&mut self, class: OpClass, dst: usize, tag: u64, data: Vec<u8>) {
        assert!(
            dst < self.size,
            "rank {}: destination {dst} out of range",
            self.rank
        );
        assert_ne!(
            dst,
            self.rank,
            "rank {me}: self-send (src == dst == {me}) is not allowed",
            me = self.rank
        );
        self.tick_op();
        self.stats.record_send(class, data.len());

        let decision = self.faults.decide(dst, data.len());
        let mut bytes = data;
        if !decision.corrupt_at.is_empty() {
            for &pos in &decision.corrupt_at {
                bytes[pos] ^= 0xFF;
            }
            self.fault_stats.corrupted_msgs += 1;
            self.fault_stats.corrupted_bytes += decision.corrupt_at.len() as u64;
        }
        let msg = Msg {
            src: self.rank,
            tag,
            data: Bytes::from(bytes),
        };

        if decision.drop {
            self.fault_stats.dropped_msgs += 1;
            self.fault_stats.dropped_bytes += msg.data.len() as u64;
            return;
        }
        if decision.delay && self.faults.delayed[dst].is_none() {
            self.fault_stats.delayed_msgs += 1;
            self.faults.delayed[dst] = Some(msg);
            return;
        }
        self.dispatch(dst, msg, decision.dup);
        // A previously delayed message to this destination goes out now,
        // reordered behind the one we just sent.
        if let Some(parked) = self.faults.delayed[dst].take() {
            self.dispatch(dst, parked, false);
        }
    }

    fn dispatch(&mut self, dst: usize, msg: Msg, dup: bool) {
        if dup {
            self.fault_stats.duplicated_msgs += 1;
            self.fault_stats.duplicated_bytes += msg.data.len() as u64;
            self.send_envelope(dst, Envelope::Data(msg.clone()));
        }
        self.send_envelope(dst, Envelope::Data(msg));
    }

    fn send_envelope(&mut self, dst: usize, env: Envelope) {
        self.sup.progress.fetch_add(1, Ordering::Relaxed);
        if self.txs[dst].send(env).is_err() {
            // Normally unreachable: the supervisor keeps every receiver
            // alive until all rank threads exit. Counted, not fatal.
            self.fault_stats.undelivered_msgs += 1;
        }
    }

    pub(crate) fn recv_class(&mut self, class: OpClass, src: usize, tag: u64) -> Bytes {
        match self.try_recv_class(class, src, tag) {
            Ok(data) => data,
            Err(err) => std::panic::panic_any(RankAbort::Comm(err)),
        }
    }

    /// Fallible selective receive: blocks until a message from `src` with
    /// `tag` arrives, or returns a [`CommError`] once that becomes
    /// impossible (peer done/failed with nothing parked, channel torn
    /// down, or supervisor abort).
    pub(crate) fn try_recv_class(
        &mut self,
        class: OpClass,
        src: usize,
        tag: u64,
    ) -> Result<Bytes, CommError> {
        assert!(
            src < self.size,
            "rank {}: receive source {src} out of range",
            self.rank
        );
        self.tick_op();
        loop {
            // Check parked messages first.
            if let Some(pos) = self
                .pending
                .iter()
                .position(|m| m.src == src && m.tag == tag)
            {
                let m = self.pending.remove(pos);
                self.stats.record_recv(class, m.data.len());
                self.set_state(RankState::Running);
                return Ok(m.data);
            }
            // No parked match: if the peer can never send again, this
            // receive can never complete. (FIFO ordering guarantees all
            // its data arrived before its Done/Failed notice.)
            match &self.peers[src] {
                PeerState::Done => {
                    return Err(CommError::PeerUnavailable {
                        rank: self.rank,
                        peer: src,
                        tag,
                        reason: PeerReason::Completed,
                    })
                }
                PeerState::Failed(why) => {
                    return Err(CommError::PeerUnavailable {
                        rank: self.rank,
                        peer: src,
                        tag,
                        reason: PeerReason::Failed(why.clone()),
                    })
                }
                PeerState::Alive => {}
            }
            self.publish_blocked(src, tag);
            match self.rx.recv() {
                Ok(Envelope::Data(m)) => {
                    self.sup.progress.fetch_add(1, Ordering::Relaxed);
                    if m.src == src && m.tag == tag {
                        self.stats.record_recv(class, m.data.len());
                        self.set_state(RankState::Running);
                        return Ok(m.data);
                    }
                    self.pending.push(m);
                }
                Ok(Envelope::Ctl(Ctl::PeerDone { rank })) => {
                    self.sup.progress.fetch_add(1, Ordering::Relaxed);
                    if matches!(self.peers[rank], PeerState::Alive) {
                        self.peers[rank] = PeerState::Done;
                    }
                }
                Ok(Envelope::Ctl(Ctl::PeerFailed { rank, why })) => {
                    self.sup.progress.fetch_add(1, Ordering::Relaxed);
                    self.peers[rank] = PeerState::Failed(why);
                }
                Ok(Envelope::Ctl(Ctl::Abort { why })) => {
                    return Err(CommError::Aborted {
                        rank: self.rank,
                        why,
                    });
                }
                Ok(Envelope::Ctl(Ctl::Cancel { reason })) => {
                    // Cooperative preemption, not a failure: unwind with
                    // the typed payload so the runner reports a structured
                    // `Cancelled` status for this rank.
                    std::panic::panic_any(RankAbort::Cancelled(reason));
                }
                Err(_) => {
                    return Err(CommError::Disconnected {
                        rank: self.rank,
                        peer: src,
                        tag,
                    });
                }
            }
        }
    }

    /// Counts a communication op and fires the injected crash point if
    /// this op reaches it. Doubles as the rank-side cancellation probe:
    /// every communication chokepoint passes through here, so a cancelled
    /// token stops the rank at the next op. On the clean path (no token
    /// armed) the probe costs one branch; with a live token it is a single
    /// relaxed atomic load.
    fn tick_op(&mut self) {
        if let Some(op) = self.faults.tick_op() {
            self.fault_stats.injected_crashes += 1;
            self.set_state(RankState::Failed);
            std::panic::panic_any(RankAbort::InjectedCrash { op });
        }
        if let Some(token) = &self.sup.cancel {
            if let Err(c) = token.checkpoint() {
                std::panic::panic_any(RankAbort::Cancelled(c.reason));
            }
        }
    }

    fn set_state(&self, state: RankState) {
        *self.sup.states[self.rank].lock().expect("state lock") = state;
    }

    /// Records that this rank is about to block in a selective receive,
    /// including a snapshot of its parked queue for deadlock diagnosis.
    fn publish_blocked(&self, src: usize, tag: u64) {
        let pending = self
            .pending
            .iter()
            .map(|m| PendingMsg {
                src: m.src,
                tag: m.tag,
                bytes: m.data.len(),
            })
            .collect();
        self.set_state(RankState::Blocked { src, tag, pending });
    }

    /// Sends a control notice to every other rank.
    pub(crate) fn broadcast_ctl(&mut self, ctl: Ctl) {
        for dst in 0..self.size {
            if dst != self.rank {
                self.send_envelope(dst, Envelope::Ctl(ctl.clone()));
            }
        }
    }

    /// Releases any still-parked delayed messages (called by the runner
    /// when the body completes cleanly; a crashed rank's delayed messages
    /// stay lost, like real in-flight traffic on a dead node).
    pub(crate) fn flush_delayed(&mut self) {
        for dst in 0..self.size {
            if let Some(msg) = self.faults.delayed[dst].take() {
                self.send_envelope(dst, Envelope::Data(msg));
            }
        }
    }

    /// Publishes this rank's terminal run state (runner bookkeeping).
    pub(crate) fn publish_state(&self, state: RankState) {
        self.set_state(state);
    }

    /// Sends a slice of `f64`s (convenience wrapper over [`Rank::send`]).
    pub fn send_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) {
        self.send_bytes_class(OpClass::P2p, dst, tag, encode_f64s(data));
    }

    /// Receives a slice of `f64`s sent with [`Rank::send_f64s`].
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let raw = self.recv(src, tag);
        decode_f64s(&raw)
    }

    pub(crate) fn send_f64s_class(&mut self, class: OpClass, dst: usize, tag: u64, data: &[f64]) {
        self.send_bytes_class(class, dst, tag, encode_f64s(data));
    }

    pub(crate) fn recv_f64s_class(&mut self, class: OpClass, src: usize, tag: u64) -> Vec<f64> {
        let raw = self.recv_class(class, src, tag);
        decode_f64s(&raw)
    }
}

/// Encodes a slice of `f64`s as little-endian bytes in one exactly-sized
/// allocation (the old `flat_map().collect()` grew the vector by repeated
/// doubling *and* was copied a second time into the message; paired with
/// [`Rank::send_bytes_class`] the payload is now built once and moved).
pub(crate) fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(8 * data.len());
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

pub(crate) fn decode_f64s(raw: &[u8]) -> Vec<f64> {
    assert_eq!(raw.len() % 8, 0, "payload is not a whole number of f64s");
    raw.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_ranks;

    #[test]
    fn ring_pass_delivers_in_order() {
        let results = run_ranks(4, |r| {
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(next, 7, &[r.rank() as u8]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        for (rank, res) in results.iter().enumerate() {
            assert_eq!(res.value, (rank + 4 - 1) % 4);
        }
    }

    #[test]
    fn selective_receive_reorders() {
        // Rank 0 sends two tags; rank 1 receives them in the opposite order.
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, b"first");
                r.send(1, 2, b"second");
                (Vec::new(), Vec::new())
            } else {
                let b = r.recv(0, 2);
                let a = r.recv(0, 1);
                (a.to_vec(), b.to_vec())
            }
        });
        assert_eq!(results[1].value.0, b"first");
        assert_eq!(results[1].value.1, b"second");
    }

    #[test]
    fn byte_accounting_matches_traffic() {
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send(1, 0, &[0u8; 100]);
                let _ = r.recv(1, 1);
            } else {
                let _ = r.recv(0, 0);
                r.send(0, 1, &[0u8; 30]);
            }
        });
        assert_eq!(results[0].stats.total_sent(), 100);
        assert_eq!(results[0].stats.total_recv(), 30);
        assert_eq!(results[1].stats.total_sent(), 30);
        assert_eq!(results[1].stats.total_recv(), 100);
        assert_eq!(results[0].stats.messages_sent, 1);
    }

    #[test]
    fn f64_roundtrip() {
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send_f64s(1, 0, &[1.5, -2.25, 1e300]);
                Vec::new()
            } else {
                r.recv_f64s(0, 0)
            }
        });
        assert_eq!(results[1].value, vec![1.5, -2.25, 1e300]);
        // 3 doubles = 24 bytes
        assert_eq!(results[0].stats.total_sent(), 24);
    }

    #[test]
    fn encode_f64s_matches_reference_encoding_exactly_sized() {
        let data = [1.5f64, -2.25, 1e300, f64::MIN_POSITIVE, 0.0, -0.0];
        let reference: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let encoded = encode_f64s(&data);
        assert_eq!(encoded, reference);
        assert_eq!(encoded.capacity(), 8 * data.len(), "one exact allocation");
        assert_eq!(decode_f64s(&encoded), data.to_vec());
        assert!(encode_f64s(&[]).is_empty());
    }

    #[test]
    fn owned_send_path_accounts_bytes_like_borrowed() {
        // send_f64s now moves its buffer; the accounting must be what the
        // borrowed path records for the same traffic.
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send_f64s(1, 0, &[1.0, 2.0, 3.0, 4.0]);
                r.send(1, 1, &[7u8; 10]);
            } else {
                let _ = r.recv_f64s(0, 0);
                let _ = r.recv(0, 1);
            }
        });
        assert_eq!(results[0].stats.total_sent(), 32 + 10);
        assert_eq!(results[1].stats.total_recv(), 32 + 10);
        assert_eq!(results[0].stats.messages_sent, 2);
    }

    #[test]
    fn decode_rejects_ragged_payload() {
        let r = std::panic::catch_unwind(|| decode_f64s(&[0u8; 7]));
        assert!(r.is_err());
    }

    #[test]
    fn self_send_panic_names_the_sender() {
        let err = std::panic::catch_unwind(|| {
            run_ranks(3, |r| {
                if r.rank() == 2 {
                    let me = r.rank();
                    r.send(me, 0, b"oops");
                }
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("rank 2: self-send"),
            "panic message should name the sending rank: {msg}"
        );
    }

    #[test]
    fn recv_from_completed_peer_names_all_parties() {
        let err = std::panic::catch_unwind(|| {
            run_ranks(2, |r| {
                if r.rank() == 0 {
                    let _ = r.recv(1, 7); // rank 1 never sends
                }
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("rank 0"), "names the blocked rank: {msg}");
        assert!(msg.contains("peer 1"), "names the peer: {msg}");
        assert!(msg.contains("tag 7"), "names the tag: {msg}");
    }
}
