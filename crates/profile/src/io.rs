//! I/O requirement tracking (Section II-A extension).
//!
//! The paper: "I/O would be handled analogously to the network
//! communication requirement. None of our analyzed applications includes
//! significant I/O traffic, we therefore refrain from including I/O
//! metrics in this analysis." The metric is nevertheless part of the
//! method, so this reproduction makes it first-class: per-process bytes
//! read/written, attributed per I/O channel (checkpoint, input deck,
//! visualization dump, …) so models can be fitted per channel exactly
//! like per-collective communication.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-process I/O byte counters, split by named channel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IoTracker {
    channels: BTreeMap<String, IoBytes>,
}

/// Read/written counters of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoBytes {
    /// Bytes read from storage.
    pub read: u64,
    /// Bytes written to storage.
    pub written: u64,
}

impl IoBytes {
    /// Read + written.
    pub fn total(&self) -> u64 {
        self.read + self.written
    }
}

impl IoTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records bytes read on `channel`.
    pub fn read(&mut self, channel: &str, bytes: u64) {
        self.channels.entry(channel.to_string()).or_default().read += bytes;
    }

    /// Records bytes written on `channel`.
    pub fn write(&mut self, channel: &str, bytes: u64) {
        self.channels
            .entry(channel.to_string())
            .or_default()
            .written += bytes;
    }

    /// Counters of one channel (zero if never used).
    pub fn channel(&self, channel: &str) -> IoBytes {
        self.channels.get(channel).copied().unwrap_or_default()
    }

    /// All channels with their counters, sorted by name.
    pub fn channels(&self) -> impl Iterator<Item = (&str, IoBytes)> {
        self.channels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Total I/O bytes across all channels (the Table I-style "#Bytes
    /// read & written" metric).
    pub fn total(&self) -> u64 {
        self.channels.values().map(IoBytes::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_attribution() {
        let mut io = IoTracker::new();
        io.read("input", 1000);
        io.write("checkpoint", 4096);
        io.write("checkpoint", 4096);
        assert_eq!(io.channel("input").read, 1000);
        assert_eq!(io.channel("checkpoint").written, 8192);
        assert_eq!(io.channel("nonexistent").total(), 0);
        assert_eq!(io.total(), 9192);
    }

    #[test]
    fn channels_iterate_sorted() {
        let mut io = IoTracker::new();
        io.write("z-dump", 1);
        io.read("a-input", 2);
        let names: Vec<&str> = io.channels().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a-input", "z-dump"]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut io = IoTracker::new();
        io.write("ckpt", 7);
        let s = serde_json::to_string(&io).unwrap();
        let back: IoTracker = serde_json::from_str(&s).unwrap();
        assert_eq!(io, back);
    }
}
