//! Endpoint liveness with hysteresis: Healthy → Suspect → Dead → Healthy.
//!
//! "Worker" here is any peer whose liveness gates dispatch: a fleet
//! measurement worker or a query-serving replica behind the router. Both
//! signal sources — the background `/healthz` prober and dispatch
//! outcomes — feed one [`HealthTable`]. Transitions are driven by
//! *consecutive* counts so a single flake neither kills a worker nor
//! resurrects one:
//!
//! - `suspect_after` consecutive failures demote Healthy → Suspect
//!   (dispatch pauses, probing continues),
//! - `dead_after` consecutive failures demote to Dead (the worker's
//!   dispatcher exits; its queued shards are stolen by survivors),
//! - `recover_after` consecutive successes from Suspect *or* Dead
//!   promote back to Healthy — one lucky probe is not a recovery.
//!
//! Any success resets the failure streak and vice versa, so the state
//! machine is a pair of saturating counters, not a history buffer.

use std::sync::Mutex;
use std::time::Duration;

/// Liveness verdict for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Eligible for dispatch.
    Healthy,
    /// Failing recently; dispatch is paused, probing continues.
    Suspect,
    /// Written off; its dispatcher has exited.
    Dead,
}

impl WorkerState {
    /// Stable lowercase label, used as the Prometheus `state` label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerState::Healthy => "healthy",
            WorkerState::Suspect => "suspect",
            WorkerState::Dead => "dead",
        }
    }
}

/// Hysteresis thresholds and probe cadence.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Consecutive failures before Healthy demotes to Suspect.
    pub suspect_after: u32,
    /// Consecutive failures before demoting to Dead.
    pub dead_after: u32,
    /// Consecutive successes before Suspect/Dead promote to Healthy.
    pub recover_after: u32,
    /// Pause between `/healthz` probe rounds.
    pub probe_interval: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 1,
            dead_after: 3,
            recover_after: 2,
            probe_interval: Duration::from_millis(200),
        }
    }
}

/// Per-worker counters behind one lock each (probe thread and dispatcher
/// threads write concurrently, but never to the same worker hot enough
/// for sharding to matter).
#[derive(Debug)]
struct WorkerHealth {
    state: WorkerState,
    fails: u32,
    oks: u32,
}

/// Shared liveness table for a fleet of workers.
#[derive(Debug)]
pub struct HealthTable {
    policy: HealthPolicy,
    workers: Vec<Mutex<WorkerHealth>>,
    recoveries: Mutex<u64>,
}

impl HealthTable {
    /// All workers start Healthy: the first dispatch is the first probe.
    pub fn new(workers: usize, policy: HealthPolicy) -> Self {
        HealthTable {
            policy,
            workers: (0..workers)
                .map(|_| {
                    Mutex::new(WorkerHealth {
                        state: WorkerState::Healthy,
                        fails: 0,
                        oks: 0,
                    })
                })
                .collect(),
            recoveries: Mutex::new(0),
        }
    }

    /// Record a successful probe or dispatch; returns the new state.
    pub fn record_ok(&self, worker: usize) -> WorkerState {
        let mut w = self.lock(worker);
        w.fails = 0;
        w.oks = w.oks.saturating_add(1);
        if w.state != WorkerState::Healthy && w.oks >= self.policy.recover_after {
            w.state = WorkerState::Healthy;
            *self.recoveries.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        }
        w.state
    }

    /// Record a failed probe or dispatch; returns the new state.
    pub fn record_failure(&self, worker: usize) -> WorkerState {
        let mut w = self.lock(worker);
        w.oks = 0;
        w.fails = w.fails.saturating_add(1);
        if w.fails >= self.policy.dead_after {
            w.state = WorkerState::Dead;
        } else if w.fails >= self.policy.suspect_after && w.state == WorkerState::Healthy {
            w.state = WorkerState::Suspect;
        }
        w.state
    }

    /// Current verdict for one worker.
    pub fn state(&self, worker: usize) -> WorkerState {
        self.lock(worker).state
    }

    /// True when no worker is currently dispatchable — including the
    /// degenerate zero-worker fleet, where the coordinator is on its own
    /// from the first shard.
    pub fn all_dead(&self) -> bool {
        self.workers
            .iter()
            .all(|w| w.lock().unwrap_or_else(|e| e.into_inner()).state == WorkerState::Dead)
    }

    /// `[healthy, suspect, dead]` worker counts.
    pub fn counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for w in &self.workers {
            match w.lock().unwrap_or_else(|e| e.into_inner()).state {
                WorkerState::Healthy => counts[0] += 1,
                WorkerState::Suspect => counts[1] += 1,
                WorkerState::Dead => counts[2] += 1,
            }
        }
        counts
    }

    /// Total Suspect/Dead → Healthy promotions so far.
    pub fn recoveries(&self) -> u64 {
        *self.recoveries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of workers in the table.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True for the degenerate zero-worker fleet.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    fn lock(&self, worker: usize) -> std::sync::MutexGuard<'_, WorkerHealth> {
        self.workers[worker]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            suspect_after: 1,
            dead_after: 3,
            recover_after: 2,
            probe_interval: Duration::from_millis(10),
        }
    }

    #[test]
    fn failures_escalate_suspect_then_dead() {
        let t = HealthTable::new(1, policy());
        assert_eq!(t.state(0), WorkerState::Healthy);
        assert_eq!(t.record_failure(0), WorkerState::Suspect);
        assert_eq!(t.record_failure(0), WorkerState::Suspect);
        assert_eq!(t.record_failure(0), WorkerState::Dead);
        assert!(t.all_dead());
        assert_eq!(t.counts(), [0, 0, 1]);
    }

    #[test]
    fn one_ok_does_not_recover_but_two_do() {
        let t = HealthTable::new(1, policy());
        for _ in 0..3 {
            t.record_failure(0);
        }
        assert_eq!(t.record_ok(0), WorkerState::Dead, "hysteresis holds");
        assert_eq!(t.record_ok(0), WorkerState::Healthy);
        assert_eq!(t.recoveries(), 1);
        assert!(!t.all_dead());
    }

    #[test]
    fn a_failure_resets_the_recovery_streak() {
        let t = HealthTable::new(1, policy());
        t.record_failure(0);
        t.record_failure(0);
        t.record_failure(0);
        t.record_ok(0);
        t.record_failure(0); // streak broken
        assert_eq!(t.record_ok(0), WorkerState::Dead);
        assert_eq!(t.record_ok(0), WorkerState::Healthy);
    }

    #[test]
    fn zero_workers_is_all_dead() {
        let t = HealthTable::new(0, policy());
        assert!(t.all_dead());
        assert_eq!(t.counts(), [0, 0, 0]);
    }
}
