//! # exareq-codesign — the co-design methodology
//!
//! Implements Section II-E and the two co-design studies of Section III:
//! system skeletons, problem inflation (the *heroic run* objective),
//! relative-upgrade analysis (Tables III–V), absolute straw-man mapping
//! (Tables VI–VII), bottleneck warnings (the ⚠ of Table II), and text
//! renderers matching the paper's table layouts.
//!
//! ```
//! use exareq_codesign::{catalog, skeleton::{SystemSkeleton, Upgrade},
//!                       workflow::analyze_upgrade};
//!
//! let lulesh = catalog::lulesh();
//! let base = SystemSkeleton::reference_large();
//! let out = analyze_upgrade(&lulesh, &base, &Upgrade::DOUBLE_RACKS).unwrap();
//! // Table IV: doubling the racks doubles LULESH's overall problem …
//! assert!((out.ratio_overall - 2.0).abs() < 1e-6);
//! // … at ~20% extra computation per process.
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod crossover;
pub mod inflate;
pub mod network;
pub mod projection;
pub mod query;
pub mod report;
pub mod requirements;
pub mod sharing;
pub mod skeleton;
pub mod strawman;
pub mod workflow;

pub use crossover::{crossover, crossover_in, dominance_onset};
pub use inflate::{inflate_problem, Inflation};
pub use network::{analyze_with_network, default_network, NetworkOutcome, NetworkSpec};
pub use projection::{decade_schedule, render_outlook, scaling_outlook, OutlookRow};
pub use query::{upgrade_advice, UpgradeAdvice, UpgradeRow};
pub use requirements::{AppRequirements, RateMetric, Warning};
pub use sharing::{share_system, two_app_frontier, ShareOutcome, SharingError};
pub use skeleton::{SystemSkeleton, Upgrade};
pub use strawman::{analyze_strawmen, table_six, StrawMan, StrawManAnalysis, SystemOutcome};
pub use workflow::{analyze_upgrade, baseline_expectation, upgrade_score, UpgradeOutcome};
