//! Query parsing and response building for every endpoint — pure
//! functions, no sockets.
//!
//! Responses are rendered with the in-tree minijson writer, the same one
//! the direct library consumers use, so a daemon answer is **byte-identical**
//! to calling these functions in-process: `tests/serve.rs` and the
//! `serve_throughput` bench assert exactly that. Keep every response built
//! here; a handler that formats its own JSON breaks the mechanical
//! equivalence check.

use crate::artifact::{ArtifactQuality, MODEL_FIELDS};
use crate::registry::{CompiledApp, RegistrySnapshot};
use exareq_codesign::query::{upgrade_advice, UpgradeAdvice};
use exareq_codesign::{
    analyze_strawmen, share_system, table_six, AppRequirements, RateMetric, StrawManAnalysis,
    SystemSkeleton,
};
use exareq_profile::journal::JournalEntry;
use exareq_profile::minijson::{self, Json};

/// Upper bound for the `hold_ms` load-testing aid, milliseconds.
pub const MAX_HOLD_MS: u64 = 10_000;

/// Largest accepted `POST /measure` shard, configurations.
pub const MAX_SHARD_CONFIGS: usize = 4_096;

/// Largest accepted `POST /predict_batch` grid, points (mirrors
/// [`MAX_SHARD_CONFIGS`] — the same "one request stays bounded" rule).
pub const MAX_BATCH_POINTS: usize = 4_096;

/// Largest accepted per-shard deadline, milliseconds.
pub const MAX_SHARD_DEADLINE_MS: u64 = 600_000;

/// Largest accepted `max_attempts` per configuration.
pub const MAX_SHARD_ATTEMPTS: u32 = 100;

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

/// `{"error": reason}` — the body of every non-200 answer.
pub fn error_body(reason: &str) -> String {
    obj(vec![("error", Json::Str(reason.to_string()))]).to_line()
}

/// The `/healthz` body: liveness plus the engine numbers a fleet health
/// prober wants in one probe. `status` stays the first member so legacy
/// probes grepping for `"status":"ok"` keep working, and the answer is
/// still a plain 200.
pub fn health_body(queue_depth: usize, in_flight: u64, registry_generation: u64) -> String {
    obj(vec![
        ("status", Json::Str("ok".to_string())),
        ("queue_depth", Json::Num(queue_depth as f64)),
        ("in_flight", Json::Num(in_flight as f64)),
        ("registry_generation", Json::Num(registry_generation as f64)),
    ])
    .to_line()
}

/// The `/healthz` body during shutdown drain: same shape as
/// [`health_body`] with `status` first, but `"draining"` — and served
/// with a non-200 status — so a ring-routing prober moves traffic away
/// from a replica that is shutting down instead of eating connection
/// resets when the listener finally closes.
pub fn draining_health_body(
    queue_depth: usize,
    in_flight: u64,
    registry_generation: u64,
) -> String {
    obj(vec![
        ("status", Json::Str("draining".to_string())),
        ("queue_depth", Json::Num(queue_depth as f64)),
        ("in_flight", Json::Num(in_flight as f64)),
        ("registry_generation", Json::Num(registry_generation as f64)),
    ])
    .to_line()
}

/// A parsed `POST /predict` body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictQuery {
    /// Model (application) name to evaluate.
    pub model: String,
    /// Target process count.
    pub p: f64,
    /// Target problem size per process.
    pub n: f64,
    /// Optional load-testing aid: hold the worker for this many
    /// milliseconds before answering (capped at [`MAX_HOLD_MS`], still
    /// subject to the request deadline).
    pub hold_ms: u64,
}

fn parse_body(body: &str) -> Result<Json, String> {
    minijson::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))
}

fn required_model(v: &Json) -> Result<String, String> {
    v.get("model")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing string field \"model\"".to_string())
}

fn coordinate(v: &Json, key: &str) -> Result<f64, String> {
    let x = v
        .get(key)
        .and_then(Json::to_f64_lossless)
        .ok_or_else(|| format!("missing numeric field \"{key}\""))?;
    if !x.is_finite() || x < 1.0 {
        return Err(format!("\"{key}\" must be a finite number >= 1"));
    }
    Ok(x)
}

/// Parses a `POST /predict` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_predict(body: &str) -> Result<PredictQuery, String> {
    let v = parse_body(body)?;
    let hold_ms = match v.get("hold_ms") {
        None | Some(Json::Null) => 0,
        Some(j) => {
            let x = j
                .to_f64_lossless()
                .filter(|x| x.fract() == 0.0 && (0.0..=MAX_HOLD_MS as f64).contains(x))
                .ok_or_else(|| format!("\"hold_ms\" must be an integer in 0..={MAX_HOLD_MS}"))?;
            x as u64
        }
    };
    Ok(PredictQuery {
        model: required_model(&v)?,
        p: coordinate(&v, "p")?,
        n: coordinate(&v, "n")?,
        hold_ms,
    })
}

/// Builds one prediction value. Both [`predict_body`] and
/// [`predict_batch_body`] go through here so a batch line is structurally
/// byte-identical to the single answer — same member order, same writer.
fn predict_value(name: &str, p: f64, n: f64, requirements: [f64; 5]) -> Json {
    obj(vec![
        ("app", Json::Str(name.to_string())),
        ("p", Json::Num(p)),
        ("n", Json::Num(n)),
        (
            "requirements",
            obj(vec![
                ("bytes_used", Json::Num(requirements[0])),
                ("flops", Json::Num(requirements[1])),
                ("comm_bytes", Json::Num(requirements[2])),
                ("loads_stores", Json::Num(requirements[3])),
                ("stack_distance", Json::Num(requirements[4])),
            ]),
        ),
    ])
}

fn predict_line(name: &str, p: f64, n: f64, requirements: [f64; 5]) -> String {
    predict_value(name, p, n, requirements).to_line()
}

/// The `/predict` answer: every requirement model evaluated at `(p, n)`.
pub fn predict_body(app: &AppRequirements, p: f64, n: f64) -> String {
    let coords = [p, n];
    predict_line(
        &app.name,
        p,
        n,
        [
            app.bytes_used.eval(&coords),
            app.flops.eval(&coords),
            app.comm_bytes.eval(&coords),
            app.loads_stores.eval(&coords),
            app.stack_distance.eval(&coords),
        ],
    )
}

/// [`predict_body`] plus, when the served artifact carries a refresher
/// quality block, a trailing `"ci95_rel"` member with the per-metric 95%
/// relative confidence half-widths — `value · (1 ± ci95_rel)` brackets the
/// truth per the LOO residuals. With `quality: None` the output is
/// byte-identical to [`predict_body`].
pub fn predict_body_quality(
    app: &AppRequirements,
    quality: Option<&ArtifactQuality>,
    p: f64,
    n: f64,
) -> String {
    let coords = [p, n];
    let mut v = predict_value(
        &app.name,
        p,
        n,
        [
            app.bytes_used.eval(&coords),
            app.flops.eval(&coords),
            app.comm_bytes.eval(&coords),
            app.loads_stores.eval(&coords),
            app.stack_distance.eval(&coords),
        ],
    );
    if let (Json::Obj(members), Some(q)) = (&mut v, quality) {
        // Emit in artifact field order, not BTreeMap order, to mirror the
        // `requirements` member above.
        let ci: Vec<(String, Json)> = MODEL_FIELDS
            .iter()
            .filter_map(|field| {
                q.metrics
                    .get(*field)
                    .map(|m| ((*field).to_string(), Json::Num(m.ci95_rel)))
            })
            .collect();
        if !ci.is_empty() {
            members.push(("ci95_rel".to_string(), Json::Obj(ci)));
        }
    }
    v.to_line()
}

/// A parsed `POST /predict_batch` body.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQuery {
    /// Model (application) name to evaluate.
    pub model: String,
    /// The `(p, n)` grid, at most [`MAX_BATCH_POINTS`] entries.
    pub points: Vec<(f64, f64)>,
}

/// Parses a `POST /predict_batch` body:
/// `{"model": "...", "points": [[p, n], ...]}`.
///
/// # Errors
/// A one-line reason suitable for a 400 body. Every point obeys the same
/// "finite, >= 1" rule as the single `/predict` coordinates.
pub fn parse_predict_batch(body: &str) -> Result<BatchQuery, String> {
    let v = parse_body(body)?;
    let model = required_model(&v)?;
    let raw = v
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing array field \"points\"".to_string())?;
    if raw.is_empty() {
        return Err("\"points\" must not be empty".to_string());
    }
    if raw.len() > MAX_BATCH_POINTS {
        return Err(format!(
            "\"points\" has {} entries; the cap is {MAX_BATCH_POINTS}",
            raw.len()
        ));
    }
    let mut points = Vec::with_capacity(raw.len());
    for (idx, entry) in raw.iter().enumerate() {
        let pair = match entry.as_arr() {
            Some(pair) if pair.len() == 2 => pair,
            _ => return Err(format!("points[{idx}] must be a [p, n] pair")),
        };
        let coord = |j: &Json, key: &str| -> Result<f64, String> {
            let x = j
                .to_f64_lossless()
                .ok_or_else(|| format!("points[{idx}] {key} must be a number"))?;
            if !x.is_finite() || x < 1.0 {
                return Err(format!("points[{idx}] {key} must be a finite number >= 1"));
            }
            Ok(x)
        };
        points.push((coord(&pair[0], "p")?, coord(&pair[1], "n")?));
    }
    Ok(BatchQuery { model, points })
}

/// The `/predict_batch` answer: JSONL, one line per grid point, each line
/// byte-identical to the single [`predict_body`] for that point and
/// terminated by `\n`. Evaluation runs over the registry's compiled
/// flat-table models; bit-identity to the term-walking [`predict_body`]
/// path is the [`exareq_core::compiled`] contract.
pub fn predict_batch_body(app: &CompiledApp, points: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(points.len() * 192);
    for &(p, n) in points {
        let coords = [p, n];
        out.push_str(&predict_line(
            &app.name,
            p,
            n,
            [
                app.bytes_used.eval(&coords),
                app.flops.eval(&coords),
                app.comm_bytes.eval(&coords),
                app.loads_stores.eval(&coords),
                app.stack_distance.eval(&coords),
            ],
        ));
        out.push('\n');
    }
    out
}

/// A parsed `POST /upgrade` body.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeQuery {
    /// Model (application) name to advise.
    pub model: String,
    /// Optional co-tenant model name for a sharing analysis.
    pub share_with: Option<String>,
    /// Fraction of the system given to `model` when sharing (0, 1).
    pub fraction: f64,
}

/// Parses a `POST /upgrade` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_upgrade(body: &str) -> Result<UpgradeQuery, String> {
    let v = parse_body(body)?;
    let share_with = match v.get("share_with") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("\"share_with\" must be a string".to_string()),
    };
    let fraction = match v.get("fraction") {
        None | Some(Json::Null) => 0.5,
        Some(j) => j
            .to_f64_lossless()
            .filter(|f| f.is_finite() && *f > 0.0 && *f < 1.0)
            .ok_or_else(|| "\"fraction\" must be a number in (0, 1)".to_string())?,
    };
    if fraction != 0.5 && share_with.is_none() {
        return Err("\"fraction\" requires \"share_with\"".to_string());
    }
    Ok(UpgradeQuery {
        model: required_model(&v)?,
        share_with,
        fraction,
    })
}

fn rates_obj(rates: &[f64; 3]) -> Json {
    obj(vec![
        ("computation", Json::Num(rates[0])),
        ("communication", Json::Num(rates[1])),
        ("memory_access", Json::Num(rates[2])),
    ])
}

fn advice_json(advice: &UpgradeAdvice) -> Vec<(&'static str, Json)> {
    vec![
        (
            "upgrades",
            Json::Arr(
                advice
                    .rows
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("name", Json::Str(r.outcome.upgrade_name.clone())),
                            ("description", Json::Str(r.description.clone())),
                            ("ratio_n", Json::Num(r.outcome.ratio_n)),
                            ("ratio_overall", Json::Num(r.outcome.ratio_overall)),
                            ("rates", rates_obj(&r.outcome.ratio_rates)),
                            ("score", Json::Num(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "excluded",
            Json::Arr(
                advice
                    .excluded
                    .iter()
                    .map(|(name, reason)| {
                        obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("reason", Json::Str(reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "best",
            match &advice.best {
                Some(b) => Json::Str(b.clone()),
                None => Json::Null,
            },
        ),
        ("comm_crossover_p", opt_num(advice.comm_crossover_p)),
    ]
}

/// The `/upgrade` answer: ranked Table V outcomes on the reference system,
/// plus an optional sharing analysis with a co-tenant.
///
/// # Errors
/// A one-line reason (suitable for a 400 body) when the sharing analysis
/// itself fails — e.g. neither app fits the shared system.
pub fn upgrade_body(
    app: &AppRequirements,
    share: Option<(&AppRequirements, f64)>,
) -> Result<String, String> {
    let base = SystemSkeleton::reference_large();
    let advice = upgrade_advice(app, &base);
    let mut members = vec![
        ("app", Json::Str(app.name.clone())),
        (
            "base",
            obj(vec![
                ("processes", Json::Num(base.processes)),
                ("mem_per_process", Json::Num(base.mem_per_process)),
            ]),
        ),
    ];
    members.extend(advice_json(&advice));
    let sharing = match share {
        None => Json::Null,
        Some((other, fraction)) => {
            let outcomes = share_system(&[app, other], &[fraction, 1.0 - fraction], &base)
                .map_err(|e| e.to_string())?;
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("app", Json::Str(o.app.clone())),
                            ("fraction", Json::Num(o.fraction)),
                            ("processes", Json::Num(o.processes)),
                            ("n", Json::Num(o.n)),
                            ("overall_problem", Json::Num(o.overall_problem)),
                            ("rates", rates_obj(&o.rates)),
                        ])
                    })
                    .collect(),
            )
        }
    };
    members.push(("sharing", sharing));
    Ok(obj(members).to_line())
}

/// Parses a `POST /strawman` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_strawman(body: &str) -> Result<String, String> {
    required_model(&parse_body(body)?)
}

/// The `/strawman` answer: the Table VII verdict over [`table_six`].
pub fn strawman_body(app: &AppRequirements) -> String {
    match analyze_strawmen(app, &table_six()) {
        StrawManAnalysis::Fits {
            app,
            benchmark_overall,
            outcomes,
        } => obj(vec![
            ("app", Json::Str(app)),
            ("verdict", Json::Str("fits".to_string())),
            ("benchmark_overall", Json::Num(benchmark_overall)),
            (
                "systems",
                Json::Arr(
                    outcomes
                        .iter()
                        .map(|o| {
                            obj(vec![
                                ("system", Json::Str(o.system.clone())),
                                ("max_n", Json::Num(o.max_n)),
                                ("max_overall", Json::Num(o.max_overall)),
                                ("min_wall_time", Json::Num(o.min_wall_time)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        StrawManAnalysis::Excluded { app, cannot_use } => obj(vec![
            ("app", Json::Str(app)),
            ("verdict", Json::Str("excluded".to_string())),
            (
                "cannot_use",
                Json::Arr(cannot_use.into_iter().map(Json::Str).collect()),
            ),
        ]),
    }
    .to_line()
}

/// The `/models` answer: the registry snapshot.
pub fn models_body(snap: &RegistrySnapshot) -> String {
    models_body_with_observed(snap, &[])
}

/// [`models_body`] plus refresh staleness: `observed` is one
/// `(model, journaled observations, observations since the last full
/// refit)` row per model the refresher is tracking. Models with a quality
/// block in their artifact additionally carry `refit_generation` and
/// per-metric `cv_smape`/`ci95_rel`/`observations`. With no observed rows
/// and no quality blocks the output is byte-identical to the plain
/// [`models_body`].
pub fn models_body_with_observed(
    snap: &RegistrySnapshot,
    observed: &[(String, u64, u64)],
) -> String {
    obj(vec![
        ("generation", Json::Num(snap.generation as f64)),
        (
            "models",
            Json::Arr(
                snap.models
                    .iter()
                    .map(|m| {
                        let mut members = vec![
                            ("name", Json::Str(m.name.clone())),
                            ("source", Json::Str(m.source.clone())),
                            ("kind", Json::Str(m.kind.label().to_string())),
                            ("hash", Json::Str(format!("{:#018x}", m.hash))),
                        ];
                        if let Some(q) = &m.quality {
                            members
                                .push(("refit_generation", Json::Num(q.refit_generation as f64)));
                            let metrics = MODEL_FIELDS
                                .iter()
                                .filter_map(|field| {
                                    q.metrics.get(*field).map(|mq| {
                                        (
                                            (*field).to_string(),
                                            obj(vec![
                                                ("cv_smape", Json::Num(mq.cv_smape)),
                                                ("ci95_rel", Json::Num(mq.ci95_rel)),
                                                ("observations", Json::Num(mq.observations as f64)),
                                            ]),
                                        )
                                    })
                                })
                                .collect::<Vec<_>>();
                            members.push(("quality", Json::Obj(metrics)));
                        }
                        if let Some((_, total, since_full)) =
                            observed.iter().find(|(name, _, _)| *name == m.name)
                        {
                            members.push(("observed", Json::Num(*total as f64)));
                            members.push(("since_full_refit", Json::Num(*since_full as f64)));
                        }
                        obj(members)
                    })
                    .collect(),
            ),
        ),
        (
            "errors",
            Json::Arr(
                snap.errors
                    .iter()
                    .map(|(file, reason)| {
                        obj(vec![
                            ("file", Json::Str(file.clone())),
                            ("reason", Json::Str(reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_line()
}

/// A parsed `POST /observations` body: one live measurement of one
/// requirement metric at one configuration, destined for the model's
/// observation journal and the incremental refitter.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationQuery {
    /// Model (application) name the observation belongs to.
    pub model: String,
    /// Metric field observed — one of [`MODEL_FIELDS`].
    pub metric: String,
    /// Process count of the measured configuration.
    pub p: f64,
    /// Per-process problem size of the measured configuration.
    pub n: f64,
    /// Measured value.
    pub value: f64,
}

/// Parses a `POST /observations` body:
/// `{"model":"X","metric":"flops","p":4,"n":128,"value":2.1e9}`.
///
/// # Errors
/// A one-line reason suitable for a 400 body. Coordinates obey the same
/// "finite, >= 1" rule as `/predict`; the metric must name one of the five
/// requirement models; the value must be finite and positive (requirement
/// metrics are counts and distances).
pub fn parse_observation(body: &str) -> Result<ObservationQuery, String> {
    let v = parse_body(body)?;
    let metric = v
        .get("metric")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"metric\"".to_string())?;
    if !MODEL_FIELDS.contains(&metric) {
        return Err(format!(
            "unknown metric \"{metric}\"; expected one of {}",
            MODEL_FIELDS.join(", ")
        ));
    }
    let value = v
        .get("value")
        .and_then(Json::to_f64_lossless)
        .ok_or_else(|| "missing numeric field \"value\"".to_string())?;
    if !value.is_finite() || value <= 0.0 {
        return Err("\"value\" must be a finite number > 0".to_string());
    }
    Ok(ObservationQuery {
        model: required_model(&v)?,
        metric: metric.to_string(),
        p: coordinate(&v, "p")?,
        n: coordinate(&v, "n")?,
        value,
    })
}

/// What happened to an accepted observation — rendered by
/// [`observation_body`] and produced by the serve-side refresher.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationOutcome {
    /// Model the observation was journaled for.
    pub model: String,
    /// Metric field observed.
    pub metric: String,
    /// Total observations journaled for this metric (including this one).
    pub observations: u64,
    /// Observations since this metric's last full refit.
    pub since_full_refit: u64,
    /// `"none"`, `"incremental"` or `"full"` — the refit this observation
    /// triggered, if any.
    pub refit: &'static str,
    /// Registry generation after any refit was published.
    pub generation: u64,
    /// Cross-validated SMAPE of the current fit, when one was computed.
    pub cv_smape: Option<f64>,
    /// 95% relative confidence half-width, when one was computed.
    pub ci95_rel: Option<f64>,
}

/// The `/observations` answer: journaled-durably acknowledgement plus the
/// refit decision it triggered.
pub fn observation_body(o: &ObservationOutcome) -> String {
    obj(vec![
        ("model", Json::Str(o.model.clone())),
        ("metric", Json::Str(o.metric.clone())),
        ("observations", Json::Num(o.observations as f64)),
        ("since_full_refit", Json::Num(o.since_full_refit as f64)),
        ("refit", Json::Str(o.refit.to_string())),
        ("generation", Json::Num(o.generation as f64)),
        ("cv_smape", opt_num(o.cv_smape)),
        ("ci95_rel", opt_num(o.ci95_rel)),
    ])
    .to_line()
}

/// A parsed `POST /measure` body: one shard of survey work for a worker
/// daemon started with `--allow-measure`.
///
/// Both sides of the fleet speak through these builders — the coordinator
/// encodes with [`measure_request_body`], the worker parses with
/// [`parse_measure`], answers with [`measure_response_body`], and the
/// coordinator decodes with [`parse_measure_response`] — so a shard's
/// [`JournalEntry`]s survive the round trip byte-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureRequest {
    /// Application (behavioural twin) name.
    pub app: String,
    /// Shard id, echoed back verbatim (the coordinator's dedup key).
    pub shard_id: u64,
    /// Fault-plan spec string, verbatim (`""` = no faults). Shipping the
    /// *spec* rather than a parsed form keeps worker-side seeds derived
    /// exactly as a local run would derive them.
    pub fault_spec: String,
    /// Measurement attempts per configuration (1 = no retries).
    pub max_attempts: u32,
    /// Per-shard wall-clock deadline; expiry answers 504.
    pub deadline_ms: Option<u64>,
    /// Chaos-testing aid: hold the worker for this many milliseconds
    /// before measuring (capped at [`MAX_HOLD_MS`]), so tests can kill a
    /// worker deterministically mid-shard.
    pub hold_ms: u64,
    /// The shard's `(p, n)` configurations, in canonical grid order.
    pub configs: Vec<(u64, u64)>,
}

/// Encodes a `POST /measure` request body (coordinator side).
pub fn measure_request_body(req: &MeasureRequest) -> String {
    obj(vec![
        ("app", Json::Str(req.app.clone())),
        ("shard_id", Json::Num(req.shard_id as f64)),
        ("faults", Json::Str(req.fault_spec.clone())),
        ("max_attempts", Json::Num(f64::from(req.max_attempts))),
        ("deadline_ms", opt_num(req.deadline_ms.map(|d| d as f64))),
        ("hold_ms", Json::Num(req.hold_ms as f64)),
        (
            "configs",
            Json::Arr(
                req.configs
                    .iter()
                    .map(|&(p, n)| Json::Arr(vec![Json::Num(p as f64), Json::Num(n as f64)]))
                    .collect(),
            ),
        ),
    ])
    .to_line()
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    let x = v.get(key).and_then(Json::to_f64_lossless)?;
    (x.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&x)).then_some(x as u64)
}

/// Parses a `POST /measure` body (worker side).
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_measure(body: &str) -> Result<MeasureRequest, String> {
    let v = parse_body(body)?;
    let app = v
        .get("app")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing string field \"app\"".to_string())?;
    let shard_id = get_u64(&v, "shard_id").ok_or("missing integer field \"shard_id\"")?;
    let fault_spec = match v.get("faults") {
        None | Some(Json::Null) => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err("\"faults\" must be a string".to_string()),
    };
    let max_attempts = match v.get("max_attempts") {
        None | Some(Json::Null) => 1,
        Some(_) => match get_u64(&v, "max_attempts") {
            Some(a) if (1..=u64::from(MAX_SHARD_ATTEMPTS)).contains(&a) => a as u32,
            _ => {
                return Err(format!(
                    "\"max_attempts\" must be an integer in 1..={MAX_SHARD_ATTEMPTS}"
                ))
            }
        },
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(_) => match get_u64(&v, "deadline_ms") {
            Some(d) if d <= MAX_SHARD_DEADLINE_MS => Some(d),
            _ => {
                return Err(format!(
                    "\"deadline_ms\" must be an integer in 0..={MAX_SHARD_DEADLINE_MS}"
                ))
            }
        },
    };
    let hold_ms = match v.get("hold_ms") {
        None | Some(Json::Null) => 0,
        Some(_) => match get_u64(&v, "hold_ms") {
            Some(h) if h <= MAX_HOLD_MS => h,
            _ => {
                return Err(format!(
                    "\"hold_ms\" must be an integer in 0..={MAX_HOLD_MS}"
                ))
            }
        },
    };
    let raw = v
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"configs\"")?;
    if raw.is_empty() {
        return Err("\"configs\" must not be empty".to_string());
    }
    if raw.len() > MAX_SHARD_CONFIGS {
        return Err(format!(
            "shard of {} configs exceeds the {MAX_SHARD_CONFIGS}-config cap",
            raw.len()
        ));
    }
    let mut configs = Vec::with_capacity(raw.len());
    for (i, c) in raw.iter().enumerate() {
        let pair = c
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| format!("configs[{i}] must be a [p, n] pair"))?;
        // p spawns that many simulated rank threads on the worker: bound
        // it so a bad coordinator cannot ask for an absurd simulation.
        let coord = |j: &Json| {
            j.to_f64_lossless()
                .filter(|x| x.fract() == 0.0 && *x >= 1.0 && *x <= f64::from(u32::MAX))
                .map(|x| x as u64)
        };
        let (p, n) = match (coord(&pair[0]), coord(&pair[1])) {
            (Some(p), Some(n)) => (p, n),
            _ => {
                return Err(format!(
                    "configs[{i}]: p and n must be integers in 1..=4294967295"
                ))
            }
        };
        configs.push((p, n));
    }
    Ok(MeasureRequest {
        app,
        shard_id,
        fault_spec,
        max_attempts,
        deadline_ms,
        hold_ms,
        configs,
    })
}

/// The `/measure` answer: the shard's journal entries, in the request's
/// canonical order, each in the journal's own wire form.
pub fn measure_response_body(shard_id: u64, app: &str, entries: &[JournalEntry]) -> String {
    obj(vec![
        ("shard_id", Json::Num(shard_id as f64)),
        ("app", Json::Str(app.to_string())),
        (
            "entries",
            Json::Arr(entries.iter().map(JournalEntry::to_json).collect()),
        ),
    ])
    .to_line()
}

/// Decodes a `/measure` answer (coordinator side): `(shard_id, entries)`.
///
/// # Errors
/// A one-line reason when the body is not a well-formed shard answer.
pub fn parse_measure_response(body: &str) -> Result<(u64, Vec<JournalEntry>), String> {
    let v = parse_body(body)?;
    let shard_id = get_u64(&v, "shard_id").ok_or("missing integer field \"shard_id\"")?;
    let raw = v
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"entries\"")?;
    let entries = raw
        .iter()
        .enumerate()
        .map(|(i, e)| JournalEntry::from_json(e).map_err(|r| format!("entries[{i}]: {r}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((shard_id, entries))
}

/// Keep `RateMetric::ALL` and [`rates_obj`] in the same order — this
/// compile-time shim trips if the metric set ever changes shape.
const _: () = assert!(RateMetric::ALL.len() == 3);

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_codesign::catalog;

    #[test]
    fn predict_parses_and_evaluates_like_the_library() {
        let q = parse_predict(r#"{"model":"Kripke","p":1e6,"n":4096}"#).expect("valid");
        assert_eq!(q.model, "Kripke");
        assert_eq!((q.p, q.n, q.hold_ms), (1e6, 4096.0, 0));

        let app = catalog::kripke();
        let body = predict_body(&app, q.p, q.n);
        let v = minijson::parse(&body).expect("self-produced JSON parses");
        let flops = v
            .get("requirements")
            .and_then(|r| r.get("flops"))
            .and_then(Json::to_f64_lossless)
            .expect("flops present");
        assert_eq!(flops, app.flops.eval(&[q.p, q.n]));
    }

    #[test]
    fn predict_rejects_bad_bodies_with_one_line_reasons() {
        for (body, needle) in [
            ("{ nope", "not valid JSON"),
            (r#"{"p":2,"n":3}"#, "\"model\""),
            (r#"{"model":"X","p":0,"n":3}"#, "\"p\""),
            (r#"{"model":"X","p":2,"n":"big"}"#, "\"n\""),
            (r#"{"model":"X","p":2,"n":3,"hold_ms":-1}"#, "hold_ms"),
            (r#"{"model":"X","p":2,"n":3,"hold_ms":999999}"#, "hold_ms"),
        ] {
            let err = parse_predict(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn predict_batch_parses_grids_and_rejects_bad_points() {
        let q = parse_predict_batch(r#"{"model":"Kripke","points":[[2,64],[1e6,4096]]}"#)
            .expect("valid");
        assert_eq!(q.model, "Kripke");
        assert_eq!(q.points, vec![(2.0, 64.0), (1e6, 4096.0)]);

        for (body, needle) in [
            ("{ nope", "not valid JSON"),
            (r#"{"points":[[2,64]]}"#, "\"model\""),
            (r#"{"model":"X"}"#, "\"points\""),
            (r#"{"model":"X","points":[]}"#, "empty"),
            (r#"{"model":"X","points":[[2]]}"#, "points[0]"),
            (r#"{"model":"X","points":[[2,64],[0,64]]}"#, "points[1]"),
            (r#"{"model":"X","points":[[2,"big"]]}"#, "points[0]"),
        ] {
            let err = parse_predict_batch(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }

        let too_many = format!(
            r#"{{"model":"X","points":[{}]}}"#,
            vec!["[2,64]"; MAX_BATCH_POINTS + 1].join(",")
        );
        let err = parse_predict_batch(&too_many).expect_err("over cap");
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn predict_batch_body_is_concatenated_singles() {
        let app = catalog::kripke();
        let compiled = CompiledApp::lower(&app, &exareq_core::compiled::CompiledArena::new());
        let points = [(2.0, 64.0), (1e6, 4096.0), (1.0, 1.0)];
        let batch = predict_batch_body(&compiled, &points);
        let expected: String = points
            .iter()
            .map(|&(p, n)| format!("{}\n", predict_body(&app, p, n)))
            .collect();
        assert_eq!(batch, expected);
    }

    #[test]
    fn upgrade_body_ranks_and_shares() {
        let milc = catalog::milc();
        let kripke = catalog::kripke();
        let alone = upgrade_body(&milc, None).expect("advice");
        let v = minijson::parse(&alone).unwrap();
        assert_eq!(v.get("best").and_then(Json::as_str), Some("C"));
        assert!(matches!(v.get("sharing"), Some(Json::Null)));

        let shared = upgrade_body(&milc, Some((&kripke, 0.25))).expect("sharing");
        let v = minijson::parse(&shared).unwrap();
        let outcomes = v.get("sharing").and_then(Json::as_arr).expect("array");
        assert_eq!(outcomes.len(), 2);
        assert_eq!(
            outcomes[0].get("fraction").and_then(Json::to_f64_lossless),
            Some(0.25)
        );
    }

    #[test]
    fn strawman_body_reports_fits_and_exclusions() {
        let fits = strawman_body(&catalog::kripke());
        let v = minijson::parse(&fits).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("fits"));
        assert_eq!(
            v.get("systems").and_then(Json::as_arr).map(<[Json]>::len),
            Some(table_six().len())
        );

        let excluded = strawman_body(&catalog::icofoam());
        let v = minijson::parse(&excluded).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("excluded"));
    }

    #[test]
    fn health_body_reports_engine_state_with_legacy_status_first() {
        let body = health_body(3, 2, 7);
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        let v = minijson::parse(&body).unwrap();
        assert_eq!(
            v.get("queue_depth").and_then(Json::to_f64_lossless),
            Some(3.0)
        );
        assert_eq!(
            v.get("in_flight").and_then(Json::to_f64_lossless),
            Some(2.0)
        );
        assert_eq!(
            v.get("registry_generation").and_then(Json::to_f64_lossless),
            Some(7.0)
        );
    }

    #[test]
    fn measure_request_round_trips() {
        let req = MeasureRequest {
            app: "Relearn".to_string(),
            shard_id: 3,
            fault_spec: "seed=7,drop=0.01".to_string(),
            max_attempts: 2,
            deadline_ms: Some(30_000),
            hold_ms: 250,
            configs: vec![(2, 64), (2, 256)],
        };
        let parsed = parse_measure(&measure_request_body(&req)).expect("round trip");
        assert_eq!(parsed, req);
    }

    #[test]
    fn measure_parse_rejects_bad_shards() {
        for (body, needle) in [
            (r#"{"shard_id":0,"configs":[[2,64]]}"#, "\"app\""),
            (r#"{"app":"X","configs":[[2,64]]}"#, "\"shard_id\""),
            (r#"{"app":"X","shard_id":0,"configs":[]}"#, "configs"),
            (r#"{"app":"X","shard_id":0,"configs":[[2]]}"#, "configs[0]"),
            (
                r#"{"app":"X","shard_id":0,"configs":[[0,64]]}"#,
                "configs[0]",
            ),
            (
                r#"{"app":"X","shard_id":0,"max_attempts":0,"configs":[[2,64]]}"#,
                "max_attempts",
            ),
            (
                r#"{"app":"X","shard_id":0,"hold_ms":999999,"configs":[[2,64]]}"#,
                "hold_ms",
            ),
        ] {
            let err = parse_measure(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn measure_response_round_trips_journal_entries() {
        let entry = JournalEntry {
            p: 2,
            n: 64,
            attempts: 1,
            seed: 0x1234,
            skip_reason: None,
            observations: Vec::new(),
        };
        let body = measure_response_body(5, "Relearn", &[entry.clone()]);
        let (shard_id, entries) = parse_measure_response(&body).expect("round trip");
        assert_eq!(shard_id, 5);
        assert_eq!(entries, vec![entry]);
    }

    #[test]
    fn observation_parses_and_rejects_bad_bodies() {
        let q =
            parse_observation(r#"{"model":"Kripke","metric":"flops","p":4,"n":128,"value":2.1e9}"#)
                .expect("valid");
        assert_eq!(q.model, "Kripke");
        assert_eq!(q.metric, "flops");
        assert_eq!((q.p, q.n, q.value), (4.0, 128.0, 2.1e9));

        for (body, needle) in [
            ("{ nope", "not valid JSON"),
            (r#"{"metric":"flops","p":4,"n":128,"value":1}"#, "\"model\""),
            (r#"{"model":"X","p":4,"n":128,"value":1}"#, "\"metric\""),
            (
                r#"{"model":"X","metric":"watts","p":4,"n":128,"value":1}"#,
                "unknown metric",
            ),
            (
                r#"{"model":"X","metric":"flops","n":128,"value":1}"#,
                "\"p\"",
            ),
            (
                r#"{"model":"X","metric":"flops","p":0,"n":128,"value":1}"#,
                "\"p\"",
            ),
            (
                r#"{"model":"X","metric":"flops","p":4,"n":128}"#,
                "\"value\"",
            ),
            (
                r#"{"model":"X","metric":"flops","p":4,"n":128,"value":-1}"#,
                "\"value\"",
            ),
        ] {
            let err = parse_observation(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn observation_body_reports_the_refit_decision() {
        let body = observation_body(&ObservationOutcome {
            model: "Kripke".to_string(),
            metric: "flops".to_string(),
            observations: 9,
            since_full_refit: 9,
            refit: "incremental",
            generation: 4,
            cv_smape: Some(3.5),
            ci95_rel: None,
        });
        let v = minijson::parse(&body).unwrap();
        assert_eq!(v.get("refit").and_then(Json::as_str), Some("incremental"));
        assert_eq!(
            v.get("observations").and_then(Json::to_f64_lossless),
            Some(9.0)
        );
        assert_eq!(v.get("cv_smape").and_then(Json::to_f64_lossless), Some(3.5));
        assert!(matches!(v.get("ci95_rel"), Some(Json::Null)));
    }

    #[test]
    fn predict_quality_is_byte_identical_without_quality() {
        let app = catalog::kripke();
        assert_eq!(
            predict_body_quality(&app, None, 1e6, 4096.0),
            predict_body(&app, 1e6, 4096.0)
        );

        let mut q = ArtifactQuality::default();
        q.metrics.insert(
            "flops".to_string(),
            crate::artifact::MetricQuality {
                cv_smape: 2.0,
                ci95_rel: 0.05,
                observations: 11,
            },
        );
        let body = predict_body_quality(&app, Some(&q), 1e6, 4096.0);
        let plain = predict_body(&app, 1e6, 4096.0);
        // The decorated body is the plain one with a member appended
        // before the closing brace.
        assert!(body.starts_with(&plain[..plain.len() - 1]), "{body}");
        let v = minijson::parse(&body).unwrap();
        assert_eq!(
            v.get("ci95_rel")
                .and_then(|c| c.get("flops"))
                .and_then(Json::to_f64_lossless),
            Some(0.05)
        );
    }

    #[test]
    fn models_with_observed_extends_but_preserves_the_plain_body() {
        let snap = RegistrySnapshot {
            generation: 2,
            models: Vec::new(),
            errors: Vec::new(),
        };
        assert_eq!(models_body_with_observed(&snap, &[]), models_body(&snap));
    }

    #[test]
    fn upgrade_parse_validates_sharing_fields() {
        let q = parse_upgrade(r#"{"model":"MILC","share_with":"Kripke","fraction":0.3}"#)
            .expect("valid");
        assert_eq!(q.share_with.as_deref(), Some("Kripke"));
        assert_eq!(q.fraction, 0.3);
        assert!(parse_upgrade(r#"{"model":"M","fraction":0.3}"#).is_err());
        assert!(parse_upgrade(r#"{"model":"M","share_with":"K","fraction":1.5}"#).is_err());
    }
}
