//! Typed, crash-safe filesystem I/O for every artifact the toolchain
//! writes or reads: surveys, reports, caches, journals.
//!
//! Two problems with plain `std::fs` calls motivated this module:
//!
//! 1. **Panicking call sites.** `fs::write(..).expect(..)` aborts the whole
//!    process on a full disk or a read-only directory — unacceptable in a
//!    sweep that has hours of completed measurements in memory. Every
//!    helper here returns [`ExareqIoError`], which names the *path* and the
//!    *operation* that failed so callers can degrade gracefully and users
//!    see `write /results/table2.txt: No space left on device` instead of a
//!    backtrace.
//! 2. **Torn files.** A crash between `File::create` and the final flush
//!    leaves a truncated JSON/Markdown artifact that a later run half-parses
//!    into a confusing serde error. [`write_atomic`] therefore stages the
//!    contents in a temporary file *in the destination directory* (same
//!    filesystem, so the rename is atomic), fsyncs it, and renames it over
//!    the target: readers observe either the old file or the complete new
//!    one, never a prefix.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The filesystem operation that failed, for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Reading a file's contents.
    Read,
    /// Creating or opening a file for writing.
    Create,
    /// Writing file contents.
    Write,
    /// Flushing contents to stable storage (`fsync`).
    Sync,
    /// Renaming the staged temporary over the destination.
    Rename,
    /// Creating a directory (and its parents).
    CreateDir,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOp::Read => "read",
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::CreateDir => "create directory",
        };
        f.write_str(s)
    }
}

/// A filesystem error that knows which path and operation failed.
///
/// Replaces `unwrap`/`expect` on user-reachable I/O paths: the CLI and the
/// bench binaries print this and exit with a failure code instead of
/// panicking with a backtrace.
#[derive(Debug)]
pub struct ExareqIoError {
    /// What was being attempted.
    pub op: IoOp,
    /// The file or directory involved.
    pub path: PathBuf,
    /// The underlying OS error.
    pub source: io::Error,
}

impl ExareqIoError {
    /// Builds an error for `op` on `path`.
    pub fn new(op: IoOp, path: impl Into<PathBuf>, source: io::Error) -> Self {
        ExareqIoError {
            op,
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for ExareqIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for ExareqIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Reads a whole file to a string, reporting the path on failure.
///
/// # Errors
/// [`ExareqIoError`] with [`IoOp::Read`] and the offending path.
pub fn read_to_string(path: impl AsRef<Path>) -> Result<String, ExareqIoError> {
    let path = path.as_ref();
    fs::read_to_string(path).map_err(|e| ExareqIoError::new(IoOp::Read, path, e))
}

/// Creates `path` and all missing parents, reporting the path on failure.
///
/// # Errors
/// [`ExareqIoError`] with [`IoOp::CreateDir`].
pub fn create_dir_all(path: impl AsRef<Path>) -> Result<(), ExareqIoError> {
    let path = path.as_ref();
    fs::create_dir_all(path).map_err(|e| ExareqIoError::new(IoOp::CreateDir, path, e))
}

/// The staging name used by [`write_atomic`] for `path`.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: stage in a sibling temporary
/// file, fsync, rename over the destination, then fsync the directory.
///
/// A crash at any point leaves either the previous contents of `path` or
/// the complete new contents — never a truncated artifact. The temporary
/// lives in the destination directory so the final rename never crosses a
/// filesystem boundary.
///
/// # Errors
/// [`ExareqIoError`] naming the failing operation; the staged temporary is
/// removed on failure (best effort).
pub fn write_atomic(
    path: impl AsRef<Path>,
    contents: impl AsRef<[u8]>,
) -> Result<(), ExareqIoError> {
    let path = path.as_ref();
    let tmp = staging_path(path);
    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| ExareqIoError::new(IoOp::Create, &tmp, e))?;
        file.write_all(contents.as_ref())
            .map_err(|e| ExareqIoError::new(IoOp::Write, &tmp, e))?;
        file.sync_all()
            .map_err(|e| ExareqIoError::new(IoOp::Sync, &tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| ExareqIoError::new(IoOp::Rename, path, e))?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs the parent directory of `path` so a rename or file creation is
/// itself durable. Best effort: directory fsync is not supported
/// everywhere, and the data itself is already safe, so failures are
/// ignored.
pub fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = File::open(parent) {
        let _ = dir.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("exareq_fsio_tests").join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_and_overwrites() {
        let dir = tmp_dir("create");
        let path = dir.join("out.txt");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No staging residue after success.
        assert!(!staging_path(&path).exists());
    }

    #[test]
    fn atomic_write_failure_names_path_and_op() {
        let dir = tmp_dir("fail");
        // Destination directory does not exist: staging create fails.
        let path = dir.join("missing_subdir").join("out.txt");
        let err = write_atomic(&path, "x").unwrap_err();
        assert_eq!(err.op, IoOp::Create);
        let msg = err.to_string();
        assert!(msg.contains("create"), "{msg}");
        assert!(msg.contains("missing_subdir"), "{msg}");
    }

    #[test]
    fn read_error_names_path() {
        let err = read_to_string("/nonexistent/exareq/file.json").unwrap_err();
        assert_eq!(err.op, IoOp::Read);
        assert!(err.to_string().contains("/nonexistent/exareq/file.json"));
    }

    #[test]
    fn staging_name_is_sibling() {
        let s = staging_path(Path::new("/a/b/c.json"));
        assert_eq!(s, Path::new("/a/b/c.json.tmp"));
    }
}
