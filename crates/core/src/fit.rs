//! Single-parameter model generation (the SC13 Extra-P algorithm).
//!
//! Models are identified iteratively (Section II-C of the paper): starting
//! from the constant hypothesis, hypotheses of growing size are instantiated
//! from the PMNF search space, their coefficients fitted by least squares,
//! and the winner selected through leave-one-out cross-validation. Growth
//! stops when an additional term brings no significant improvement.

use crate::cancel::{CancelReason, CancelToken, Cancelled};
use crate::hypothesis::SearchSpace;
use crate::linalg::{lstsq, Matrix};
use crate::measurement::Experiment;
use crate::pmnf::{Exponents, Model, Term};
use crate::quality::{adjusted_r_squared, r_squared, smape};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for model fitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Exponent search space.
    pub space: SearchSpace,
    /// Maximum number of non-constant terms (paper: small `n`, we default
    /// to 2 and allow 3).
    pub max_terms: usize,
    /// Minimum relative improvement in cross-validated SMAPE required to
    /// accept a larger hypothesis ("no significant improvement" stop rule).
    pub improvement_threshold: f64,
    /// Reject hypotheses whose fitted non-constant coefficients are negative.
    /// Requirement metrics are monotone, so this is on by default.
    pub nonneg_coeffs: bool,
    /// Cross-validated SMAPE (percent) below which fits are considered
    /// perfect: scores under the floor compare equal and the simplest
    /// hypothesis wins, and hypothesis growth stops. Prevents the search
    /// from chasing sub-measurement-resolution residue (e.g. integer
    /// rounding of counters) with spurious extra terms.
    pub noise_floor_smape: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            space: SearchSpace::paper(),
            max_terms: 2,
            improvement_threshold: 0.15,
            nonneg_coeffs: true,
            noise_floor_smape: 0.3,
        }
    }
}

impl FitConfig {
    /// A configuration with the coarse search space, for fast tests.
    pub fn coarse() -> Self {
        FitConfig {
            space: SearchSpace::coarse(),
            ..FitConfig::default()
        }
    }
}

/// A fitted model together with its quality statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The selected PMNF model.
    pub model: Model,
    /// Leave-one-out cross-validated SMAPE (percent) — the selection score.
    pub cv_smape: f64,
    /// In-sample SMAPE (percent).
    pub smape: f64,
    /// In-sample R².
    pub r2: f64,
    /// Adjusted R².
    pub adj_r2: f64,
}

/// Errors produced by model generation.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The experiment has a different number of parameters than expected.
    WrongArity {
        /// Parameter count the fitter expected.
        expected: usize,
        /// Parameter count the experiment actually has.
        got: usize,
    },
    /// Too few distinct measurement points for the requested hypothesis size.
    NotEnoughPoints {
        /// Minimum number of points required.
        needed: usize,
        /// Number of points available.
        got: usize,
    },
    /// Every candidate hypothesis failed to fit (degenerate data).
    NoViableHypothesis,
    /// The hypothesis search was cancelled at a checkpoint between search
    /// waves (cooperative preemption; no partial model is returned).
    Cancelled {
        /// Why the search was cancelled.
        reason: CancelReason,
    },
}

impl core::fmt::Display for FitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FitError::WrongArity { expected, got } => {
                write!(f, "expected {expected}-parameter experiment, got {got}")
            }
            FitError::NotEnoughPoints { needed, got } => {
                write!(f, "need at least {needed} points, got {got}")
            }
            FitError::NoViableHypothesis => write!(f, "no hypothesis could be fitted"),
            FitError::Cancelled { reason } => write!(f, "model search cancelled: {reason}"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<Cancelled> for FitError {
    fn from(c: Cancelled) -> Self {
        FitError::Cancelled { reason: c.reason }
    }
}

/// One hypothesis: a set of single-parameter basis factors (plus implicit
/// constant).
#[derive(Debug, Clone, PartialEq)]
struct Hypothesis {
    factors: Vec<Exponents>,
}

/// Evaluation of a hypothesis on data: fitted coefficients + scores.
#[derive(Debug, Clone)]
struct Scored {
    hypothesis: Hypothesis,
    /// Coefficients: `[c0, c1, ..]` aligned with `[const, factors..]`.
    coeffs: Vec<f64>,
    cv_smape: f64,
    in_smape: f64,
}

fn design_matrix(xs: &[f64], factors: &[Exponents]) -> Matrix {
    let mut a = Matrix::zeros(xs.len(), factors.len() + 1);
    for (r, &x) in xs.iter().enumerate() {
        a[(r, 0)] = 1.0;
        for (c, f) in factors.iter().enumerate() {
            a[(r, c + 1)] = f.eval(x);
        }
    }
    a
}

/// Fits coefficients on all points and computes leave-one-out CV SMAPE.
fn score_hypothesis(xs: &[f64], ys: &[f64], hyp: &Hypothesis, nonneg: bool) -> Option<Scored> {
    let k = hyp.factors.len() + 1;
    let n = xs.len();
    if n < k + 1 {
        return None;
    }
    let a = design_matrix(xs, &hyp.factors);
    let coeffs = lstsq(&a, ys).ok()?;
    if nonneg && coeffs[1..].iter().any(|&c| c < 0.0) {
        return None;
    }
    let pred = a.mul_vec(&coeffs);
    let in_smape = smape(&pred, ys);

    // Leave-one-out CV.
    let mut cv_pred = vec![0.0; n];
    let mut sub_x = Vec::with_capacity(n - 1);
    let mut sub_y = Vec::with_capacity(n - 1);
    for i in 0..n {
        sub_x.clear();
        sub_y.clear();
        for j in 0..n {
            if j != i {
                sub_x.push(xs[j]);
                sub_y.push(ys[j]);
            }
        }
        let sa = design_matrix(&sub_x, &hyp.factors);
        let c = lstsq(&sa, &sub_y).ok()?;
        let row_basis: Vec<f64> = std::iter::once(1.0)
            .chain(hyp.factors.iter().map(|f| f.eval(xs[i])))
            .collect();
        cv_pred[i] = row_basis.iter().zip(&c).map(|(b, c)| b * c).sum();
    }
    let cv_smape = smape(&cv_pred, ys);
    if !cv_smape.is_finite() || !in_smape.is_finite() {
        return None;
    }
    Some(Scored {
        hypothesis: hyp.clone(),
        coeffs,
        cv_smape,
        in_smape,
    })
}

/// Zeroes a fitted constant that is numerically indistinguishable from the
/// least-squares round-off floor (|c₀| below 10⁻⁸ of the data magnitude) —
/// it would otherwise clutter reported models as `1e-11 + …`.
pub(crate) fn prune_tiny_constant(c0: f64, ys: &[f64]) -> f64 {
    let scale = ys.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    if c0.abs() < 1e-8 * scale {
        0.0
    } else {
        c0
    }
}

/// Total-growth key used to prefer the simplest hypothesis among ties.
fn growth_key(h: &Hypothesis) -> f64 {
    h.factors.iter().map(|f| f.poly + 0.01 * f.log).sum()
}

/// Total ordering on scored hypotheses: lower raw cross-validated SMAPE
/// wins; exact ties fall back to fewer terms, then slower growth. Raw
/// comparison (not a tolerance window) keeps the order transitive, and in
/// practice separates the generative model (CV error at the round-off or
/// counter-rounding level) from near-collinear impostor exponents, whose
/// leave-one-out error is orders of magnitude larger even when small in
/// absolute terms.
fn cmp_scored(a: &Scored, b: &Scored) -> std::cmp::Ordering {
    a.cv_smape
        .partial_cmp(&b.cv_smape)
        .expect("scores are finite")
        .then_with(|| a.hypothesis.factors.len().cmp(&b.hypothesis.factors.len()))
        .then_with(|| {
            growth_key(&a.hypothesis)
                .partial_cmp(&growth_key(&b.hypothesis))
                .expect("growth keys are finite")
        })
}

fn better(a: &Scored, b: &Scored) -> bool {
    cmp_scored(a, b) == std::cmp::Ordering::Less
}

fn scored_to_fitted(s: &Scored, xs: &[f64], ys: &[f64], param: &str) -> FittedModel {
    let terms: Vec<Term> = s
        .hypothesis
        .factors
        .iter()
        .zip(&s.coeffs[1..])
        .map(|(f, &c)| Term::new(c, vec![*f]))
        .collect();
    let constant = prune_tiny_constant(s.coeffs[0], ys);
    let model = Model::new(constant, terms, vec![param.to_string()]);
    let pred: Vec<f64> = xs.iter().map(|&x| model.eval(&[x])).collect();
    FittedModel {
        r2: r_squared(&pred, ys),
        adj_r2: adjusted_r_squared(&pred, ys, s.coeffs.len()),
        smape: s.in_smape,
        cv_smape: s.cv_smape,
        model,
    }
}

/// Fits the best single-parameter PMNF model to a one-parameter experiment.
///
/// # Errors
/// Returns [`FitError`] when the experiment is not one-dimensional, has too
/// few points, or no hypothesis can be fitted.
pub fn fit_single(exp: &Experiment, cfg: &FitConfig) -> Result<FittedModel, FitError> {
    fit_single_cancellable(exp, cfg, &CancelToken::new())
}

/// [`fit_single`] with a cooperative cancellation token, probed between
/// hypothesis-search waves.
///
/// # Errors
/// Everything [`fit_single`] returns, plus [`FitError::Cancelled`] when
/// the token fires mid-search.
pub fn fit_single_cancellable(
    exp: &Experiment,
    cfg: &FitConfig,
    cancel: &CancelToken,
) -> Result<FittedModel, FitError> {
    let ranked = rank_single_cancellable(exp, cfg, 1, cancel)?;
    Ok(ranked
        .into_iter()
        .next()
        .expect("rank_single returned at least one"))
}

/// Fits and ranks the best `k` single-parameter models (distinct factor
/// sets), best first. Used by the multi-parameter algorithm, which keeps
/// several per-parameter candidates.
pub fn rank_single(
    exp: &Experiment,
    cfg: &FitConfig,
    k: usize,
) -> Result<Vec<FittedModel>, FitError> {
    rank_single_cancellable(exp, cfg, k, &CancelToken::new())
}

/// [`rank_single`] with a cooperative cancellation token.
///
/// The token is probed once before the exhaustive size-1 scan and again
/// before each larger hypothesis size — the search waves are the unit of
/// preemption, so a fired token stops the fit within one wave.
///
/// # Errors
/// Everything [`rank_single`] returns, plus [`FitError::Cancelled`] when
/// the token fires mid-search.
pub fn rank_single_cancellable(
    exp: &Experiment,
    cfg: &FitConfig,
    k: usize,
    cancel: &CancelToken,
) -> Result<Vec<FittedModel>, FitError> {
    if exp.arity() != 1 {
        return Err(FitError::WrongArity {
            expected: 1,
            got: exp.arity(),
        });
    }
    // Points flagged as degraded (crashed / fault-perturbed runs) are
    // excluded from fitting; the minimum-points guard below then decides
    // whether enough of the sweep survived.
    let (clean, _dropped) = exp.split_clean();
    let agg = clean.aggregated(crate::measurement::Aggregation::Mean);
    let xs: Vec<f64> = agg.points.iter().map(|m| m.coords[0]).collect();
    let ys: Vec<f64> = agg.points.iter().map(|m| m.value).collect();
    if xs.len() < 3 {
        return Err(FitError::NotEnoughPoints {
            needed: 3,
            got: xs.len(),
        });
    }
    let param = exp.params[0].clone();

    // Constant hypothesis is the baseline.
    let const_hyp = Hypothesis { factors: vec![] };
    let mut pool: Vec<Scored> = score_hypothesis(&xs, &ys, &const_hyp, cfg.nonneg_coeffs)
        .into_iter()
        .collect();

    // Size-1 hypotheses: exhaustive over the factor grid (parallel).
    cancel.checkpoint()?;
    let candidates = cfg.space.factor_candidates();
    let size1: Vec<Scored> = candidates
        .par_iter()
        .filter_map(|&f| {
            score_hypothesis(
                &xs,
                &ys,
                &Hypothesis { factors: vec![f] },
                cfg.nonneg_coeffs,
            )
        })
        .collect();
    pool.extend(size1.iter().cloned());

    let floor = cfg.noise_floor_smape;
    let mut best: Option<Scored> = pool
        .iter()
        .cloned()
        .reduce(|a, b| if better(&a, &b) { a } else { b });

    // Iterative growth: hypotheses of size two are enumerated exhaustively
    // over all factor pairs (a beam seeded only with the best single terms
    // can miss a true two-term structure whose individual terms fit poorly,
    // e.g. `c₁·log p + c₂·p`); larger sizes extend the best `BEAM`
    // hypotheses of the previous size. Growth continues while the
    // cross-validated error improves significantly (the paper's "until we
    // see no significant improvement" stop rule).
    const BEAM: usize = 8;
    let mut frontier: Vec<Scored> = {
        let mut f = size1;
        f.sort_by(cmp_scored);
        f.truncate(BEAM);
        f
    };
    for size in 2..=cfg.max_terms {
        // One probe per search wave: waves are the preemption unit (a
        // wave's parallel scoring runs to completion once started).
        cancel.checkpoint()?;
        if frontier.is_empty() {
            break;
        }
        // Already at measurement resolution: extra terms would only chase
        // counter-rounding residue.
        if best.as_ref().map(|b| b.cv_smape <= floor).unwrap_or(false) {
            break;
        }
        let mut to_score: Vec<Hypothesis> = Vec::new();
        if size == 2 {
            for (i, &f1) in candidates.iter().enumerate() {
                for &f2 in &candidates[i + 1..] {
                    let mut factors = vec![f1, f2];
                    factors.sort_by(|a, b| a.growth_cmp(b));
                    to_score.push(Hypothesis { factors });
                }
            }
        } else {
            for cur in &frontier {
                for &f in &candidates {
                    if cur.hypothesis.factors.contains(&f) {
                        continue;
                    }
                    let mut factors = cur.hypothesis.factors.clone();
                    factors.push(f);
                    factors.sort_by(|a, b| a.growth_cmp(b));
                    let h = Hypothesis { factors };
                    if !to_score.contains(&h) {
                        to_score.push(h);
                    }
                }
            }
        }
        let mut grown: Vec<Scored> = to_score
            .par_iter()
            .filter_map(|h| score_hypothesis(&xs, &ys, h, cfg.nonneg_coeffs))
            .collect();
        if grown.is_empty() {
            break;
        }
        grown.sort_by(cmp_scored);
        let best_grown = grown[0].clone();
        let prev_best = best.as_ref().map(|b| b.cv_smape).unwrap_or(f64::INFINITY);
        let improvement = (prev_best - best_grown.cv_smape) / prev_best.max(1e-12);
        pool.push(best_grown.clone());
        let significant = improvement > cfg.improvement_threshold;
        if significant {
            if best
                .as_ref()
                .map(|b| better(&best_grown, b))
                .unwrap_or(true)
            {
                best = Some(best_grown);
            }
            grown.truncate(BEAM);
            frontier = grown;
        } else {
            break;
        }
    }

    if best.is_none() {
        return Err(FitError::NoViableHypothesis);
    }

    // Rank the pool, dedup by factor set, take k.
    pool.sort_by(cmp_scored);
    let mut out: Vec<FittedModel> = Vec::new();
    let mut seen: Vec<Vec<Exponents>> = Vec::new();
    for s in &pool {
        if seen.contains(&s.hypothesis.factors) {
            continue;
        }
        seen.push(s.hypothesis.factors.clone());
        out.push(scored_to_fitted(s, &xs, &ys, &param));
        if out.len() >= k {
            break;
        }
    }
    if out.is_empty() {
        Err(FitError::NoViableHypothesis)
    } else {
        Ok(out)
    }
}

/// A fit over a sweep that may contain degraded measurements: the model
/// fitted on the clean subset, plus exactly which points were dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustFit {
    /// Model fitted on the unflagged measurements.
    pub fitted: FittedModel,
    /// Measurements excluded from the fit because they were flagged as
    /// degraded (reported, never silently discarded).
    pub dropped: Vec<crate::measurement::Measurement>,
}

/// Fits a single-parameter model on the clean subset of a sweep that may
/// contain flagged (degraded-run) measurements, reporting the dropped
/// points alongside the model.
///
/// # Errors
/// Returns [`FitError::NotEnoughPoints`] when too few clean points
/// survive — the minimum-points guard that keeps a mostly-crashed sweep
/// from producing a garbage model.
pub fn fit_single_robust(exp: &Experiment, cfg: &FitConfig) -> Result<RobustFit, FitError> {
    let (clean, dropped) = exp.split_clean();
    let fitted = fit_single(&clean, cfg)?;
    Ok(RobustFit { fitted, dropped })
}

/// Fits a model choosing selection by raw in-sample RSS instead of
/// cross-validation — the ablation-A3 comparator. Prone to overfitting on
/// noisy data; exposed for the study, not for production use.
pub fn fit_single_no_cv(exp: &Experiment, cfg: &FitConfig) -> Result<FittedModel, FitError> {
    if exp.arity() != 1 {
        return Err(FitError::WrongArity {
            expected: 1,
            got: exp.arity(),
        });
    }
    let (clean, _dropped) = exp.split_clean();
    let agg = clean.aggregated(crate::measurement::Aggregation::Mean);
    let xs: Vec<f64> = agg.points.iter().map(|m| m.coords[0]).collect();
    let ys: Vec<f64> = agg.points.iter().map(|m| m.value).collect();
    if xs.len() < 3 {
        return Err(FitError::NotEnoughPoints {
            needed: 3,
            got: xs.len(),
        });
    }
    let param = exp.params[0].clone();
    let mut hyps: Vec<Hypothesis> = vec![Hypothesis { factors: vec![] }];
    for f in cfg.space.factor_candidates() {
        hyps.push(Hypothesis { factors: vec![f] });
    }
    let best = hyps
        .par_iter()
        .filter_map(|h| score_hypothesis(&xs, &ys, h, cfg.nonneg_coeffs))
        .reduce_with(|a, b| {
            // Select purely on in-sample error.
            if a.in_smape <= b.in_smape {
                a
            } else {
                b
            }
        })
        .ok_or(FitError::NoViableHypothesis)?;
    Ok(scored_to_fitted(&best, &xs, &ys, &param))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Experiment;

    fn exp1(f: impl FnMut(&[f64]) -> f64) -> Experiment {
        Experiment::from_fn(vec!["p"], &[&[2.0, 4.0, 8.0, 16.0, 32.0, 64.0]], f)
    }

    fn dominant(m: &FittedModel) -> Exponents {
        m.model.dominant_exponents(0)
    }

    #[test]
    fn recovers_constant() {
        let e = exp1(|_| 42.0);
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        assert!(m.model.terms.is_empty(), "{}", m.model);
        assert!((m.model.constant - 42.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_linear() {
        let e = exp1(|c| 7.0 * c[0] + 3.0);
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(1.0, 0.0), "{}", m.model);
        let t = m.model.dominant_term().unwrap();
        assert!((t.coeff - 7.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_nlogn() {
        let e = exp1(|c| 5.0 * c[0] * c[0].log2());
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(1.0, 1.0), "{}", m.model);
    }

    #[test]
    fn recovers_sqrt_on_paper_space() {
        let e = exp1(|c| 100.0 * c[0].sqrt());
        let m = fit_single(&e, &FitConfig::default()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(0.5, 0.0), "{}", m.model);
    }

    #[test]
    fn recovers_fractional_exponent() {
        // p^0.25 · log2(p): the LULESH FLOP process-scaling of Table II.
        let e = exp1(|c| 3.0 * c[0].powf(0.25) * c[0].log2());
        let m = fit_single(&e, &FitConfig::default()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(0.25, 1.0), "{}", m.model);
    }

    #[test]
    fn recovers_two_term_model() {
        // 1e4·x + 10·x^2 on a wide range: needs a second term.
        let e = Experiment::from_fn(
            vec!["p"],
            &[&[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]],
            |c| 1e4 * c[0] + 10.0 * c[0] * c[0],
        );
        let cfg = FitConfig::coarse();
        let m = fit_single(&e, &cfg).unwrap();
        assert_eq!(dominant(&m), Exponents::new(2.0, 0.0), "{}", m.model);
        assert!(m.model.terms.len() >= 2, "{}", m.model);
        assert!(m.cv_smape < 1.0, "cv {}", m.cv_smape);
    }

    #[test]
    fn noisy_data_still_finds_shape() {
        // 3% deterministic multiplicative "noise".
        let signs = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let mut i = 0;
        let e = exp1(|c| {
            let v = 50.0 * c[0] * c[0];
            let s = signs[i % 6];
            i += 1;
            v * (1.0 + 0.03 * s)
        });
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(2.0, 0.0), "{}", m.model);
        assert!(m.r2 > 0.99);
    }

    #[test]
    fn cv_resists_overfitting_where_rss_does_not() {
        // Constant data + noise: CV must prefer constant; raw-RSS selection
        // picks some growth term that chases noise.
        let noise = [0.9, 1.1, 0.95, 1.05, 1.02, 0.98];
        let mut i = 0;
        let e = exp1(|_| {
            let v = 100.0 * noise[i % 6];
            i += 1;
            v
        });
        let cfg = FitConfig::coarse();
        let cv = fit_single(&e, &cfg).unwrap();
        assert!(
            cv.model.terms.is_empty()
                || dominant(&cv).growth_cmp(&Exponents::new(0.5, 0.0)).is_lt(),
            "CV picked {}",
            cv.model
        );
        let rss = fit_single_no_cv(&e, &cfg).unwrap();
        // The no-CV fit has in-sample error no worse than the CV pick.
        assert!(rss.smape <= cv.smape + 1e-9);
    }

    #[test]
    fn rank_returns_distinct_hypotheses() {
        let e = exp1(|c| 2.0 * c[0]);
        let ranked = rank_single(&e, &FitConfig::coarse(), 3).unwrap();
        assert_eq!(ranked.len(), 3);
        let lead = dominant(&ranked[0]);
        assert_eq!(lead, Exponents::new(1.0, 0.0));
        // All hypotheses distinct.
        for i in 0..ranked.len() {
            for j in i + 1..ranked.len() {
                assert_ne!(ranked[i].model.terms, ranked[j].model.terms);
            }
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        let e = Experiment::from_fn(vec!["p", "n"], &[&[1.0, 2.0], &[1.0, 2.0]], |c| c[0]);
        assert!(matches!(
            fit_single(&e, &FitConfig::coarse()),
            Err(FitError::WrongArity {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn too_few_points_rejected() {
        let e = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0]], |c| c[0]);
        assert!(matches!(
            fit_single(&e, &FitConfig::coarse()),
            Err(FitError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn repetitions_are_aggregated() {
        let mut e = Experiment::new(vec!["p"]);
        for &x in &[2.0, 4.0, 8.0, 16.0, 32.0] {
            e.push(&[x], 10.0 * x + 1.0);
            e.push(&[x], 10.0 * x - 1.0);
        }
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        assert_eq!(dominant(&m), Exponents::new(1.0, 0.0));
        let t = m.model.dominant_term().unwrap();
        assert!((t.coeff - 10.0).abs() < 1e-6);
    }

    #[test]
    fn flagged_points_are_excluded_and_reported() {
        let mut e = Experiment::new(vec!["p"]);
        for &x in &[2.0, 4.0, 8.0, 16.0, 32.0] {
            e.push(&[x], 10.0 * x);
        }
        // A crashed run at p=64 measured garbage; it must not bend the fit.
        e.push_flagged(&[64.0], 1.0);
        let r = fit_single_robust(&e, &FitConfig::coarse()).unwrap();
        assert_eq!(
            r.fitted.model.dominant_exponents(0),
            Exponents::new(1.0, 0.0)
        );
        let t = r.fitted.model.dominant_term().unwrap();
        assert!((t.coeff - 10.0).abs() < 1e-6, "{}", r.fitted.model);
        assert_eq!(r.dropped.len(), 1);
        assert_eq!(r.dropped[0].coords, vec![64.0]);
    }

    #[test]
    fn min_points_guard_rejects_mostly_crashed_sweep() {
        let mut e = Experiment::new(vec!["p"]);
        e.push(&[2.0], 20.0);
        e.push(&[4.0], 40.0);
        for &x in &[8.0, 16.0, 32.0, 64.0] {
            e.push_flagged(&[x], 0.0);
        }
        assert!(matches!(
            fit_single_robust(&e, &FitConfig::coarse()),
            Err(FitError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn cancelled_token_aborts_the_search() {
        let e = exp1(|c| 7.0 * c[0]);
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        assert!(matches!(
            fit_single_cancellable(&e, &FitConfig::coarse(), &token),
            Err(FitError::Cancelled {
                reason: CancelReason::Deadline
            })
        ));
        // A live token leaves the result identical to the plain entry point.
        let plain = fit_single(&e, &FitConfig::coarse()).unwrap();
        let tokened =
            fit_single_cancellable(&e, &FitConfig::coarse(), &CancelToken::new()).unwrap();
        assert_eq!(plain, tokened);
    }

    #[test]
    fn nonneg_constraint_rejects_decreasing_lead() {
        let e = exp1(|c| 1000.0 - 5.0 * c[0]);
        let cfg = FitConfig::coarse(); // nonneg on
        let m = fit_single(&e, &cfg).unwrap();
        // Lead coefficient cannot be negative; best admissible fit is the
        // constant (or a tiny-growth hypothesis), never a negative slope.
        for t in &m.model.terms {
            assert!(t.coeff >= 0.0);
        }
        let mut cfg2 = cfg.clone();
        cfg2.nonneg_coeffs = false;
        let m2 = fit_single(&e, &cfg2).unwrap();
        let t = m2.model.dominant_term().unwrap();
        assert!((t.coeff + 5.0).abs() < 1e-6, "{}", m2.model);
    }
}
