//! Extended communication operations: rooted collectives (reduce, gather,
//! scatter), deferred (nonblocking-style) receives, and process groups —
//! the rest of the MPI surface that real codes lean on, so user-written
//! twins are not limited to the five study applications' patterns.

use crate::rank::Rank;
use crate::stats::OpClass;
use bytes::Bytes;

/// Tag space for the extended collectives (distinct from the core ones).
const XCOLL_TAG: u64 = 1 << 61;

/// A deferred receive: matching is postponed until [`RecvFuture::wait`],
/// letting a rank post the receive before doing local work — the
/// communication/computation overlap idiom of nonblocking MPI.
///
/// The simulator's channels buffer eagerly, so the message may physically
/// arrive at any time; the future only fixes *when the program observes
/// it*, which is what the requirement counters care about.
#[derive(Debug, Clone, Copy)]
pub struct RecvFuture {
    src: usize,
    tag: u64,
}

impl RecvFuture {
    /// Completes the receive, blocking until the message is available.
    pub fn wait(self, rank: &mut Rank) -> Bytes {
        rank.recv(self.src, self.tag)
    }
}

impl Rank {
    /// Posts a deferred receive for `(src, tag)`; complete it with
    /// [`RecvFuture::wait`].
    pub fn recv_later(&mut self, src: usize, tag: u64) -> RecvFuture {
        assert!(src < self.size(), "source {src} out of range");
        RecvFuture { src, tag }
    }

    /// Reduce (element-wise sum) of a `f64` vector onto `root` over a
    /// binomial tree: `p − 1` messages total, like `bcast` in reverse.
    /// Only `root`'s buffer holds the result afterwards.
    pub fn reduce_sum(&mut self, root: usize, data: &mut [f64]) {
        let p = self.size();
        assert!(root < p, "root {root} out of range");
        if p == 1 {
            return;
        }
        let me = self.rank();
        let vrank = (me + p - root) % p;
        let tag = XCOLL_TAG + 1;
        // Children (higher vranks in each binomial subtree) send up.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // This vrank sends to its parent and is done.
                let vparent = vrank - mask;
                let parent = (vparent + root) % p;
                self.send_f64s_class(OpClass::Allreduce, parent, tag + mask as u64, data);
                return;
            }
            // Receive from the child at vrank + mask, if it exists.
            let vchild = vrank + mask;
            if vchild < p {
                let child = (vchild + root) % p;
                let theirs = self.recv_f64s_class(OpClass::Allreduce, child, tag + mask as u64);
                assert_eq!(theirs.len(), data.len(), "reduce length mismatch");
                for (a, b) in data.iter_mut().zip(&theirs) {
                    *a += b;
                }
            }
            mask <<= 1;
        }
    }

    /// Gathers every rank's block onto `root` (direct sends, `p − 1`
    /// messages). Non-root ranks receive an empty vector.
    pub fn gather(&mut self, root: usize, mine: &[u8]) -> Vec<Bytes> {
        let p = self.size();
        assert!(root < p, "root {root} out of range");
        let tag = XCOLL_TAG + 2;
        if self.rank() == root {
            let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
            out[root] = Some(Bytes::copy_from_slice(mine));
            #[allow(clippy::needless_range_loop)]
            for src in 0..p {
                if src != root {
                    out[src] = Some(self.recv_class(OpClass::Allgather, src, tag));
                }
            }
            out.into_iter().map(|b| b.expect("gathered")).collect()
        } else {
            self.send_class(OpClass::Allgather, root, tag, mine);
            Vec::new()
        }
    }

    /// Scatters `blocks` (one per rank, significant only at `root`) from
    /// `root`; every rank returns its own block.
    ///
    /// # Panics
    /// Panics at `root` if `blocks.len() != size`.
    pub fn scatter(&mut self, root: usize, blocks: &[Vec<u8>]) -> Bytes {
        let p = self.size();
        assert!(root < p, "root {root} out of range");
        let tag = XCOLL_TAG + 3;
        if self.rank() == root {
            assert_eq!(blocks.len(), p, "one block per rank at the root");
            for (dst, block) in blocks.iter().enumerate() {
                if dst != root {
                    self.send_class(OpClass::Bcast, dst, tag, block);
                }
            }
            Bytes::copy_from_slice(&blocks[root])
        } else {
            self.recv_class(OpClass::Bcast, root, tag)
        }
    }
}

/// A process group over a subset of ranks: a "sub-communicator" view that
/// translates group-local rank ids to world ids. Collectives over groups
/// are composed from point-to-point operations by the caller; the group
/// provides the id algebra and membership queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// Creates a group from world rank ids (deduplicated, order kept).
    pub fn new(members: Vec<usize>) -> Self {
        let mut seen = Vec::new();
        for m in members {
            if !seen.contains(&m) {
                seen.push(m);
            }
        }
        Group { members: seen }
    }

    /// Splits `world_size` ranks by color: ranks with equal
    /// `color(world_rank)` land in the same group, ordered by world rank —
    /// the `MPI_Comm_split` idiom.
    pub fn split(world_size: usize, color: impl Fn(usize) -> usize, my_color: usize) -> Group {
        Group::new((0..world_size).filter(|&r| color(r) == my_color).collect())
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Group-local id of a world rank, if a member.
    pub fn local_rank(&self, world_rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world_rank)
    }

    /// World id of a group-local rank.
    ///
    /// # Panics
    /// Panics if `local` is out of range.
    pub fn world_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// True if `world_rank` belongs to the group.
    pub fn contains(&self, world_rank: usize) -> bool {
        self.members.contains(&world_rank)
    }

    /// All members in group order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_ranks, total_stats};

    #[test]
    fn reduce_sums_onto_root() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, p - 1] {
                let results = run_ranks(p, move |r| {
                    let mut v = vec![r.rank() as f64, 1.0];
                    r.reduce_sum(root, &mut v);
                    v
                });
                let expect0: f64 = (0..p).map(|i| i as f64).sum();
                assert_eq!(results[root].value, vec![expect0, p as f64], "p={p}");
            }
        }
    }

    #[test]
    fn reduce_moves_p_minus_1_messages() {
        let p = 8usize;
        let elems = 4;
        let results = run_ranks(p, |r| {
            let mut v = vec![1.0f64; elems];
            r.reduce_sum(0, &mut v);
        });
        let t = total_stats(&results);
        assert_eq!(
            t.total_sent(),
            ((p - 1) * elems * 8) as u64,
            "binomial reduce sends p−1 vectors"
        );
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let p = 6usize;
        let results = run_ranks(p, |r| {
            let mine = [r.rank() as u8 * 3];
            r.gather(2, &mine)
                .into_iter()
                .map(|b| b[0])
                .collect::<Vec<_>>()
        });
        assert_eq!(results[2].value, vec![0, 3, 6, 9, 12, 15]);
        for (i, res) in results.iter().enumerate() {
            if i != 2 {
                assert!(res.value.is_empty());
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let p = 5usize;
        let results = run_ranks(p, |r| {
            let blocks: Vec<Vec<u8>> = if r.rank() == 1 {
                (0..p).map(|i| vec![10 + i as u8]).collect()
            } else {
                Vec::new() // ignored away from the root
            };
            r.scatter(1, &blocks)[0]
        });
        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.value, 10 + i as u8);
        }
    }

    #[test]
    fn deferred_receive_overlaps_work() {
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send(1, 9, b"payload");
                0usize
            } else {
                let fut = r.recv_later(0, 9);
                // "Local work" happens here before the wait.
                let local: usize = (0..100).sum();
                let data = fut.wait(r);
                local + data.len()
            }
        });
        assert_eq!(results[1].value, 4950 + 7);
    }

    #[test]
    fn group_split_by_parity() {
        let even = Group::split(10, |r| r % 2, 0);
        let odd = Group::split(10, |r| r % 2, 1);
        assert_eq!(even.size(), 5);
        assert_eq!(odd.members(), &[1, 3, 5, 7, 9]);
        assert_eq!(even.local_rank(4), Some(2));
        assert_eq!(even.local_rank(3), None);
        assert_eq!(odd.world_rank(0), 1);
        assert!(odd.contains(9));
        assert!(!odd.contains(2));
    }

    #[test]
    fn group_dedup_keeps_order() {
        let g = Group::new(vec![3, 1, 3, 2, 1]);
        assert_eq!(g.members(), &[3, 1, 2]);
    }

    #[test]
    fn group_collective_composition() {
        // A ring exchange inside the even-ranks group only.
        let results = run_ranks(6, |r| {
            let g = Group::split(r.size(), |x| x % 2, r.rank() % 2);
            if r.rank() % 2 == 0 {
                let me = g.local_rank(r.rank()).unwrap();
                let next = g.world_rank((me + 1) % g.size());
                let prev = g.world_rank((me + g.size() - 1) % g.size());
                r.send(next, 50, &[r.rank() as u8]);
                let got = r.recv(prev, 50);
                got[0] as usize
            } else {
                usize::MAX
            }
        });
        assert_eq!(results[0].value, 4);
        assert_eq!(results[2].value, 0);
        assert_eq!(results[4].value, 2);
        assert_eq!(results[1].value, usize::MAX);
    }
}
