//! Property-based checks of the router's consistent-hash ring: the two
//! guarantees the rest of the router builds on — balance and minimal
//! disruption — hold across arbitrary replica sets, not just the fixed
//! fixtures in `crates/router/src/ring.rs`.

use exareq::router::HashRing;
use proptest::prelude::*;

/// Replica address lists of 3–16 distinct `HOST:PORT` strings, the shape
/// `--replicas` produces.
fn arb_replicas() -> impl Strategy<Value = Vec<String>> {
    (3usize..=16).prop_flat_map(|n| {
        // Distinct ports guarantee distinct addresses; the host octet
        // varies too so hashes are not artificially correlated.
        Just(
            (0..n)
                .map(|i| format!("10.0.{}.{}:{}", i % 7, i, 8400 + i))
                .collect::<Vec<String>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Balance: over 1024 distinct keys, no replica's primary share
    /// exceeds 2x the uniform share, and none is starved outright.
    #[test]
    fn primary_distribution_is_within_2x_of_uniform(
        replicas in arb_replicas(),
        salt in 0u64..1_000_000,
    ) {
        let ring = HashRing::new(&replicas);
        let keys = 1024usize;
        let mut counts = vec![0usize; replicas.len()];
        for k in 0..keys {
            let key = format!("model-{salt}-{k}");
            let primary = ring.ordered(&key)[0];
            counts[primary] += 1;
        }
        let cap = 2 * keys / replicas.len();
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                c <= cap,
                "replica {i} of {} owns {c}/{keys} keys (cap {cap})",
                replicas.len()
            );
            prop_assert!(c > 0, "replica {i} of {} owns no keys", replicas.len());
        }
    }

    /// Minimal disruption: removing one replica remaps only the keys it
    /// was primary for — every other key keeps its primary *address*.
    #[test]
    fn removing_a_replica_remaps_only_its_keys(
        replicas in arb_replicas(),
        victim_seed in any::<prop::sample::Index>(),
        salt in 0u64..1_000_000,
    ) {
        let ring_full = HashRing::new(&replicas);
        let victim = victim_seed.get(&replicas).clone();
        let survivors: Vec<String> = replicas
            .iter()
            .filter(|r| **r != victim)
            .cloned()
            .collect();
        let ring_less = HashRing::new(&survivors);
        for k in 0..512 {
            let key = format!("model-{salt}-{k}");
            let before = ring_full.primary(&key).expect("nonempty ring");
            let after = ring_less.primary(&key).expect("nonempty ring");
            if before != victim {
                prop_assert_eq!(
                    before,
                    after,
                    "{} moved although its primary {} survived",
                    key,
                    before
                );
            }
        }
    }

    /// The failover walk is a permutation: every replica appears exactly
    /// once, whatever the key.
    #[test]
    fn ordered_walk_is_a_permutation(
        replicas in arb_replicas(),
        key in "[A-Za-z0-9_-]{1,32}",
    ) {
        let ring = HashRing::new(&replicas);
        let mut order = ring.ordered(&key);
        prop_assert_eq!(order.len(), replicas.len());
        order.sort_unstable();
        let expected: Vec<usize> = (0..replicas.len()).collect();
        prop_assert_eq!(order, expected);
    }
}
