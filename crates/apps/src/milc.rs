//! Behavioural twin of **MILC** (`su3_rmd`) — MIMD Lattice Computation,
//! four-dimensional SU(3) lattice QCD.
//!
//! Target per-process requirement signature (Table II):
//!
//! | metric          | model                                         |
//! |-----------------|-----------------------------------------------|
//! | #Bytes used     | `c · n`                                       |
//! | #FLOP           | `c₁ · n + c₂ · n log p`                       |
//! | #Bytes sent/rcv | `c·Allreduce(p) + c·Bcast(p) + c·n` (p2p)     |
//! | #Loads & stores | `c₀ + c₁ · n log n + c₂ · p^1.5`              |
//! | Stack distance  | `c · n` ⚠                                     |
//!
//! Structure: a conjugate-gradient solver with a *fixed* iteration count
//! (so the per-iteration allreduce leaves a clean `Allreduce(p)` signature),
//! a one-time parameter broadcast, boundary-overlap recomputation growing
//! with the decomposition depth (`n log p` FLOPs), indexed gather/scatter
//! traffic (`n log n`), and a global site-ordering exchange buffer
//! (`p^1.5`). MILC is the one study application whose *locality* degrades
//! with the problem size: its staggered-fermion access pattern walks the
//! whole lattice between reuses, so the stack distance grows linearly in
//! `n` — the paper's one ⚠ for MILC.

use crate::shapes::{log2f, ops, powf, ring_exchange, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// Conjugate-gradient iterations (fixed — MILC-style solves to fixed
/// residual behave near-constant per trajectory at these scales).
const CG_ITERS: usize = 25;

/// The MILC behavioural twin.
#[derive(Debug, Clone, Copy, Default)]
pub struct Milc;

impl MiniApp for Milc {
    fn name(&self) -> &'static str {
        "MILC"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size() as u64;
        let nf = n as f64;

        // Gauge links: 4 directions × SU(3) complex matrices per site.
        let mut links = Arena::new(n as usize * 64);
        prof.footprint.alloc(links.bytes());

        // One-time parameter broadcast from rank 0.
        prof.callpath.enter("setup");
        {
            let before = rank.stats().total();
            let params = vec![1u8; 4096];
            let _ = rank.bcast(0, &params);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
        }
        // Layout-table initialization: a constant-size scan independent of
        // p and n (the c₀ term of the loads/stores model).
        links.stream(2_000_000, prof.callpath.counters());
        prof.callpath.exit();

        // Link update (linear in the local lattice volume).
        prof.callpath.enter("update_u");
        links.compute(ops(160.0 * nf), prof.callpath.counters());
        prof.callpath.exit();

        // Boundary-overlap recomputation: grows with decomposition depth.
        prof.callpath.enter("overlap_recompute");
        links.compute(ops(2.0 * nf * log2f(p)), prof.callpath.counters());
        prof.callpath.exit();

        // CG solve: fixed iterations; per iteration a residual allreduce,
        // a halo exchange linear in n, and local stencil FLOPs.
        prof.callpath.enter("ks_congrad");
        let halo = vec![0u8; ops(2.0 * nf) as usize];
        for it in 0..CG_ITERS {
            links.compute(ops(2.0 * nf), prof.callpath.counters());
            let before = rank.stats().total();
            let mut dot = [0.0f64; 16];
            rank.allreduce_sum(&mut dot);
            ring_exchange(rank, 300 + it as u64 * 2, &halo, &halo);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
        }
        prof.callpath.exit();

        // Indexed gather/scatter over the site tables: n·log n traffic.
        prof.callpath.enter("gather_scatter");
        links.stream(ops(40.0 * nf * log2f(n)), prof.callpath.counters());
        prof.callpath.exit();

        // Global site-ordering exchange buffers: p^1.5 traffic.
        prof.callpath.enter("site_ordering");
        links.stream(ops(2000.0 * powf(p, 1.5)), prof.callpath.counters());
        prof.callpath.exit();
    }

    fn run_locality(&self, n: u64, sampler: &mut BurstSampler) {
        // Staggered-fermion traversal touches the whole local lattice
        // between consecutive reuses: working set ∝ n → stack distance ∝ n.
        let g_fermion = sampler.register_group("staggered fermion field");
        let g_phase = sampler.register_group("phase table");
        let working_set = 8 * n.max(16);
        for _pass in 0..3 {
            for i in 0..working_set {
                sampler.access(g_fermion, 0x10_0000 + i);
            }
            // Phase table reuse is local (constant window).
            for i in 0..32 {
                sampler.access(g_phase, 0x90_0000 + i);
            }
        }
        // Top up the small-window group past the sample filter.
        for _pass in 0..4 {
            for i in 0..32 {
                sampler.access(g_phase, 0x90_0000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use exareq_locality::{BurstSampler, BurstSchedule};

    #[test]
    fn flops_dominated_by_linear_n() {
        let a = measure(&Milc, 4, 512);
        let b = measure(&Milc, 4, 1024);
        let r = b.flops / a.flops;
        assert!((r - 2.0).abs() < 0.02, "{r}");
    }

    #[test]
    fn flops_have_mild_logp_growth() {
        let a = measure(&Milc, 2, 1024);
        let b = measure(&Milc, 32, 1024);
        // (c1 + c2·log 32)/(c1 + c2·log 2) with c1=212, c2=2 → ≈ 1.037.
        let r = b.flops / a.flops;
        assert!(r > 1.02 && r < 1.08, "{r}");
    }

    #[test]
    fn allreduce_count_is_fixed() {
        let a = measure(&Milc, 4, 512);
        let b = measure(&Milc, 4, 2048);
        let ar_a = a.comm_class("Allreduce");
        let ar_b = b.comm_class("Allreduce");
        assert!(ar_a > 0.0);
        assert_eq!(ar_a, ar_b, "allreduce volume must not depend on n");
    }

    #[test]
    fn bcast_present_p2p_linear_in_n() {
        let a = measure(&Milc, 8, 512);
        let b = measure(&Milc, 8, 1024);
        assert!(a.comm_class("Bcast") > 0.0);
        let r = b.comm_class("P2P") / a.comm_class("P2P");
        assert!((r - 2.0).abs() < 0.05, "{r}");
    }

    #[test]
    fn loads_have_constant_term() {
        // At small n and p the constant dominates.
        let a = measure(&Milc, 2, 64);
        assert!(a.loads_stores > 1.9e6, "{}", a.loads_stores);
    }

    #[test]
    fn loads_p15_term_visible() {
        let a = measure(&Milc, 2, 256);
        let b = measure(&Milc, 32, 256);
        let delta = b.loads_stores - a.loads_stores;
        // ≈ 2000·(32^1.5 − 2^1.5) ≈ 2000·178 = 356k.
        assert!(delta > 2.5e5, "p^1.5 growth missing: {delta}");
    }

    #[test]
    fn stack_distance_grows_linearly_with_n() {
        let run = |n: u64| {
            let mut s = BurstSampler::new(BurstSchedule::always());
            Milc.run_locality(n, &mut s);
            s.groups()[0].median_stack().unwrap()
        };
        let d1 = run(256);
        let d2 = run(1024);
        let r = d2 / d1;
        assert!((r - 4.0).abs() < 0.05, "{r}");
    }
}
