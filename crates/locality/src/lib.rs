//! # exareq-locality — memory-locality analysis
//!
//! The Threadspotter substitute of the reproduction: exact reuse- and
//! stack-distance computation over memory access traces, burst sampling,
//! instruction-group attribution, the ≥100-sample filter and median
//! aggregation — the full locality methodology of Section II-B of the
//! paper, implemented from the published semantics.
//!
//! ```
//! use exareq_locality::{BurstSampler, BurstSchedule};
//!
//! let mut sampler = BurstSampler::new(BurstSchedule::always());
//! let group = sampler.register_group("array A in sweep loop");
//! for pass in 0..3 {
//!     for addr in 0..8u64 {
//!         sampler.access(group, addr);
//!     }
//!     let _ = pass;
//! }
//! // Cyclic reuse over 8 addresses → steady-state stack distance 7.
//! assert_eq!(sampler.groups()[group].median_stack(), Some(7.0));
//! ```

#![warn(missing_docs)]

pub mod distance;
pub mod mrc;
pub mod sampler;

pub use distance::{AccessDistances, DistanceAnalyzer, NaiveAnalyzer};
pub use mrc::{miss_ratio_curve, MissRatioCurve};
pub use sampler::{BurstSampler, BurstSchedule, GroupId, GroupSamples, MIN_SAMPLES};
