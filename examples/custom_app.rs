//! Bring-your-own application: implement the `MiniApp` trait for your own
//! kernel and push it through the complete requirements-engineering
//! pipeline — measurement, model generation, bottleneck detection, and a
//! co-design verdict — in under a hundred lines.
//!
//! The kernel here is a toy spectral solver: FFT-flavored `n log n` compute,
//! a butterfly exchange whose per-process volume is constant in `p`, and a
//! transpose whose traffic grows with `n`.
//!
//! Run with `cargo run --release --example custom_app`.

use exareq::apps::shapes::{log2f, ops, ring_exchange, Arena};
use exareq::apps::{survey_app, AppGrid, MiniApp};
use exareq::codesign::{analyze_upgrade, SystemSkeleton, Upgrade};
use exareq::core::multiparam::MultiParamConfig;
use exareq::locality::BurstSampler;
use exareq::pipeline::model_requirements;
use exareq::profile::ProcessProfile;
use exareq::sim::Rank;

struct SpectralSolver;

impl MiniApp for SpectralSolver {
    fn name(&self) -> &'static str {
        "SpectralSolver"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let nf = n as f64;
        let mut field = Arena::new(2 * n as usize);
        prof.footprint.alloc(field.bytes());

        // Local FFT passes: n log n FLOPs, same traffic.
        prof.callpath.enter("fft");
        field.compute(ops(10.0 * nf * log2f(n)), prof.callpath.counters());
        field.stream(ops(6.0 * nf * log2f(n)), prof.callpath.counters());
        prof.callpath.exit();

        // Distributed transpose: each rank ships half its slab around the
        // ring and reduces a small residual globally.
        prof.callpath.enter("transpose");
        let before = rank.stats().total();
        let slab = vec![0u8; (4 * n) as usize];
        ring_exchange(rank, 900, &slab, &slab);
        let mut residual = [0.0f64; 8];
        rank.allreduce_sum(&mut residual);
        prof.callpath.add_comm_bytes(rank.stats().total() - before);
        prof.callpath.exit();
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Butterfly working set: fixed radix window.
        let g = sampler.register_group("butterfly window");
        for _pass in 0..4 {
            for i in 0..64u64 {
                sampler.access(g, 0x7000 + i);
            }
        }
    }
}

fn main() {
    let app = SpectralSolver;
    println!("surveying {} ...", app.name());
    let survey = survey_app(&app, &AppGrid::small());
    let modeled =
        model_requirements(&survey, &MultiParamConfig::default()).expect("modeling succeeds");

    println!("\nrequirement models:");
    for (label, fm) in &modeled.fitted {
        println!(
            "  {label:<28} {}   [cv-SMAPE {:.3}%]",
            fm.model, fm.cv_smape
        );
    }

    let warnings = modeled.requirements.warnings();
    if warnings.is_empty() {
        println!("\nno scaling warnings — the kernel is co-design friendly");
    } else {
        println!("\nwarnings:");
        for w in &warnings {
            println!("  (!) {w}");
        }
    }

    // Co-design verdict: how would it respond to the Table III upgrades?
    let base = SystemSkeleton::new(1e5, 1e9);
    println!("\nupgrade response on a 10^5-socket base system:");
    for up in Upgrade::ALL {
        match analyze_upgrade(&modeled.requirements, &base, &up) {
            Ok(o) => println!(
                "  {:<20} problem ×{:.2}, overall ×{:.2}, comp ×{:.2}, comm ×{:.2}",
                up.description, o.ratio_n, o.ratio_overall, o.ratio_rates[0], o.ratio_rates[1]
            ),
            Err(e) => println!("  {:<20} {e}", up.description),
        }
    }
}
