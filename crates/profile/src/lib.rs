//! # exareq-profile — hardware-independent requirement profiling
//!
//! The Score-P/PAPI/`getrusage` substitute of the reproduction: per-process
//! counters for the Table I requirement metrics, a call-path profiler for
//! location-level attribution, a resident-footprint tracker, the
//! [`survey::Survey`] container that carries measured values from the
//! simulated runs to the model generator, and the crash-consistent
//! [`journal::SurveyJournal`] that makes interrupted sweeps resumable.
//!
//! ```
//! use exareq_profile::{CallPathProfiler, FootprintTracker};
//!
//! let mut prof = CallPathProfiler::new();
//! let mut fp = FootprintTracker::new();
//! fp.alloc(1 << 20); // register the working set
//! prof.scoped("sweep", |p| {
//!     p.counters().add_flops(1_000);
//!     p.counters().add_loads(2_000);
//! });
//! let (totals, _) = prof.totals();
//! assert_eq!(totals.flops, 1_000);
//! assert_eq!(fp.peak(), 1 << 20);
//! ```

#![warn(missing_docs)]

pub mod callpath;
pub mod counters;
pub mod footprint;
pub mod io;
pub mod journal;
pub mod minijson;
pub mod obslog;
pub mod survey;
pub mod surveyjson;

pub use callpath::{CallNode, CallPathProfiler, NodeId};
pub use counters::{Counters, Fpu};
pub use footprint::{f64_bytes, FootprintTracker, TrackedAlloc};
pub use io::{IoBytes, IoTracker};
pub use journal::{JournalEntry, JournalError, SurveyJournal, SurveyManifest};
pub use obslog::{ObsEntry, ObsLine, ObsManifest, ObservationLog, OBSLOG_FORMAT_VERSION};
pub use survey::{
    MetricKind, Observation, SkippedConfig, Survey, SurveyLoadError, SURVEY_SCHEMA_VERSION,
};

/// Everything a behavioural twin needs while running on one rank: counters,
/// footprint and call-path attribution bundled together.
#[derive(Debug, Clone, Default)]
pub struct ProcessProfile {
    /// Call-path profiler (owns the whole-program counters at its root).
    pub callpath: CallPathProfiler,
    /// Resident-footprint ledger.
    pub footprint: FootprintTracker,
    /// Storage I/O counters (per channel).
    pub io: IoTracker,
}

impl ProcessProfile {
    /// Fresh profile for one process.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whole-program counters (inclusive root totals).
    pub fn totals(&self) -> Counters {
        self.callpath.totals().0
    }

    /// Whole-program communication bytes attributed via the profiler.
    pub fn comm_bytes(&self) -> u64 {
        self.callpath.totals().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_profile_bundles() {
        let mut pp = ProcessProfile::new();
        pp.footprint.alloc(64);
        pp.callpath.counters().add_flops(7);
        pp.callpath.add_comm_bytes(32);
        pp.io.write("checkpoint", 128);
        assert_eq!(pp.totals().flops, 7);
        assert_eq!(pp.comm_bytes(), 32);
        assert_eq!(pp.footprint.peak(), 64);
        assert_eq!(pp.io.total(), 128);
    }
}
