//! Fitted-model artifacts: [`AppRequirements`] encoded with the in-tree
//! minijson codec, so a model fitted once can be served forever without
//! refitting — and without serde.
//!
//! A requirements artifact is distinguished from a survey artifact by its
//! `"kind": "requirements"` member; the registry dispatches on it. The
//! schema is versioned independently of the survey schema and follows the
//! same policy: older accepted, newer rejected loudly.

use exareq_codesign::AppRequirements;
use exareq_core::pmnf::{Exponents, Model, Term};
use exareq_profile::minijson::{self, Json};

/// Current requirements-artifact schema version.
pub const REQUIREMENTS_SCHEMA_VERSION: u32 = 1;

/// The artifact's `kind` discriminator value.
pub const REQUIREMENTS_KIND: &str = "requirements";

/// The five requirement models, in artifact member order. Also the set of
/// valid `metric` names for `POST /observations`.
pub const MODEL_FIELDS: [&str; 5] = [
    "bytes_used",
    "flops",
    "comm_bytes",
    "loads_stores",
    "stack_distance",
];

fn model_to_json(m: &Model) -> Json {
    Json::Obj(vec![
        ("constant".into(), Json::Num(m.constant)),
        (
            "params".into(),
            Json::Arr(m.params.iter().map(|p| Json::Str(p.clone())).collect()),
        ),
        (
            "terms".into(),
            Json::Arr(
                m.terms
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("coeff".into(), Json::Num(t.coeff)),
                            (
                                "factors".into(),
                                Json::Arr(
                                    t.factors
                                        .iter()
                                        .map(|e| {
                                            Json::Obj(vec![
                                                ("poly".into(), Json::Num(e.poly)),
                                                ("log".into(), Json::Num(e.log)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn model_from_json(v: &Json, field: &str) -> Result<Model, String> {
    let constant = v
        .get("constant")
        .and_then(Json::to_f64_lossless)
        .ok_or_else(|| format!("{field}.constant"))?;
    let params = v
        .get("params")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{field}.params"))?
        .iter()
        .map(|p| p.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| format!("{field}.params"))?;
    let terms = v
        .get("terms")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{field}.terms"))?
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let coeff = t
                .get("coeff")
                .and_then(Json::to_f64_lossless)
                .ok_or_else(|| format!("{field}.terms[{i}].coeff"))?;
            let factors = t
                .get("factors")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{field}.terms[{i}].factors"))?
                .iter()
                .map(|e| {
                    match (
                        e.get("poly").and_then(Json::to_f64_lossless),
                        e.get("log").and_then(Json::to_f64_lossless),
                    ) {
                        (Some(poly), Some(log)) => Some(Exponents::new(poly, log)),
                        _ => None,
                    }
                })
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| format!("{field}.terms[{i}].factors"))?;
            if factors.len() != params.len() {
                return Err(format!("{field}.terms[{i}]: one factor per parameter"));
            }
            Ok(Term::new(coeff, factors))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Model::new(constant, terms, params))
}

/// Fit-quality figures for one metric's model, carried in the artifact so
/// `/models` and `/predict` can surface them without re-running LOO.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricQuality {
    /// Leave-one-out cross-validated SMAPE (percent).
    pub cv_smape: f64,
    /// Half-width of the 95% relative confidence interval on predictions
    /// (from LOO residuals): `pred · (1 ± ci95_rel)` brackets the truth.
    pub ci95_rel: f64,
    /// Observations the fit was computed from.
    pub observations: u64,
}

/// The optional `"quality"` artifact member written by the refresher.
///
/// Artifacts without it (the one-shot `exareq models` path) encode
/// byte-identically to schema v1 files from before the refresh subsystem
/// existed; readers of either vintage ignore members they do not know.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArtifactQuality {
    /// Registry generation at which the last refit was published.
    pub refit_generation: u64,
    /// Per-metric quality, keyed by artifact field name (`flops`, …).
    pub metrics: std::collections::BTreeMap<String, MetricQuality>,
}

fn quality_to_json(q: &ArtifactQuality) -> Json {
    let metrics = q
        .metrics
        .iter()
        .map(|(field, m)| {
            (
                field.clone(),
                Json::Obj(vec![
                    ("cv_smape".into(), Json::Num(m.cv_smape)),
                    ("ci95_rel".into(), Json::Num(m.ci95_rel)),
                    ("observations".into(), Json::Num(m.observations as f64)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        (
            "refit_generation".into(),
            Json::Num(q.refit_generation as f64),
        ),
        ("metrics".into(), Json::Obj(metrics)),
    ])
}

/// Decodes the optional `"quality"` member: `Ok(None)` when absent.
///
/// # Errors
/// The offending field path, same style as the model decoders.
pub fn quality_from_json(v: &Json) -> Result<Option<ArtifactQuality>, String> {
    let q = match v.get("quality") {
        Some(q) => q,
        None => return Ok(None),
    };
    let as_u64 = |x: &Json| {
        x.to_f64_lossless()
            .filter(|f| f.fract() == 0.0 && *f >= 0.0 && *f <= 9.007_199_254_740_992e15)
            .map(|f| f as u64)
    };
    let refit_generation = v
        .get("quality")
        .and_then(|q| q.get("refit_generation"))
        .and_then(as_u64)
        .ok_or("quality.refit_generation")?;
    let mut metrics = std::collections::BTreeMap::new();
    if let Json::Obj(members) = q.get("metrics").ok_or("quality.metrics")? {
        for (field, m) in members {
            let cv_smape = m
                .get("cv_smape")
                .and_then(Json::to_f64_lossless)
                .ok_or_else(|| format!("quality.metrics.{field}.cv_smape"))?;
            let ci95_rel = m
                .get("ci95_rel")
                .and_then(Json::to_f64_lossless)
                .ok_or_else(|| format!("quality.metrics.{field}.ci95_rel"))?;
            let observations = m
                .get("observations")
                .and_then(as_u64)
                .ok_or_else(|| format!("quality.metrics.{field}.observations"))?;
            metrics.insert(
                field.clone(),
                MetricQuality {
                    cv_smape,
                    ci95_rel,
                    observations,
                },
            );
        }
    } else {
        return Err("quality.metrics".to_string());
    }
    Ok(Some(ArtifactQuality {
        refit_generation,
        metrics,
    }))
}

/// Encodes fitted requirements as a minijson artifact value.
pub fn requirements_to_json(app: &AppRequirements) -> Json {
    let models = [
        &app.bytes_used,
        &app.flops,
        &app.comm_bytes,
        &app.loads_stores,
        &app.stack_distance,
    ];
    let mut members = vec![
        ("kind".into(), Json::Str(REQUIREMENTS_KIND.into())),
        (
            "schema_version".into(),
            Json::Num(f64::from(REQUIREMENTS_SCHEMA_VERSION)),
        ),
        ("app".into(), Json::Str(app.name.clone())),
    ];
    for (field, model) in MODEL_FIELDS.iter().zip(models) {
        members.push(((*field).to_string(), model_to_json(model)));
    }
    Json::Obj(members)
}

/// Encodes fitted requirements as a single JSON line.
pub fn requirements_to_string(app: &AppRequirements) -> String {
    requirements_to_json(app).to_line()
}

/// [`requirements_to_json`] plus the refresher's `"quality"` member.
/// With `quality: None` the output is byte-identical to
/// [`requirements_to_string`].
pub fn requirements_to_string_with_quality(
    app: &AppRequirements,
    quality: Option<&ArtifactQuality>,
) -> String {
    let mut v = requirements_to_json(app);
    if let (Json::Obj(members), Some(q)) = (&mut v, quality) {
        members.push(("quality".into(), quality_to_json(q)));
    }
    v.to_line()
}

/// True when a parsed JSON value claims to be a requirements artifact.
pub fn is_requirements_artifact(v: &Json) -> bool {
    v.get("kind").and_then(Json::as_str) == Some(REQUIREMENTS_KIND)
}

/// Decodes a requirements artifact.
///
/// # Errors
/// A one-line reason: the offending field for shape problems, or the
/// journal-style version complaint when the artifact is newer than this
/// build.
pub fn requirements_from_json(v: &Json) -> Result<AppRequirements, String> {
    let version = v
        .get("schema_version")
        .and_then(Json::to_f64_lossless)
        .filter(|x| x.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(x))
        .map(|x| x as u32)
        .ok_or("schema_version")?;
    if version > REQUIREMENTS_SCHEMA_VERSION {
        return Err(format!(
            "requirements schema version {version} is newer than the newest supported \
             version {REQUIREMENTS_SCHEMA_VERSION}; upgrade exareq to read this file"
        ));
    }
    let name = v
        .get("app")
        .and_then(Json::as_str)
        .ok_or("app")?
        .to_string();
    let mut models = MODEL_FIELDS
        .iter()
        .map(|field| model_from_json(v.get(field).ok_or_else(|| field.to_string())?, field))
        .collect::<Result<Vec<_>, String>>()?
        .into_iter();
    Ok(AppRequirements {
        name,
        bytes_used: models.next().expect("five models"),
        flops: models.next().expect("five models"),
        comm_bytes: models.next().expect("five models"),
        loads_stores: models.next().expect("five models"),
        stack_distance: models.next().expect("five models"),
    })
}

/// Decodes a requirements artifact from JSON text.
///
/// # Errors
/// Same as [`requirements_from_json`], plus minijson syntax errors.
pub fn requirements_from_str(text: &str) -> Result<AppRequirements, String> {
    let v = minijson::parse(text).map_err(|e| e.to_string())?;
    if !is_requirements_artifact(&v) {
        return Err("not a requirements artifact (missing kind)".to_string());
    }
    requirements_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_codesign::catalog;

    #[test]
    fn paper_models_round_trip() {
        for app in catalog::paper_models() {
            let text = requirements_to_string(&app);
            let back = requirements_from_str(&text).expect("round trip");
            assert_eq!(back, app, "{}", app.name);
            // Evaluations agree exactly — the codec writes f64s losslessly.
            let coords = [64.0, 4096.0];
            assert_eq!(back.flops.eval(&coords), app.flops.eval(&coords));
        }
    }

    #[test]
    fn rejects_newer_schema_loudly() {
        let app = catalog::paper_models().remove(0);
        let text =
            requirements_to_string(&app).replace("\"schema_version\":1", "\"schema_version\":9");
        let err = requirements_from_str(&text).unwrap_err();
        assert!(err.contains("newer than the newest supported"), "{err}");
    }

    #[test]
    fn quality_block_round_trips_and_absence_is_byte_identical() {
        let app = catalog::paper_models().remove(0);
        // No quality → exactly the pre-refresh encoding.
        assert_eq!(
            requirements_to_string_with_quality(&app, None),
            requirements_to_string(&app)
        );

        let mut quality = ArtifactQuality {
            refit_generation: 7,
            metrics: Default::default(),
        };
        quality.metrics.insert(
            "flops".to_string(),
            MetricQuality {
                cv_smape: 3.25,
                ci95_rel: 0.0625,
                observations: 17,
            },
        );
        let text = requirements_to_string_with_quality(&app, Some(&quality));
        let v = minijson::parse(&text).unwrap();
        // The decorated artifact still parses as plain requirements …
        assert_eq!(requirements_from_str(&text).unwrap(), app);
        // … and the quality member round-trips.
        assert_eq!(quality_from_json(&v).unwrap(), Some(quality));
        // Plain artifacts decode to no quality, not an error.
        let plain = minijson::parse(&requirements_to_string(&app)).unwrap();
        assert_eq!(quality_from_json(&plain).unwrap(), None);
        // Malformed quality names the field.
        let bad = minijson::parse(r#"{"quality":{"refit_generation":1}}"#).unwrap();
        assert!(quality_from_json(&bad).unwrap_err().contains("metrics"));
    }

    #[test]
    fn shape_errors_name_the_field() {
        let err = requirements_from_str(
            r#"{"kind":"requirements","schema_version":1,"app":"X","bytes_used":{}}"#,
        )
        .unwrap_err();
        assert!(err.contains("bytes_used"), "{err}");
    }
}
