//! The router daemon: listener, worker pool, replica probers, drain.
//!
//! The request engine deliberately mirrors `exareq-serve`'s: a
//! non-blocking acceptor feeding a bounded queue, a fixed worker pool,
//! and a graceful drain that keeps the listener answering `503` (with
//! `GET /healthz` reporting `"status":"draining"`) until in-flight work
//! finishes. What differs is what a worker *does* with a request: the
//! proxied endpoints go through [`Proxy::forward`]; `/healthz` and
//! `/metrics` are answered by the router itself.
//!
//! One prober thread per replica drives the hysteresis health table on
//! the configured cadence: a `200` from the replica's `/healthz` records
//! an ok, anything else — connection refused, timeout, or the non-200 a
//! draining replica serves — records a failure. That last case is the
//! point of the serve-side drain window: a replica announces its own
//! departure and the router moves traffic away before the listener
//! disappears.

use crate::proxy::{Proxy, ProxyConfig};
use crate::{metrics, ring::HashRing};
use exareq_core::cancel::{CancelToken, Deadline};
use exareq_net::client::{sleep_cancellable, ClientConfig, HttpClient};
use exareq_profile::minijson::Json;
use exareq_serve::api;
use exareq_serve::http::{parse_request, HttpError, Request, Response};
use exareq_serve::registry::ModelRegistry;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything `exareq router` configures.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:8470` (port 0 picks one).
    pub addr: SocketAddr,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker.
    pub queue_depth: usize,
    /// `exareq serve` replica addresses, `HOST:PORT` each.
    pub replicas: Vec<String>,
    /// Directory of model artifacts for the degraded-mode fallback.
    pub model_dir: PathBuf,
    /// How long shutdown waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Forwarding-engine tuning (deadline, hedge, backoff, health).
    pub proxy: ProxyConfig,
}

/// Why the router could not run.
#[derive(Debug)]
pub enum RouterError {
    /// Binding the listen address failed.
    Bind(SocketAddr, std::io::Error),
    /// Configuring the listener failed.
    Listener(std::io::Error),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Bind(addr, e) => write!(f, "bind {addr}: {e}"),
            RouterError::Listener(e) => write!(f, "configure listener: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// What happened over the router's lifetime, for the shutdown line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSummary {
    /// Requests answered on the proxied endpoints.
    pub requests: u64,
    /// Failovers to another replica.
    pub failovers: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Requests answered by the degraded-mode fallback.
    pub degraded: u64,
    /// True when shutdown drained every in-flight request within the
    /// drain deadline.
    pub drained: bool,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    accepting: AtomicBool,
    proxy: Arc<Proxy>,
}

/// How long a worker waits for a complete request before giving up.
/// This bounds the *whole* header+body read, not one `read()` call, so
/// a slow-loris peer dripping one byte per poll cannot hold a worker
/// past it.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket read-timeout slice while accumulating a request; the loop
/// re-checks the overall deadline between slices.
const HEADER_READ_SLICE: Duration = Duration::from_millis(100);

/// Acceptor poll interval while the listener has nothing for us.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Worker poll interval while the queue is empty.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Runs the router until `cancel` fires, then drains.
///
/// `ready` is invoked once with the bound address (after `--addr` port 0
/// resolution) before the first accept — callers print or record it.
///
/// # Errors
/// [`RouterError`] when the listener cannot be set up; never for
/// anything a client or replica does.
pub fn route(
    cfg: &RouterConfig,
    registry: Arc<ModelRegistry>,
    cancel: &CancelToken,
    ready: impl FnOnce(SocketAddr),
) -> Result<RouterSummary, RouterError> {
    let listener = TcpListener::bind(cfg.addr).map_err(|e| RouterError::Bind(cfg.addr, e))?;
    listener
        .set_nonblocking(true)
        .map_err(RouterError::Listener)?;
    let addr = listener.local_addr().map_err(RouterError::Listener)?;

    registry.refresh();
    let proxy = Proxy::new(&cfg.replicas, registry, cfg.proxy.clone());
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        accepting: AtomicBool::new(true),
        proxy: Arc::clone(&proxy),
    });

    let probers: Vec<_> = (0..cfg.replicas.len())
        .map(|idx| {
            let proxy = Arc::clone(&proxy);
            let cancel = cancel.clone();
            let interval = cfg.proxy.health.probe_interval;
            std::thread::Builder::new()
                .name(format!("router-probe-{idx}"))
                .spawn(move || probe_loop(&proxy, idx, interval, &cancel))
                .expect("spawn prober thread")
        })
        .collect();

    let workers: Vec<_> = (0..cfg.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("router-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    ready(addr);

    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if queue.len() >= cfg.queue_depth {
                    drop(queue);
                    reject_overloaded(stream);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.ready.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }

    // Drain, serve-style: workers finish the queue while the acceptor
    // keeps answering 503 (healthz: "draining") until the deadline.
    shared.accepting.store(false, Ordering::SeqCst);
    shared.ready.notify_all();
    let drain = Deadline::after(cfg.drain_deadline);
    while workers.iter().any(|w| !w.is_finished()) && !drain.expired() {
        match listener.accept() {
            Ok((stream, _peer)) => answer_draining(stream, &shared),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(listener);
    let mut drained = true;
    for worker in workers {
        if worker.is_finished() {
            let _ = worker.join();
        } else {
            drained = false; // abandoned; the process exit reaps it
        }
    }
    for prober in probers {
        let _ = prober.join();
    }
    let m = proxy.metrics();
    Ok(RouterSummary {
        requests: m.requests(),
        failovers: m.failovers(),
        hedges: m.hedges_launched(),
        degraded: m.degraded(),
        drained,
    })
}

/// One replica's prober: `GET /healthz` on the configured cadence, `200`
/// recording an ok and everything else (refused, timed out, draining) a
/// failure — the suspect→dead→recovered hysteresis lives in the table.
fn probe_loop(proxy: &Arc<Proxy>, idx: usize, interval: Duration, cancel: &CancelToken) {
    let client = HttpClient::new(ClientConfig {
        connect_timeout: Duration::from_millis(500),
        exchange_deadline: Duration::from_secs(2),
        retry_budget: 1,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(200),
        jitter_seed: 0x5eed_0000 + idx as u64,
        request_budget: None,
        require_digest: false,
    });
    let addr = proxy.ring().replica(idx).to_string();
    while !cancel.is_cancelled() {
        match client.get(&addr, "/healthz", cancel) {
            Ok(response) if response.status == 200 => {
                proxy.health().record_ok(idx);
            }
            Ok(_) | Err(_) => {
                if !cancel.is_cancelled() {
                    proxy.health().record_failure(idx);
                }
            }
        }
        if !sleep_cancellable(interval, cancel) {
            return;
        }
    }
}

/// The router's own `/healthz` body: overall status plus the replica
/// state counts a dashboard (or a test) wants at a glance.
fn health_body(proxy: &Proxy) -> String {
    let [healthy, suspect, dead] = proxy.health().counts();
    let status = if proxy.ring().is_empty() || proxy.health().all_dead() {
        "degraded"
    } else {
        "ok"
    };
    Json::Obj(vec![
        ("status".to_string(), Json::Str(status.to_string())),
        ("replicas_healthy".to_string(), Json::Num(healthy as f64)),
        ("replicas_suspect".to_string(), Json::Num(suspect as f64)),
        ("replicas_dead".to_string(), Json::Num(dead as f64)),
        (
            "in_flight".to_string(),
            Json::Num(proxy.metrics().in_flight() as f64),
        ),
    ])
    .to_line()
}

/// The router's draining `/healthz` body, mirroring the serve-side shape
/// so one prober implementation understands both.
fn draining_body(proxy: &Proxy, queue_len: usize) -> String {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("draining".to_string())),
        ("queue_depth".to_string(), Json::Num(queue_len as f64)),
        (
            "in_flight".to_string(),
            Json::Num(proxy.metrics().in_flight() as f64),
        ),
    ])
    .to_line()
}

fn reject_overloaded(mut stream: TcpStream) {
    let mut response = Response::json(503, api::error_body("router is at capacity").into_bytes());
    response.retry_after = Some(1);
    let _ = stream.set_nodelay(true);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Answers a connection that arrived during the drain window: `503`
/// everywhere, with `GET /healthz` getting the structured
/// `"status":"draining"` body.
fn answer_draining(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(Some(request)) = read_request(
        &mut stream,
        Some(Instant::now() + Duration::from_millis(250)),
    ) else {
        return;
    };
    let mut response = if request.method == "GET" && request.target == "/healthz" {
        let queue_len = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        Response::json(503, draining_body(&shared.proxy, queue_len).into_bytes())
    } else {
        Response::json(503, api::error_body("router is draining").into_bytes())
    };
    response.retry_after = Some(1);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if !shared.accepting.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, WORKER_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        shared.proxy.metrics().begin_request();
        handle_connection(stream, shared);
        shared.proxy.metrics().end_request();
    }
}

/// Routes one parsed request: proxied endpoints through the forwarding
/// engine; `/healthz` and `/metrics` answered locally; everything else
/// with the same 404/405 bodies a replica would serve, so a client
/// cannot tell the router from a replica by its error answers.
fn handle_request(request: &Request, shared: &Shared) -> Response {
    let proxy = &shared.proxy;
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let body = health_body(proxy).into_bytes();
            if proxy.ring().is_empty() || proxy.health().all_dead() {
                Response::json(503, body)
            } else {
                Response::json(200, body)
            }
        }
        ("GET", "/metrics") => Response::text(200, proxy.render_metrics().into_bytes()),
        ("POST", "/predict" | "/predict_batch" | "/upgrade" | "/strawman") | ("GET", "/models") => {
            let started = Instant::now();
            let response = proxy.forward(request);
            if let Some(slot) = metrics::endpoint_index(&request.target) {
                proxy.metrics().record(slot, started.elapsed());
            }
            response
        }
        ("GET" | "POST", _) => {
            Response::json(404, api::error_body("no such endpoint").into_bytes())
        }
        _ => Response::json(405, api::error_body("method not allowed").into_bytes()),
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let response = match read_request(&mut stream, Some(Instant::now() + READ_TIMEOUT)) {
        Ok(Some(request)) => handle_request(&request, shared),
        Ok(None) => return, // peer hung up before completing a request
        Err(e) => Response::json(e.status, api::error_body(&e.reason).into_bytes()),
    };
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Accumulates socket bytes through [`parse_request`] until a complete
/// request, a protocol error, or EOF/timeout. The read is sliced so the
/// `deadline` bounds the whole accumulation: a peer dripping one byte
/// per slice gets a `408` once the deadline passes, instead of renewing
/// a per-`read()` timeout forever.
fn read_request(
    stream: &mut TcpStream,
    deadline: Option<Instant>,
) -> Result<Option<Request>, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8192];
    if deadline.is_some() {
        let _ = stream.set_read_timeout(Some(HEADER_READ_SLICE));
    }
    loop {
        if let Some(request) = parse_request(&buf)? {
            return Ok(Some(request));
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                if buf.is_empty() {
                    // An idle keep-open with no bytes: not worth a 408.
                    return Ok(None);
                }
                return Err(HttpError::new(
                    408,
                    "request not received within the read deadline",
                ));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if deadline.is_some()
                    && (e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut) =>
            {
                // One quiet slice; loop to re-check the deadline.
            }
            Err(_) => return Ok(None), // timeout or reset: drop silently
        }
    }
}

/// Re-exported for tests that want to compute a deterministic victim:
/// the ring the router will build for a given `--replicas` list.
pub fn ring_for(replicas: &[String]) -> HashRing {
    HashRing::new(replicas)
}
