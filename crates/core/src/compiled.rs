//! Compiled PMNF: a flat coefficient/exponent table for batch evaluation.
//!
//! [`Model`] is the authoring representation — per-term `Vec<Exponents>`
//! aligned with the parameter list, one heap allocation per term, and a
//! multiply by `1.0` for every parameter a term does not mention. That
//! layout is right for fitting and display, and wrong for the serve
//! daemon's hot path, where one `POST /predict_batch` walks the same five
//! models over thousands of `(p, n)` points.
//!
//! [`CompiledModel`] lowers a model once into two flat arrays:
//!
//! ```text
//! terms:   [ (coeff, factor range) … ]           one entry per term
//! factors: [ (param index, poly, log) … ]        non-constant factors only
//! ```
//!
//! Evaluation is a single forward pass over both arrays — no per-term
//! indirection, no constant factors, cache lines consumed in order.
//!
//! ## Bit-identity contract
//!
//! `CompiledModel::eval` returns **bit-identical** results to
//! [`Model::eval`] for every input. The serve daemon's byte-identity
//! guarantee (a daemon `200` equals the direct library call, digit for
//! digit) rides on this, so the lowering is *not allowed* to re-associate
//! anything:
//!
//! - each factor value is computed exactly as [`Exponents::eval`] does
//!   (clamp, conditional `powf`, conditional `log2().powf`);
//! - factor values multiply into a basis that starts at `1.0`, in the
//!   term's original factor order — skipping constant factors is exact
//!   because their value is exactly `1.0` and IEEE multiplication by `1.0`
//!   is the identity;
//! - term values accumulate into a sum that starts at `0.0`, in term
//!   order, and the constant is added **after** the sum — the same fold
//!   `constant + Σ` that `Model::eval` performs, not the re-associated
//!   `(constant + t₀) + t₁ …`.
//!
//! `tests/compiled_pmnf_properties.rs` fuzzes this contract over arbitrary
//! models and coordinates.

use crate::pmnf::Model;

/// One non-constant factor `x_param^poly · log2(x_param)^log` in the flat
/// factor table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledFactor {
    /// Index of the parameter this factor applies to.
    pub param: u32,
    /// Polynomial exponent `i`.
    pub poly: f64,
    /// Logarithm exponent `j`.
    pub log: f64,
}

/// One term: its coefficient and the half-open range of entries it owns in
/// the factor table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledTerm {
    /// Multiplicative coefficient `c_k`.
    pub coeff: f64,
    /// First factor index in [`CompiledModel::factors`].
    pub factors_start: u32,
    /// Number of factors (possibly zero for a constant term).
    pub factors_len: u32,
}

/// A PMNF model lowered into flat arrays for cache-friendly evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    constant: f64,
    arity: usize,
    terms: Vec<CompiledTerm>,
    factors: Vec<CompiledFactor>,
}

impl CompiledModel {
    /// Lowers `model` into the flat form. Constant factors (exponents
    /// `0, 0`) are dropped — they contribute exactly `1.0` to a product —
    /// and every surviving factor keeps its original in-term order.
    pub fn lower(model: &Model) -> CompiledModel {
        let mut factors = Vec::new();
        let mut terms = Vec::with_capacity(model.terms.len());
        for term in &model.terms {
            let start = factors.len();
            for (param, f) in term.factors.iter().enumerate() {
                if !f.is_constant() {
                    factors.push(CompiledFactor {
                        param: param as u32,
                        poly: f.poly,
                        log: f.log,
                    });
                }
            }
            terms.push(CompiledTerm {
                coeff: term.coeff,
                factors_start: start as u32,
                factors_len: (factors.len() - start) as u32,
            });
        }
        CompiledModel {
            constant: model.constant,
            arity: model.arity(),
            terms,
            factors,
        }
    }

    /// Number of model parameters (coordinates `eval` expects).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The flat term table.
    pub fn terms(&self) -> &[CompiledTerm] {
        &self.terms
    }

    /// The flat factor table.
    pub fn factors(&self) -> &[CompiledFactor] {
        &self.factors
    }

    /// Evaluates the model at `coords` — bit-identical to
    /// [`Model::eval`] on the model this was lowered from (see the module
    /// docs for why the fold order is load-bearing).
    ///
    /// # Panics
    /// Panics (debug) if `coords.len() != self.arity()`.
    pub fn eval(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.arity);
        let mut sum = 0.0f64;
        for term in &self.terms {
            let mut basis = 1.0f64;
            let start = term.factors_start as usize;
            let end = start + term.factors_len as usize;
            for f in &self.factors[start..end] {
                // Exactly Exponents::eval, inlined over the flat entry.
                let x = coords[f.param as usize].max(1.0);
                let mut v = 1.0f64;
                if f.poly != 0.0 {
                    v *= x.powf(f.poly);
                }
                if f.log != 0.0 {
                    v *= x.log2().powf(f.log);
                }
                basis *= v;
            }
            sum += term.coeff * basis;
        }
        self.constant + sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmnf::{Exponents, Term};

    fn two_param(constant: f64, terms: Vec<Term>) -> Model {
        Model::new(constant, terms, vec!["p".to_string(), "n".to_string()])
    }

    fn assert_bit_identical(model: &Model, coords: &[f64]) {
        let compiled = CompiledModel::lower(model);
        let direct = model.eval(coords);
        let fast = compiled.eval(coords);
        assert_eq!(
            direct.to_bits(),
            fast.to_bits(),
            "coords {coords:?}: direct {direct:?} vs compiled {fast:?}"
        );
    }

    #[test]
    fn constant_model_lowers_to_empty_tables() {
        let m = Model::constant(3.25, vec!["p".to_string()]);
        let c = CompiledModel::lower(&m);
        assert!(c.terms().is_empty());
        assert!(c.factors().is_empty());
        assert_bit_identical(&m, &[17.0]);
    }

    #[test]
    fn constant_factors_are_dropped_without_changing_bits() {
        // Term mentions only n: the p factor is constant and must vanish.
        let m = two_param(
            1.0e3,
            vec![Term::new(
                2.5,
                vec![Exponents::constant(), Exponents::new(1.0, 1.0)],
            )],
        );
        let c = CompiledModel::lower(&m);
        assert_eq!(c.factors().len(), 1);
        assert_eq!(c.factors()[0].param, 1);
        for coords in [[2.0, 64.0], [1.0, 1.0], [1e8, 1e6], [3.7, 1000.5]] {
            assert_bit_identical(&m, &coords);
        }
    }

    #[test]
    fn multiplicative_and_fractional_terms_stay_bit_identical() {
        // Kripke-like n·p and LULESH-like n log n · p^0.25 log p shapes,
        // plus a negative coefficient so the sum order matters.
        let m = two_param(
            -7.5e2,
            vec![
                Term::new(
                    4.0,
                    vec![Exponents::new(1.0, 0.0), Exponents::new(1.0, 0.0)],
                ),
                Term::new(
                    1.0e-3,
                    vec![Exponents::new(0.25, 1.0), Exponents::new(1.0, 1.0)],
                ),
                Term::new(-2.0, vec![Exponents::new(0.0, 2.0), Exponents::constant()]),
            ],
        );
        for coords in [
            [2.0, 64.0],
            [32.0, 1024.0],
            [1e8, 1e6],
            [1.0, 1.0],
            [0.5, 0.25], // below the clamp: both paths clamp to 1
        ] {
            assert_bit_identical(&m, &coords);
        }
    }

    #[test]
    fn coordinates_below_one_clamp_identically() {
        let m = two_param(
            0.0,
            vec![Term::new(
                3.0,
                vec![Exponents::new(2.0, 1.0), Exponents::new(0.5, 0.0)],
            )],
        );
        assert_bit_identical(&m, &[0.0, 0.9]);
    }
}
