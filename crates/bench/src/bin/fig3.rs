//! Regenerates **Figure 3**: measurements classified by percentile relative
//! error over all generated models. The paper reports 88% of measurements
//! under 5% relative error; our deterministic substrate should do at least
//! as well.
//!
//! Run with `cargo run --release -p exareq-bench --bin fig3`.

use exareq::pipeline::{error_histogram, model_requirements, ModeledApp};
use exareq_apps::AppGrid;
use exareq_bench::{all_surveys, repro_config, write_report};
use exareq_profile::Survey;

fn main() {
    let grid = AppGrid::default();
    let cfg = repro_config();
    let surveys = all_surveys(&grid);
    let modeled: Vec<(Survey, ModeledApp)> = surveys
        .into_iter()
        .map(|s| {
            let m = model_requirements(&s, &cfg).unwrap_or_else(|e| panic!("{}: {e}", s.app));
            (s, m)
        })
        .collect();
    let refs: Vec<(&Survey, &ModeledApp)> = modeled.iter().map(|(s, m)| (s, m)).collect();
    let hist = error_histogram(&refs);

    let mut out = String::new();
    out.push_str("== Figure 3 reproduction: relative model error histogram ==\n\n");
    out.push_str(&hist.render());
    out.push_str(&format!(
        "\n{} measurements classified; {:.1}% below 5% relative error (paper: 88%)\n",
        hist.total(),
        hist.frac_below_5pct() * 100.0
    ));
    print!("{out}");
    write_report("fig3.txt", &out);
}
