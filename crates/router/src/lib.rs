//! `exareq-router`: the replica-aware query front-end behind
//! `exareq router`.
//!
//! A single `exareq serve` daemon answers co-design queries; this crate
//! makes a *set* of them survivable. The router reverse-proxies
//! `POST /predict`, `/predict_batch`, `/upgrade`, `/strawman` and
//! `GET /models` across
//! replicas, and turns individual replica failures into latency noise
//! instead of client-visible errors:
//!
//! - [`ring`] — bounded-load consistent hashing: model keys map to
//!   replicas through a 128-vnode hash ring, so a replica death remaps
//!   only its own keys and repeat queries for one model keep hitting the
//!   same warm registry.
//! - [`breaker`] — per-replica circuit breakers on the request path,
//!   complementing the slower prober-driven hysteresis health table
//!   shared with the fleet (`exareq_net::health`).
//! - [`proxy`] — the forwarding engine: health-gated failover with
//!   jittered backoff, one hedged duplicate after a p99-derived delay
//!   (first byte-valid `200` wins), and the degraded-mode fallback that
//!   evaluates in-process against the router's own `--model-dir` when no
//!   replica can answer — flagged via the `X-Exareq-Degraded: local`
//!   header, never a silent stall.
//! - [`metrics`] — the resilience ledger (`router_failover_total`,
//!   `router_hedge_*_total`, `router_degraded_total`,
//!   `router_upstream_state{replica,state}`, …) behind `GET /metrics`.
//! - [`server`] — the daemon engine, mirroring `exareq-serve`'s bounded
//!   queue, worker pool, and graceful drain.
//!
//! The invariant everything defends: **every `200` the router returns is
//! byte-identical to the direct library call** — across failover,
//! hedging, and degraded mode alike. Upstream bodies are forwarded
//! verbatim; the degraded path answers through the same
//! `exareq_serve::dispatch` the replicas run. `tests/router.rs` asserts
//! this under SIGKILL chaos.

#![warn(missing_docs)]

pub mod breaker;
pub mod metrics;
pub mod proxy;
pub mod ring;
pub mod server;

pub use breaker::{BreakerState, CircuitBreaker, TRIP_AFTER};
pub use metrics::{endpoint_index, RouterMetrics, ENDPOINTS};
pub use proxy::{Proxy, ProxyConfig};
pub use ring::{HashRing, VNODES};
pub use server::{ring_for, route, RouterConfig, RouterError, RouterSummary};
