//! The system-upgrade co-design study (Section III-A): which of the Table
//! III upgrades — doubling racks, sockets, or memory — helps each
//! application most? Reproduces the Table IV walkthrough for LULESH and the
//! Table V comparison for all five applications, from the published Table
//! II models.
//!
//! Run with `cargo run --release --example upgrade_study`.

use exareq::codesign::report::render_upgrade_block;
use exareq::codesign::{
    analyze_upgrade, baseline_expectation, catalog, upgrade_score, SystemSkeleton, Upgrade,
};

fn main() {
    let base = SystemSkeleton::reference_large();
    println!(
        "Base system skeleton: p = {:.0e} processes, {:.1e} B memory per process\n",
        base.processes, base.mem_per_process
    );

    // Table IV walkthrough: LULESH under upgrade A.
    let lulesh = catalog::lulesh();
    let out = analyze_upgrade(&lulesh, &base, &Upgrade::DOUBLE_RACKS).expect("LULESH fits");
    println!("-- Table IV: LULESH, upgrade A (double the racks) --");
    println!("  problem size per process ratio : {:.2}", out.ratio_n);
    println!(
        "  overall problem size ratio     : {:.2}",
        out.ratio_overall
    );
    println!(
        "  computation / communication / memory access ratios: {:.2} / {:.2} / {:.2}",
        out.ratio_rates[0], out.ratio_rates[1], out.ratio_rates[2]
    );
    println!("  (paper: 1, 2, ≈1.2, ≈1.2, ≈1)\n");

    // Table V: all apps × all upgrades.
    for up in Upgrade::ALL {
        let mut outcomes = Vec::new();
        for app in catalog::paper_models() {
            match analyze_upgrade(&app, &base, &up) {
                Ok(o) => outcomes.push(o),
                Err(e) => println!("  [{}] {}: {e}", up.name, app.name),
            }
        }
        let baseline = baseline_expectation(&base, &up);
        println!(
            "{}",
            render_upgrade_block(
                &format!("{}: {}", up.name, up.description),
                &outcomes,
                &baseline
            )
        );
    }

    // Summary: best upgrade per application by the paper's benefit notion.
    println!("-- Which upgrade benefits each application most? --");
    for app in catalog::paper_models() {
        let mut best: Option<(&str, f64)> = None;
        for up in &Upgrade::ALL {
            if let Ok(o) = analyze_upgrade(&app, &base, up) {
                let s = upgrade_score(&o);
                if best.map(|(_, bs)| s > bs).unwrap_or(true) {
                    best = Some((up.description, s));
                }
            }
        }
        match best {
            Some((desc, _)) => println!("  {:<8} → {desc}", app.name),
            None => println!("  {:<8} → no feasible upgrade", app.name),
        }
    }
}
