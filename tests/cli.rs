//! End-to-end tests of the `exareq` command-line interface, including the
//! documented process exit-code contract:
//! 0 success · 2 usage error · 3 data error · 4 resumable abort ·
//! 5 interrupted (code 1 is reserved for panics).

use std::process::Command;

const EXIT_USAGE: i32 = 2;
const EXIT_DATA: i32 = 3;
const EXIT_RESUMABLE: i32 = 4;
const EXIT_INTERRUPTED: i32 = 5;

/// Runs `exareq` and returns (exit code, stdout, stderr). A missing code
/// (signal death) maps to -1, which no assertion accepts.
fn exareq(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(args)
        .output()
        .expect("spawn exareq");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn no_args_prints_usage_and_exits_with_usage_code() {
    let (code, _, err) = exareq(&[]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("USAGE"));
    assert!(err.contains("EXIT CODES"), "contract must be documented");
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (code, out, _) = exareq(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("survey"));
    assert!(out.contains("strawman"));
    assert!(out.contains("--deadline-ms"), "{out}");
    assert!(out.contains("--jobs"), "{out}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let (code, _, err) = exareq(&["frobnicate"]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("unknown command"));
}

#[test]
fn malformed_flags_are_usage_errors() {
    let (code, _, err) = exareq(&["survey", "relearn", "--p", "2,x,8"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    let (code, _, _) = exareq(&["survey", "relearn", "--max-retries", "many"]);
    assert_eq!(code, EXIT_USAGE);
    let (code, _, _) = exareq(&["survey", "relearn", "--deadline-ms", "soon"]);
    assert_eq!(code, EXIT_USAGE);
    let (code, _, err) = exareq(&["survey", "relearn", "--resume"]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("--journal"), "{err}");
    let (code, _, err) = exareq(&["survey", "relearn", "--jobs", "many"]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("--jobs"), "{err}");
    let (code, _, err) = exareq(&["survey", "relearn", "--jobs", "0"]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("at least 1"), "{err}");
    let (code, _, _) = exareq(&["survey", "relearn", "--jobs"]);
    assert_eq!(code, EXIT_USAGE, "--jobs without a value");
    let (code, _, _) = exareq(&["model"]);
    assert_eq!(code, EXIT_USAGE);
}

#[test]
fn malformed_input_data_is_a_data_error() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("not_a_survey.json");
    std::fs::write(&bad, "{ this is not json").unwrap();
    let (code, _, err) = exareq(&["model", bad.to_str().unwrap()]);
    assert_eq!(code, EXIT_DATA, "{err}");

    let bad_csv = dir.join("nonfinite.csv");
    std::fs::write(&bad_csv, "p,value\n2,10\n4,nan\n").unwrap();
    let (code, _, err) = exareq(&["fit", bad_csv.to_str().unwrap()]);
    assert_eq!(code, EXIT_DATA, "{err}");
    assert!(err.contains("line 3"), "line number missing: {err}");
}

#[test]
fn apps_lists_all_five() {
    let (code, out, _) = exareq(&["apps"]);
    assert_eq!(code, 0);
    for name in ["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"] {
        assert!(out.contains(name), "{out}");
    }
}

#[test]
fn survey_then_model_roundtrip() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("relearn.json");
    let path_s = path.to_str().unwrap();

    let (code, out, err) = exareq(&[
        "survey",
        "relearn",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "-o",
        path_s,
    ]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("25 configurations"), "{out}");

    let (code, out, err) = exareq(&["model", path_s]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("== Relearn =="), "{out}");
    assert!(out.contains("n^0.5"), "footprint model missing: {out}");
    assert!(out.contains("Allreduce(p)"), "{out}");
    assert!(out.contains("in words:"), "{out}");
}

#[test]
fn survey_rejects_unknown_app() {
    let (code, _, err) = exareq(&["survey", "nosuchapp"]);
    assert_eq!(code, EXIT_USAGE);
    assert!(err.contains("unknown application"));
}

#[test]
fn model_rejects_missing_file() {
    let (code, _, err) = exareq(&["model", "/nonexistent/path.json"]);
    assert_eq!(code, EXIT_DATA);
    // The typed I/O error names the operation and the offending path.
    assert!(err.contains("read"), "{err}");
    assert!(err.contains("/nonexistent/path.json"), "{err}");
}

#[test]
fn report_generates_full_dossier() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let survey = dir.join("kripke_report_in.json");
    let report = dir.join("kripke_report.md");
    let (code, _, err) = exareq(&[
        "survey",
        "kripke",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "-o",
        survey.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{err}");
    let (code, _, err) = exareq(&[
        "report",
        survey.to_str().unwrap(),
        "-o",
        report.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{err}");
    let md = std::fs::read_to_string(&report).unwrap();
    for section in [
        "# Co-design dossier: Kripke",
        "## Requirement models",
        "## Scaling hazards",
        "## Fit check",
        "## Scaling outlook",
        "## Upgrade response",
        "## Exascale straw-man verdict",
    ] {
        assert!(md.contains(section), "missing {section}");
    }
    assert!(md.contains("multiplicative p×n effect"), "{md}");
}

#[test]
fn fit_command_on_csv() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("lin.csv");
    std::fs::write(&csv, "p,value\n2,14\n4,28\n8,56\n16,112\n32,224\n").unwrap();
    let (code, out, err) = exareq(&["fit", csv.to_str().unwrap()]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("7·p"), "{out}");
    assert!(out.contains("grows linearly"), "{out}");
}

#[test]
fn upgrades_with_paper_catalog() {
    let (code, out, _) = exareq(&["upgrades"]);
    assert_eq!(code, 0);
    assert!(out.contains("Double the racks"), "{out}");
    assert!(out.contains("Kripke"), "{out}");
    assert!(out.contains("Baseline"), "{out}");
}

#[test]
fn strawman_with_network() {
    let (code, out, _) = exareq(&["strawman", "--network"]);
    assert_eq!(code, 0);
    assert!(out.contains("Massively parallel"), "{out}");
    assert!(out.contains("network-aware"), "{out}");
    assert!(out.contains("excluded"), "icoFoam exclusion missing: {out}");
}

#[test]
fn expired_deadline_exits_interrupted_with_partial_artifact_and_resume_hint() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("deadline.jsonl");
    let artifact = dir.join("deadline_survey.json");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&artifact);
    let journal_s = journal.to_str().unwrap();
    let artifact_s = artifact.to_str().unwrap();

    // A zero deadline has expired before the first checkpoint: the sweep
    // measures nothing and parks itself.
    let args = |deadline: &[&'static str]| {
        let mut a = vec![
            "survey",
            "relearn",
            "--p",
            "2,4",
            "--n",
            "64,256",
            "-o",
            artifact_s,
            "--journal",
            journal_s,
        ];
        a.extend_from_slice(deadline);
        a
    };
    let (code, _, err) = exareq(&args(&["--deadline-ms", "0"]));
    assert_eq!(code, EXIT_INTERRUPTED, "{err}");
    assert!(err.contains("deadline expired"), "{err}");
    // The exact resume command is printed …
    assert!(err.contains("--resume"), "{err}");
    assert!(err.contains(journal_s), "{err}");
    // … the journal is valid (header only — nothing completed) …
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 1, "{text}");
    // … and the partial artifact is flagged incomplete. (A stub JSON
    // serializer emits empty artifacts; content is only asserted when a
    // real serializer produced output.)
    let partial = std::fs::read_to_string(&artifact).unwrap();
    assert!(
        partial.is_empty() || partial.contains("\"incomplete\": true"),
        "{partial}"
    );

    // Resuming without a deadline completes the sweep and clears the flag.
    let (code, out, err) = exareq(&args(&["--resume"]));
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("survey complete: 4/4"), "{out}");
    let finished = std::fs::read_to_string(&artifact).unwrap();
    assert!(
        finished.is_empty() || finished.contains("\"incomplete\": false"),
        "{finished}"
    );
}

#[test]
fn exhausted_config_budget_exits_resumable() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("budget.jsonl");
    let _ = std::fs::remove_file(&journal);

    // A deterministic crash keeps every attempt degraded; the zero
    // wall-clock budget then trips before the first retry.
    let (code, _, err) = exareq(&[
        "survey",
        "relearn",
        "--p",
        "2,4",
        "--n",
        "64",
        "--faults",
        "crash=1@2",
        "--max-retries",
        "2",
        "--config-budget-ms",
        "0",
        "--journal",
        journal.to_str().unwrap(),
    ]);
    assert_eq!(code, EXIT_RESUMABLE, "{err}");
    assert!(err.contains("--resume"), "{err}");
}

#[test]
fn serve_flag_validation_exits_usage_with_one_line_reasons() {
    // No --model-dir at all.
    let (code, _, err) = exareq(&["serve"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("--model-dir"), "{err}");

    let dir = std::env::temp_dir().join("exareq_cli_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_str().unwrap();

    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "--addr", "not-an-address"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("invalid --addr"), "{err}");
    assert!(err.contains("HOST:PORT"), "{err}");

    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "--threads", "zero"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("--threads"), "{err}");
    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "--threads", "0"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("at least 1"), "{err}");

    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "--queue-depth", "-3"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("--queue-depth"), "{err}");

    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "--request-deadline-ms", "soon"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("--request-deadline-ms"), "{err}");

    let (code, _, err) = exareq(&["serve", "--model-dir", dir, "surprise"]);
    assert_eq!(code, EXIT_USAGE, "{err}");
    assert!(err.contains("surprise"), "{err}");
}

#[test]
fn serve_missing_model_dir_is_a_data_error() {
    let (code, _, err) = exareq(&["serve", "--model-dir", "/no/such/directory/anywhere"]);
    assert_eq!(code, EXIT_DATA, "{err}");
    assert!(err.contains("not a directory"), "{err}");
}

#[test]
fn serve_is_documented_in_usage() {
    let (code, out, _) = exareq(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("exareq serve --model-dir DIR"), "{out}");
    assert!(out.contains("SERVING (serve)"), "{out}");
    assert!(out.contains("signal-drained shutdown"), "{out}");
}
