//! Survey-throughput study: configs/sec of the sequential driver vs the
//! parallel engine at `--jobs 2/4/8`, plus a per-measurement overhead
//! breakdown, emitted machine-readably as `BENCH_survey.json`.
//!
//! The sweep is the methodology's practical bottleneck (every model the
//! generator fits consumes a full (p, n) grid of simulated runs), so this
//! binary is the repo's perf trajectory: run it before and after touching
//! the simulator or the survey drivers.
//!
//! `--tiny` shrinks the grid to 4 configs and the job counts to {1, 2}
//! for CI smoke use. The JSON is written with the in-tree `minijson`
//! writer, so it parses offline (no serde_json involved).
//!
//! Every parallel run is checked for equality against the sequential
//! survey — a speedup that broke determinism would be reported as
//! `"identical": false` and the process exits nonzero.

use exareq_apps::{run_survey_parallel, AppGrid, MiniApp, Relearn, RetryPolicy};
use exareq_bench::{mean_ms, num, obj, write_report};
use exareq_core::cancel::CancelToken;
use exareq_locality::{BurstSampler, BurstSchedule};
use exareq_profile::journal::{JournalEntry, SurveyJournal, SurveyManifest};
use exareq_profile::minijson::Json;
use exareq_profile::{MetricKind, Observation, Survey};
use exareq_sim::{run_ranks_supervised, FaultPlan, SimConfig};
use std::time::Instant;

/// Times one journal-free sweep at the given job count; returns
/// (elapsed seconds, survey).
fn timed_sweep(grid: &AppGrid, jobs: usize) -> (f64, Survey) {
    let started = Instant::now();
    let survey = run_survey_parallel(
        &Relearn,
        grid,
        &FaultPlan::none(),
        &RetryPolicy::default(),
        None,
        &CancelToken::new(),
        jobs,
    )
    .expect("journal-free unbudgeted sweep cannot fail");
    (started.elapsed().as_secs_f64(), survey)
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (grid, job_counts): (AppGrid, Vec<usize>) = if tiny {
        (
            AppGrid {
                p_values: vec![2, 4],
                n_values: vec![64, 256],
            },
            vec![1, 2],
        )
    } else {
        (
            AppGrid {
                p_values: vec![2, 4, 8, 16],
                n_values: vec![64, 256, 1024, 4096],
            },
            vec![1, 2, 4, 8],
        )
    };
    let configs = grid.p_values.len() * grid.n_values.len();
    // Speedup is bounded by the host's core count (the sweep is CPU-bound:
    // the simulator never sleeps), so the report records it — a ~1x result
    // on a single-core machine is expected, not a regression.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "survey throughput: Relearn over p={:?}, n={:?} ({configs} configs), \
         jobs {job_counts:?}, {cores} core(s)",
        grid.p_values, grid.n_values
    );

    // Warm-up: fault the page cache / allocator, outside every timing.
    let _ = timed_sweep(&grid, 1);

    let (seq_secs, sequential) = timed_sweep(&grid, 1);
    let seq_rate = configs as f64 / seq_secs;
    eprintln!("  jobs=1: {seq_secs:.2} s  ({seq_rate:.2} configs/s)");

    let mut all_identical = true;
    let mut job_rows = Vec::new();
    for &jobs in &job_counts[1..] {
        let (secs, survey) = timed_sweep(&grid, jobs);
        let rate = configs as f64 / secs;
        let identical = survey == sequential;
        all_identical &= identical;
        eprintln!(
            "  jobs={jobs}: {secs:.2} s  ({rate:.2} configs/s, {:.2}x{})",
            rate / seq_rate,
            if identical { "" } else { ", NOT IDENTICAL" }
        );
        job_rows.push(obj(vec![
            ("jobs", num(jobs as f64)),
            ("seconds", num(secs)),
            ("configs_per_sec", num(rate)),
            ("speedup", num(rate / seq_rate)),
            ("identical", Json::Bool(identical)),
        ]));
    }

    // Per-measurement overhead breakdown, each component in isolation:
    // - full measurement (simulated run + locality kernel) at a mid-grid
    //   config;
    // - rank-thread spawn/join alone (trivial bodies, same p) — the cost
    //   pooling rank threads across configs would save;
    // - the locality kernel alone;
    // - one fsynced journal append of a realistic entry.
    let p_mid = grid.p_values[grid.p_values.len() / 2];
    let n_mid = grid.n_values[grid.n_values.len() / 2];
    let measure_ms = mean_ms(5, || {
        let _ = exareq_apps::measure(&Relearn, p_mid, n_mid);
    });
    let cfg = SimConfig::with_faults(FaultPlan::none());
    let spawn_ms = mean_ms(20, || {
        run_ranks_supervised(p_mid, &cfg, |_| ()).expect("trivial run completes");
    });
    let locality_ms = mean_ms(5, || {
        let mut sampler = BurstSampler::new(BurstSchedule::always());
        Relearn.run_locality(n_mid, &mut sampler);
    });
    let journal_ms = {
        let dir = std::env::temp_dir().join("exareq_survey_throughput");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("append_timing.jsonl");
        let _ = std::fs::remove_file(&path);
        let manifest = SurveyManifest::new("Relearn", vec![2], vec![64], "bench");
        let mut journal = SurveyJournal::create(&path, manifest).expect("create journal");
        let observations: Vec<Observation> = (0..20)
            .map(|i| Observation {
                p: 2,
                n: 64,
                metric: MetricKind::Flops,
                channel: Some(format!("main/kernel{i}")),
                value: 1.0e9 + f64::from(i),
                degraded: false,
            })
            .collect();
        let entry = JournalEntry {
            p: 2,
            n: 64,
            attempts: 1,
            seed: 7,
            skip_reason: None,
            observations,
        };
        let ms = mean_ms(50, || journal.append(&entry).expect("append"));
        let _ = std::fs::remove_file(&path);
        ms
    };
    eprintln!(
        "  overhead at (p={p_mid}, n={n_mid}): measure {measure_ms:.2} ms, \
         rank spawn/join {spawn_ms:.3} ms, locality {locality_ms:.2} ms, \
         journal append {journal_ms:.3} ms"
    );

    let report = obj(vec![
        ("schema", num(1.0)),
        ("app", Json::Str("Relearn".to_string())),
        ("cores", num(cores as f64)),
        (
            "grid",
            obj(vec![
                (
                    "p",
                    Json::Arr(grid.p_values.iter().map(|&p| num(p as f64)).collect()),
                ),
                (
                    "n",
                    Json::Arr(grid.n_values.iter().map(|&n| num(n as f64)).collect()),
                ),
                ("configs", num(configs as f64)),
            ]),
        ),
        (
            "sequential",
            obj(vec![
                ("seconds", num(seq_secs)),
                ("configs_per_sec", num(seq_rate)),
            ]),
        ),
        ("jobs", Json::Arr(job_rows)),
        (
            "overhead_ms",
            obj(vec![
                ("measure", num(measure_ms)),
                ("rank_spawn_join", num(spawn_ms)),
                ("locality", num(locality_ms)),
                ("journal_append", num(journal_ms)),
            ]),
        ),
    ]);
    write_report("BENCH_survey.json", &report.to_line());

    if !all_identical {
        eprintln!("error: a parallel sweep diverged from the sequential survey");
        std::process::exit(1);
    }
}
