//! The Carrington-et-al. baseline regressor (related work \[18\]).
//!
//! Projects node-level requirements using *simple* regression over four
//! function classes — constant, linear, logarithmic, exponential — selecting
//! the class with the best in-sample fit. The paper claims PMNF "goes beyond"
//! this; ablation A1 quantifies the difference on the study's workloads.

use crate::linalg::{lstsq, Matrix};
use crate::measurement::{Aggregation, Experiment};
use crate::quality::{r_squared, smape};
use serde::{Deserialize, Serialize};

/// The four function classes of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineClass {
    /// `f(x) = a`
    Constant,
    /// `f(x) = a + b·x`
    Linear,
    /// `f(x) = a + b·log2(x)`
    Logarithmic,
    /// `f(x) = a · 2^(b·x)` (fitted in log space)
    Exponential,
}

impl BaselineClass {
    /// All classes, in selection order.
    pub const ALL: [BaselineClass; 4] = [
        BaselineClass::Constant,
        BaselineClass::Linear,
        BaselineClass::Logarithmic,
        BaselineClass::Exponential,
    ];
}

/// A fitted baseline model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineModel {
    /// Selected function class.
    pub class: BaselineClass,
    /// Offset / scale coefficient `a`.
    pub a: f64,
    /// Slope coefficient `b` (unused for `Constant`).
    pub b: f64,
    /// In-sample SMAPE (percent).
    pub smape: f64,
    /// In-sample R².
    pub r2: f64,
}

impl BaselineModel {
    /// Evaluates the model at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match self.class {
            BaselineClass::Constant => self.a,
            BaselineClass::Linear => self.a + self.b * x,
            BaselineClass::Logarithmic => self.a + self.b * x.max(1.0).log2(),
            BaselineClass::Exponential => self.a * (self.b * x).exp2(),
        }
    }
}

/// Fits the best baseline model to a one-parameter experiment.
///
/// Returns `None` when the experiment is not one-dimensional or has fewer
/// than three points.
pub fn fit_baseline(exp: &Experiment) -> Option<BaselineModel> {
    if exp.arity() != 1 {
        return None;
    }
    let agg = exp.aggregated(Aggregation::Mean);
    let xs: Vec<f64> = agg.points.iter().map(|m| m.coords[0]).collect();
    let ys: Vec<f64> = agg.points.iter().map(|m| m.value).collect();
    if xs.len() < 3 {
        return None;
    }

    let mut best: Option<BaselineModel> = None;
    for class in BaselineClass::ALL {
        let fitted = fit_class(class, &xs, &ys);
        if let Some(m) = fitted {
            if best.as_ref().map(|b| m.smape < b.smape).unwrap_or(true) {
                best = Some(m);
            }
        }
    }
    best
}

fn fit_class(class: BaselineClass, xs: &[f64], ys: &[f64]) -> Option<BaselineModel> {
    let n = xs.len();
    let (a, b) = match class {
        BaselineClass::Constant => {
            let a = ys.iter().sum::<f64>() / n as f64;
            (a, 0.0)
        }
        BaselineClass::Linear | BaselineClass::Logarithmic => {
            let mut m = Matrix::zeros(n, 2);
            for (r, &x) in xs.iter().enumerate() {
                m[(r, 0)] = 1.0;
                m[(r, 1)] = if class == BaselineClass::Linear {
                    x
                } else {
                    x.max(1.0).log2()
                };
            }
            let c = lstsq(&m, ys).ok()?;
            (c[0], c[1])
        }
        BaselineClass::Exponential => {
            // log2 y = log2 a + b x  (requires positive observations)
            if ys.iter().any(|&y| y <= 0.0) {
                return None;
            }
            let logy: Vec<f64> = ys.iter().map(|y| y.log2()).collect();
            let mut m = Matrix::zeros(n, 2);
            for (r, &x) in xs.iter().enumerate() {
                m[(r, 0)] = 1.0;
                m[(r, 1)] = x;
            }
            let c = lstsq(&m, &logy).ok()?;
            (c[0].exp2(), c[1])
        }
    };
    let mut model = BaselineModel {
        class,
        a,
        b,
        smape: 0.0,
        r2: 0.0,
    };
    let pred: Vec<f64> = xs.iter().map(|&x| model.eval(x)).collect();
    if pred.iter().any(|v| !v.is_finite()) {
        return None;
    }
    model.smape = smape(&pred, ys);
    model.r2 = r_squared(&pred, ys);
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp1(f: impl FnMut(&[f64]) -> f64) -> Experiment {
        Experiment::from_fn(vec!["p"], &[&[2.0, 4.0, 8.0, 16.0, 32.0, 64.0]], f)
    }

    #[test]
    fn picks_constant() {
        let m = fit_baseline(&exp1(|_| 9.0)).unwrap();
        assert_eq!(m.class, BaselineClass::Constant);
        assert!((m.a - 9.0).abs() < 1e-12);
    }

    #[test]
    fn picks_linear() {
        let m = fit_baseline(&exp1(|c| 3.0 + 2.0 * c[0])).unwrap();
        assert_eq!(m.class, BaselineClass::Linear);
        assert!((m.b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn picks_logarithmic() {
        let m = fit_baseline(&exp1(|c| 5.0 * c[0].log2() + 1.0)).unwrap();
        assert_eq!(m.class, BaselineClass::Logarithmic);
        assert!((m.b - 5.0).abs() < 1e-9);
    }

    #[test]
    fn picks_exponential() {
        let m = fit_baseline(&exp1(|c| 3.0 * (0.25 * c[0]).exp2())).unwrap();
        assert_eq!(m.class, BaselineClass::Exponential);
        assert!((m.a - 3.0).abs() < 1e-6);
        assert!((m.b - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cannot_capture_nlogn_exactly() {
        // n·log n lies outside the baseline's vocabulary — the whole point
        // of ablation A1. The fit is non-trivially wrong somewhere.
        let e = exp1(|c| c[0] * c[0].log2());
        let m = fit_baseline(&e).unwrap();
        assert!(m.smape > 1.0, "baseline SMAPE {} suspiciously low", m.smape);
    }

    #[test]
    fn exponential_skipped_on_nonpositive_data() {
        let mut e = Experiment::new(vec!["p"]);
        for &x in &[1.0, 2.0, 3.0, 4.0] {
            e.push(&[x], x - 2.0); // contains 0 and negatives
        }
        let m = fit_baseline(&e).unwrap();
        assert_ne!(m.class, BaselineClass::Exponential);
    }

    #[test]
    fn rejects_multiparam_and_tiny_experiments() {
        let two = Experiment::from_fn(vec!["p", "n"], &[&[1.0, 2.0], &[1.0, 2.0]], |c| c[0]);
        assert!(fit_baseline(&two).is_none());
        let tiny = Experiment::from_fn(vec!["p"], &[&[1.0, 2.0]], |c| c[0]);
        assert!(fit_baseline(&tiny).is_none());
    }
}
