//! Property-based verification of the resumable-survey contract: for an
//! arbitrary interruption point and arbitrary fault plan, replaying the
//! journal prefix and finishing the sweep yields a survey identical to the
//! uninterrupted run.

use exareq::apps::{run_survey_resilient, survey_app_resilient, AppGrid, Relearn, RetryPolicy};
use exareq::profile::journal::{SurveyJournal, SurveyManifest};
use exareq::sim::FaultPlan;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: String) -> PathBuf {
    let dir = std::env::temp_dir().join("exareq_journal_property_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Journal-replay identity under arbitrary interruption points, fault
    /// seeds, drop rates and retry depths.
    #[test]
    fn interrupted_sweep_resumes_to_identical_survey(
        seed in 0u64..1000,
        drop_milli in 0u32..20,
        retries in 0u32..3,
        cut in 0usize..=4,
    ) {
        let grid = AppGrid { p_values: vec![2, 4], n_values: vec![16, 64] };
        let plan = FaultPlan::with_seed(seed).drop(drop_milli as f64 / 1000.0);
        let retry = RetryPolicy::retries(retries);
        let manifest = SurveyManifest::new(
            "Relearn",
            grid.p_values.iter().map(|&p| p as u64).collect(),
            grid.n_values.clone(),
            "prop",
        );

        let full = survey_app_resilient(&Relearn, &grid, &plan, &retry);

        // Journal the whole sweep, then truncate to `cut` entries as if
        // the process had been killed right after the cut-th append.
        let path = tmp(format!("prop_{seed}_{drop_milli}_{retries}_{cut}.jsonl"));
        let mut j = SurveyJournal::create(&path, manifest.clone()).unwrap();
        run_survey_resilient(&Relearn, &grid, &plan, &retry, Some(&mut j)).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), 5, "header + 4 configs");
        let mut partial: String = lines[..=cut].join("\n");
        partial.push('\n');
        std::fs::write(&path, partial).unwrap();

        let mut j = SurveyJournal::resume(&path, &manifest).unwrap();
        prop_assert_eq!(j.entries().len(), cut);
        let resumed = run_survey_resilient(&Relearn, &grid, &plan, &retry, Some(&mut j)).unwrap();
        prop_assert_eq!(resumed, full);
    }
}
