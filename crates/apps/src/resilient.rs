//! Resilient survey execution: retry-with-reseed, per-config wall-clock
//! budgets, and crash-consistent journaling.
//!
//! [`run_survey_resilient`] is the one driver behind every survey in the
//! toolchain. It walks the measurement grid in order and, per `(p, n)`
//! configuration:
//!
//! 1. **Replays** the config from the journal if one is attached and
//!    already certifies it (that is what makes an interrupted sweep
//!    resumable — completed configs are never re-measured);
//! 2. otherwise **measures** it under the fault plan, retrying failed or
//!    degraded attempts under a deterministically derived fresh seed
//!    ([`exareq_sim::FaultPlan::reseeded`]) up to
//!    [`RetryPolicy::max_attempts`] times;
//! 3. **journals** the final attempt's outcome (fsynced before it counts)
//!    and only then folds it into the in-memory [`Survey`].
//!
//! The wall-clock budget models a batch scheduler: a config that keeps
//! failing may retry only while its elapsed time stays inside an
//! exponentially growing allowance. Exhausting the allowance aborts the
//! *whole sweep* ([`SurveyRunError::BudgetExhausted`]) — exactly like a
//! killed job — leaving the journal with every completed config, so the
//! next invocation resumes instead of restarting.

use crate::{measure_with_cancel, push_measurement, AppGrid, MiniApp};
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_profile::journal::{apply_entry, JournalEntry, JournalError, SurveyJournal};
use exareq_profile::Survey;
use exareq_sim::{FaultPlan, SimError};
use std::time::{Duration, Instant};

/// How hard to try per configuration before giving up on it.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total measurement attempts per config (1 = no retries).
    pub max_attempts: u32,
    /// Wall-clock allowance per config; `None` = unlimited. The allowance
    /// is checked *before* each retry (never before the first attempt, so
    /// every config gets at least one try).
    pub config_budget: Option<Duration>,
    /// Growth factor of the allowance between retries: before attempt `k`
    /// (k ≥ 2) the config may have spent up to
    /// `config_budget · budget_growth^(k−2)`.
    pub budget_growth: f64,
}

impl Default for RetryPolicy {
    /// One attempt, no budget: identical behaviour to the pre-retry
    /// driver.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            config_budget: None,
            budget_growth: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `extra` retries after the first attempt.
    pub fn retries(extra: u32) -> Self {
        RetryPolicy {
            max_attempts: 1 + extra,
            ..RetryPolicy::default()
        }
    }

    /// Sets the per-config wall-clock allowance.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.config_budget = Some(budget);
        self
    }

    /// The elapsed-time ceiling a config must be under for attempt
    /// `attempt` (≥ 2) to start; `None` when unbudgeted or for the first
    /// attempt.
    pub fn allowed_before_attempt(&self, attempt: u32) -> Option<Duration> {
        if attempt < 2 {
            return None;
        }
        self.config_budget
            .map(|b| b.mul_f64(self.budget_growth.powi(attempt as i32 - 2)))
    }
}

/// Why a resilient survey run stopped before covering its grid.
#[derive(Debug)]
pub enum SurveyRunError {
    /// The journal could not be written to (the sweep must stop: configs
    /// that cannot be journaled would be re-measured on resume, breaking
    /// the exactly-once contract).
    Journal(JournalError),
    /// A configuration exhausted its wall-clock allowance while retrying.
    /// The sweep aborts like a scheduler-killed job; every *completed*
    /// config is already durable in the journal.
    BudgetExhausted {
        /// Process count of the over-budget configuration.
        p: u64,
        /// Problem size of the over-budget configuration.
        n: u64,
        /// Attempts completed before the allowance ran out.
        attempts: u32,
        /// Wall-clock time the configuration had consumed.
        elapsed: Duration,
    },
    /// The sweep's cancellation token fired (signal, deadline, or probe
    /// budget). Every *completed* config is already durable in the
    /// journal; the config in flight (if any) was discarded, never
    /// recorded, so a resumed sweep re-measures it byte-identically.
    Cancelled {
        /// Why the sweep was cancelled.
        reason: CancelReason,
    },
}

impl core::fmt::Display for SurveyRunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SurveyRunError::Journal(e) => write!(f, "{e}"),
            SurveyRunError::BudgetExhausted {
                p,
                n,
                attempts,
                elapsed,
            } => write!(
                f,
                "configuration (p={p}, n={n}) exhausted its wall-clock budget after \
                 {attempts} attempt(s) ({elapsed:?}); survey aborted"
            ),
            SurveyRunError::Cancelled { reason } => {
                write!(f, "survey cancelled: {reason}")
            }
        }
    }
}

impl std::error::Error for SurveyRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurveyRunError::Journal(e) => Some(e),
            SurveyRunError::BudgetExhausted { .. } | SurveyRunError::Cancelled { .. } => None,
        }
    }
}

impl From<JournalError> for SurveyRunError {
    fn from(e: JournalError) -> Self {
        SurveyRunError::Journal(e)
    }
}

/// Measures one configuration under the retry policy, returning the final
/// attempt's journal entry — or a budget-exhaustion error.
///
/// Shared with the parallel engine ([`crate::parallel`]) and the fleet's
/// worker daemons (`exareq-serve`'s `POST /measure`): the per-config work
/// is identical under every driver, which is what makes a `--jobs N` sweep
/// — or a shard measured on a remote worker — byte-identical to a
/// sequential one.
///
/// # Errors
/// [`SurveyRunError::Cancelled`] when the token fires mid-measurement,
/// [`SurveyRunError::BudgetExhausted`] when the retry policy's wall-clock
/// allowance runs out.
pub fn measure_config_resilient(
    app: &dyn MiniApp,
    p: usize,
    n: u64,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    cancel: &CancelToken,
) -> Result<JournalEntry, SurveyRunError> {
    let started = Instant::now();
    let mut attempt = 1u32;
    loop {
        let plan = faults.reseeded(p as u64, n, attempt);
        let outcome = measure_with_cancel(app, p, n, &plan, cancel);
        // A cancelled attempt is *not* a measurement failure: it must not
        // be journaled as a skip (that would poison the resumed sweep) and
        // it must not be retried. Propagate so the whole sweep winds down.
        if let Err(SimError::Cancelled { reason }) = &outcome {
            return Err(SurveyRunError::Cancelled { reason: *reason });
        }
        let retriable = match &outcome {
            Ok(m) => m.degraded,
            Err(_) => true,
        };
        if retriable && attempt < retry.max_attempts {
            // Probe between attempts too, so a preempted config stops
            // retrying even when each attempt itself completes quickly.
            if let Err(c) = cancel.checkpoint() {
                return Err(SurveyRunError::Cancelled { reason: c.reason });
            }
            if let Some(allowed) = retry.allowed_before_attempt(attempt + 1) {
                let elapsed = started.elapsed();
                if elapsed >= allowed {
                    return Err(SurveyRunError::BudgetExhausted {
                        p: p as u64,
                        n,
                        attempts: attempt,
                        elapsed,
                    });
                }
            }
            attempt += 1;
            continue;
        }
        return Ok(match outcome {
            Ok(m) => {
                // Collect the final attempt's observations via a scratch
                // survey so the journal records exactly what replay will
                // reproduce.
                let mut scratch = Survey::new(app.name());
                push_measurement(&mut scratch, &m);
                JournalEntry {
                    p: p as u64,
                    n,
                    attempts: attempt,
                    seed: plan.seed,
                    skip_reason: None,
                    observations: scratch.observations,
                }
            }
            Err(err) => JournalEntry {
                p: p as u64,
                n,
                attempts: attempt,
                seed: plan.seed,
                skip_reason: Some(if attempt == 1 {
                    err.to_string()
                } else {
                    format!("{err} (after {attempt} attempts)")
                }),
                observations: Vec::new(),
            },
        });
    }
}

/// Runs an application survey resiliently: fault injection, retries with
/// deterministic reseeding, optional per-config wall-clock budget, and an
/// optional crash-consistent journal.
///
/// Configurations already present in `journal` are replayed, not
/// re-measured; new outcomes are appended (and fsynced) *before* they are
/// folded into the returned [`Survey`], so a crash at any point loses at
/// most the configuration in flight.
///
/// With the default [`RetryPolicy`] and no journal this is byte-identical
/// to the plain faulted sweep: attempt 1 uses `faults` verbatim
/// ([`exareq_sim::FaultPlan::reseeded`] is the identity for attempt 1).
///
/// # Errors
/// - [`SurveyRunError::Journal`] when the journal cannot be appended to;
/// - [`SurveyRunError::BudgetExhausted`] when a config overruns its
///   allowance — resume from the journal to continue the sweep.
pub fn run_survey_resilient(
    app: &dyn MiniApp,
    grid: &AppGrid,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    journal: Option<&mut SurveyJournal>,
) -> Result<Survey, SurveyRunError> {
    run_survey_cancellable(app, grid, faults, retry, journal, &CancelToken::new())
}

/// [`run_survey_resilient`] with a cooperative cancellation token.
///
/// The token is probed between configurations, between retry attempts,
/// and (through the simulator) at every rank's communication chokepoints,
/// so a SIGTERM, an expired `--deadline-ms`, or an exhausted probe budget
/// stops the sweep within one poll interval. The shutdown sequence
/// preserves the journal's exactly-once contract:
///
/// 1. the configuration in flight is **discarded**, never journaled (not
///    even as a skip) — every journal append remains a *completed* config,
///    fsynced before it counted;
/// 2. the sweep returns [`SurveyRunError::Cancelled`] with the typed
///    reason;
/// 3. resuming from the journal re-measures the discarded config under
///    the same derived seed, so the finished artifact is byte-identical
///    to an uninterrupted run (preemption-identity).
///
/// When a probe budget is armed ([`CancelToken::with_budget`]), one unit
/// is charged per *measured* (not replayed) configuration, after its
/// journal append — `with_budget(k)` therefore journals exactly `k`
/// configs before cancelling, which is the deterministic preemption lever
/// the `resilience` bench and the tests use.
///
/// # Errors
/// Everything [`run_survey_resilient`] returns, plus
/// [`SurveyRunError::Cancelled`] when the token fires.
pub fn run_survey_cancellable(
    app: &dyn MiniApp,
    grid: &AppGrid,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    mut journal: Option<&mut SurveyJournal>,
    cancel: &CancelToken,
) -> Result<Survey, SurveyRunError> {
    let mut survey = Survey::new(app.name());
    for &p in &grid.p_values {
        for &n in &grid.n_values {
            if let Some(j) = journal.as_deref_mut() {
                if let Some(done) = j.get(p as u64, n) {
                    let done = done.clone();
                    apply_entry(&mut survey, &done);
                    continue;
                }
            }
            if let Err(c) = cancel.checkpoint() {
                return Err(SurveyRunError::Cancelled { reason: c.reason });
            }
            let entry = measure_config_resilient(app, p, n, faults, retry, cancel)?;
            if let Some(j) = journal.as_deref_mut() {
                j.append(&entry)?;
            }
            apply_entry(&mut survey, &entry);
            cancel.consume(1);
        }
    }
    Ok(survey)
}

/// Journal-free resilient survey under an unbudgeted retry policy.
///
/// # Panics
/// Panics if `retry` carries a wall-clock budget — budgeted sweeps can
/// abort and must use [`run_survey_resilient`] with a journal so the
/// partial sweep is recoverable.
pub fn survey_app_resilient(
    app: &dyn MiniApp,
    grid: &AppGrid,
    faults: &FaultPlan,
    retry: &RetryPolicy,
) -> Survey {
    assert!(
        retry.config_budget.is_none(),
        "budgeted sweeps can abort; attach a journal via run_survey_resilient"
    );
    match run_survey_resilient(app, grid, faults, retry, None) {
        Ok(s) => s,
        // No journal and no budget: neither error variant is reachable.
        Err(e) => unreachable!("journal-free unbudgeted sweep failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relearn;
    use exareq_profile::journal::SurveyManifest;
    use exareq_profile::MetricKind;

    fn small_grid() -> AppGrid {
        AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64],
        }
    }

    #[test]
    fn default_policy_matches_plain_faulted_sweep() {
        let plan = FaultPlan::with_seed(11).drop(0.01);
        let plain = crate::survey_app_with_faults(&Relearn, &small_grid(), &plan);
        let resilient = run_survey_resilient(
            &Relearn,
            &small_grid(),
            &plan,
            &RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn retries_clear_probabilistic_degradation() {
        // A drop plan whose first-attempt seed degrades at least one
        // config; with retries, every cleared config carries clean
        // final-attempt observations.
        let plan = FaultPlan::with_seed(3).drop(0.02);
        let grid = AppGrid {
            p_values: vec![2, 4, 8],
            n_values: vec![64, 256],
        };
        let baseline = survey_app_resilient(&Relearn, &grid, &plan, &RetryPolicy::default());
        let retried = survey_app_resilient(&Relearn, &grid, &plan, &RetryPolicy::retries(4));
        let dg = |s: &Survey| s.degraded_configs().len() + s.skipped.len();
        assert!(
            dg(&retried) <= dg(&baseline),
            "retries must never add degraded configs: {} vs {}",
            dg(&retried),
            dg(&baseline)
        );
    }

    #[test]
    fn deterministic_crash_stays_degraded_but_is_recorded() {
        // A crash point persists across reseeds: retries cannot clear it,
        // so the config is recorded degraded after max_attempts.
        let plan = FaultPlan::default().crash(1, 2);
        let grid = AppGrid {
            p_values: vec![4],
            n_values: vec![64],
        };
        let s = survey_app_resilient(&Relearn, &grid, &plan, &RetryPolicy::retries(2));
        assert_eq!(s.config_count() + s.skipped.len(), 1);
        if let Some(skip) = s.skipped.first() {
            // All ranks lost on every attempt: the skip reason records
            // that the retries were spent.
            assert!(skip.reason.contains("after 3 attempts"), "{}", skip.reason);
        } else {
            assert_eq!(s.degraded_configs(), vec![(4, 64)]);
        }
    }

    #[test]
    fn zero_budget_aborts_on_first_retry() {
        let plan = FaultPlan::default().crash(1, 2);
        let retry = RetryPolicy::retries(2).with_budget(Duration::ZERO);
        let err = run_survey_resilient(&Relearn, &small_grid(), &plan, &retry, None).unwrap_err();
        match err {
            SurveyRunError::BudgetExhausted { p, n, attempts, .. } => {
                // Rank 1 exists at p=2, so the crash already degrades the
                // very first grid config and the zero allowance trips
                // before its first retry.
                assert_eq!((p, n), (2, 64));
                assert_eq!(attempts, 1);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn journaled_sweep_resumes_without_remeasuring() {
        let dir = std::env::temp_dir().join("exareq_resilient_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&path);

        let plan = FaultPlan::with_seed(5).drop(0.005);
        let grid = small_grid();
        let manifest = SurveyManifest::new(
            "Relearn",
            grid.p_values.iter().map(|&p| p as u64).collect(),
            grid.n_values.clone(),
            "seed=5,drop=0.005",
        );

        let full = survey_app_resilient(&Relearn, &grid, &plan, &RetryPolicy::retries(1));

        // First run journals everything.
        let mut j = SurveyJournal::create(&path, manifest.clone()).unwrap();
        let first = run_survey_resilient(
            &Relearn,
            &grid,
            &plan,
            &RetryPolicy::retries(1),
            Some(&mut j),
        )
        .unwrap();
        drop(j);
        assert_eq!(first, full);

        // Second run replays from the journal only (any re-measurement
        // would also produce the same survey, but the journal path must
        // reproduce it exactly too).
        let mut j = SurveyJournal::resume(&path, &manifest).unwrap();
        assert_eq!(j.entries().len(), 2);
        let resumed = run_survey_resilient(
            &Relearn,
            &grid,
            &plan,
            &RetryPolicy::retries(1),
            Some(&mut j),
        )
        .unwrap();
        assert_eq!(resumed, full);
        assert_eq!(
            resumed.triples(MetricKind::Flops),
            full.triples(MetricKind::Flops)
        );
    }

    #[test]
    fn pre_cancelled_token_measures_nothing() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupt);
        let err = run_survey_cancellable(
            &Relearn,
            &small_grid(),
            &FaultPlan::none(),
            &RetryPolicy::default(),
            None,
            &token,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SurveyRunError::Cancelled {
                reason: CancelReason::Interrupt
            }
        ));
    }

    #[test]
    fn probe_budget_journals_exactly_k_configs_and_resume_is_identical() {
        // The driver-level preemption-identity contract: cancel after k
        // measured configs, resume, and the final survey equals the
        // uninterrupted one exactly.
        let dir = std::env::temp_dir().join("exareq_resilient_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("preempt.jsonl");
        let _ = std::fs::remove_file(&path);

        let plan = FaultPlan::with_seed(9).drop(0.004);
        let grid = AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64, 256],
        };
        let manifest = SurveyManifest::new(
            "Relearn",
            grid.p_values.iter().map(|&p| p as u64).collect(),
            grid.n_values.clone(),
            "seed=9,drop=0.004",
        );
        let retry = RetryPolicy::retries(1);
        let uninterrupted = survey_app_resilient(&Relearn, &grid, &plan, &retry);

        // Preempted run: the probe budget cancels after 2 of 4 configs.
        let mut j = SurveyJournal::create(&path, manifest.clone()).unwrap();
        let token = CancelToken::with_budget(2);
        let err = run_survey_cancellable(&Relearn, &grid, &plan, &retry, Some(&mut j), &token)
            .unwrap_err();
        drop(j);
        assert!(matches!(
            err,
            SurveyRunError::Cancelled {
                reason: CancelReason::Budget
            }
        ));

        // The journal holds exactly the two completed configs …
        let mut j = SurveyJournal::resume(&path, &manifest).unwrap();
        assert_eq!(j.entries().len(), 2);

        // … and the resumed sweep reproduces the uninterrupted survey.
        let resumed = run_survey_cancellable(
            &Relearn,
            &grid,
            &plan,
            &retry,
            Some(&mut j),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn budget_allowance_grows_exponentially() {
        let r = RetryPolicy::retries(3).with_budget(Duration::from_millis(100));
        assert_eq!(r.allowed_before_attempt(1), None);
        assert_eq!(
            r.allowed_before_attempt(2),
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            r.allowed_before_attempt(3),
            Some(Duration::from_millis(200))
        );
        assert_eq!(
            r.allowed_before_attempt(4),
            Some(Duration::from_millis(400))
        );
        assert_eq!(RetryPolicy::default().allowed_before_attempt(2), None);
    }
}
