//! `exareq-fleet`: the fault-tolerant sharded survey fleet behind
//! `exareq fleet`.
//!
//! A survey's measurement grid is embarrassingly parallel and — because
//! every journal entry is a pure function of
//! `(application, p, n, fault plan, attempt)` — *location-transparent*:
//! a config measured on a remote worker daemon produces the same bytes
//! as one measured in-process. This crate exploits that to spread a
//! survey across `exareq serve --allow-measure` workers while keeping
//! the one artifact contract that matters: **the merged journal and
//! Survey are byte-identical to a single-process sequential run**, no
//! matter which workers lived, died, or flapped along the way.
//!
//! Four modules, one concern each:
//!
//! - [`client`] — a std-only HTTP/1.1 client: connect/read timeouts,
//!   cancellable slice reads, jittered exponential backoff under a
//!   retry budget, and `Retry-After` honored when the server names its
//!   own price. Lives in `exareq-net` (the query router shares it);
//!   re-exported here so fleet consumers see one crate.
//! - [`health`] — worker liveness with hysteresis
//!   (Healthy → Suspect → Dead → recovered), fed by both a background
//!   `/healthz` prober and dispatch outcomes. Also shared via
//!   `exareq-net`.
//! - [`coordinator`] — shard planning over the pending grid, one
//!   dispatcher per worker gated on health, work stealing of shards
//!   from dead or timed-out workers, first-wins (at-most-once) commit
//!   through a shard-level reorder buffer, and an in-process fallback
//!   when the whole fleet is gone — a degraded run completes flagged,
//!   it never silently stalls.
//! - [`metrics`] — Prometheus text counters for the failure paths
//!   (`fleet_redispatch_total`, `fleet_worker_state{state=...}`, ...).

#![warn(missing_docs)]

pub use exareq_net::client;
pub use exareq_net::health;

pub mod coordinator;
pub mod metrics;

pub use client::{ClientConfig, ClientError, ClientResponse, HttpClient};
pub use coordinator::{run_fleet, FleetConfig, FleetReport, ShardSequencer, WorkerReport};
pub use health::{HealthPolicy, HealthTable, WorkerState};
pub use metrics::FleetMetrics;
