//! The per-rank communicator handle: point-to-point messaging with
//! selective receive and byte accounting.

use crate::stats::{CommStats, OpClass};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

/// A message in flight: source rank, user tag, payload.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub src: usize,
    pub tag: u64,
    pub data: Bytes,
}

/// The communicator handle passed to each rank's body.
///
/// Functionally a tiny MPI: `send`/`recv` with tags and selective receive,
/// plus collectives (broadcast, all-reduce, all-gather, all-to-all,
/// barrier — implemented in the `collectives` module). Channels are unbounded,
/// so sends never block and classic exchange patterns cannot deadlock.
pub struct Rank {
    rank: usize,
    size: usize,
    pub(crate) txs: Vec<Sender<Msg>>,
    pub(crate) rx: Receiver<Msg>,
    /// Out-of-order messages parked until a matching `recv` is posted.
    pending: Vec<Msg>,
    pub(crate) stats: CommStats,
}

impl Rank {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        txs: Vec<Sender<Msg>>,
        rx: Receiver<Msg>,
    ) -> Self {
        Rank {
            rank,
            size,
            txs,
            rx,
            pending: Vec::new(),
            stats: CommStats::default(),
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Sends `data` to `dst` with `tag`, attributed to the point-to-point
    /// class.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or equals this rank (self-sends are a
    /// bug in simulated codes, not a feature).
    pub fn send(&mut self, dst: usize, tag: u64, data: &[u8]) {
        self.send_class(OpClass::P2p, dst, tag, data);
    }

    /// Receives a message from `src` with `tag` (selective receive; blocks).
    pub fn recv(&mut self, src: usize, tag: u64) -> Bytes {
        self.recv_class(OpClass::P2p, src, tag)
    }

    pub(crate) fn send_class(&mut self, class: OpClass, dst: usize, tag: u64, data: &[u8]) {
        assert!(dst < self.size, "destination {dst} out of range");
        assert_ne!(dst, self.rank, "self-send from rank {dst}");
        self.stats.record_send(class, data.len());
        self.txs[dst]
            .send(Msg {
                src: self.rank,
                tag,
                data: Bytes::copy_from_slice(data),
            })
            .expect("peer rank hung up");
    }

    pub(crate) fn recv_class(&mut self, class: OpClass, src: usize, tag: u64) -> Bytes {
        assert!(src < self.size, "source {src} out of range");
        // Check parked messages first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let m = self.pending.remove(pos);
            self.stats.record_recv(class, m.data.len());
            return m.data;
        }
        loop {
            let m = self.rx.recv().expect("all peers hung up while receiving");
            if m.src == src && m.tag == tag {
                self.stats.record_recv(class, m.data.len());
                return m.data;
            }
            self.pending.push(m);
        }
    }

    /// Sends a slice of `f64`s (convenience wrapper over [`Rank::send`]).
    pub fn send_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.send(dst, tag, &bytes);
    }

    /// Receives a slice of `f64`s sent with [`Rank::send_f64s`].
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let raw = self.recv(src, tag);
        decode_f64s(&raw)
    }

    pub(crate) fn send_f64s_class(
        &mut self,
        class: OpClass,
        dst: usize,
        tag: u64,
        data: &[f64],
    ) {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.send_class(class, dst, tag, &bytes);
    }

    pub(crate) fn recv_f64s_class(&mut self, class: OpClass, src: usize, tag: u64) -> Vec<f64> {
        let raw = self.recv_class(class, src, tag);
        decode_f64s(&raw)
    }
}

pub(crate) fn decode_f64s(raw: &[u8]) -> Vec<f64> {
    assert_eq!(raw.len() % 8, 0, "payload is not a whole number of f64s");
    raw.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_ranks;

    #[test]
    fn ring_pass_delivers_in_order() {
        let results = run_ranks(4, |r| {
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(next, 7, &[r.rank() as u8]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        for (rank, res) in results.iter().enumerate() {
            assert_eq!(res.value, (rank + 4 - 1) % 4);
        }
    }

    #[test]
    fn selective_receive_reorders() {
        // Rank 0 sends two tags; rank 1 receives them in the opposite order.
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, b"first");
                r.send(1, 2, b"second");
                (Vec::new(), Vec::new())
            } else {
                let b = r.recv(0, 2);
                let a = r.recv(0, 1);
                (a.to_vec(), b.to_vec())
            }
        });
        assert_eq!(results[1].value.0, b"first");
        assert_eq!(results[1].value.1, b"second");
    }

    #[test]
    fn byte_accounting_matches_traffic() {
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send(1, 0, &[0u8; 100]);
                let _ = r.recv(1, 1);
            } else {
                let _ = r.recv(0, 0);
                r.send(0, 1, &[0u8; 30]);
            }
        });
        assert_eq!(results[0].stats.total_sent(), 100);
        assert_eq!(results[0].stats.total_recv(), 30);
        assert_eq!(results[1].stats.total_sent(), 30);
        assert_eq!(results[1].stats.total_recv(), 100);
        assert_eq!(results[0].stats.messages_sent, 1);
    }

    #[test]
    fn f64_roundtrip() {
        let results = run_ranks(2, |r| {
            if r.rank() == 0 {
                r.send_f64s(1, 0, &[1.5, -2.25, 1e300]);
                Vec::new()
            } else {
                r.recv_f64s(0, 0)
            }
        });
        assert_eq!(results[1].value, vec![1.5, -2.25, 1e300]);
        // 3 doubles = 24 bytes
        assert_eq!(results[0].stats.total_sent(), 24);
    }

    #[test]
    fn decode_rejects_ragged_payload() {
        let r = std::panic::catch_unwind(|| decode_f64s(&[0u8; 7]));
        assert!(r.is_err());
    }
}
