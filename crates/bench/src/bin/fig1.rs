//! Regenerates **Figure 1**: the worked example distinguishing reuse
//! distance from stack distance on a short access sequence over locations
//! a, b, c.
//!
//! Run with `cargo run --release -p exareq-bench --bin fig1`.

use exareq_bench::write_report;
use exareq_locality::DistanceAnalyzer;

fn main() {
    // The figure's access sequence: a b c b c c a (arrows in the figure
    // point from each access to its predecessor on the same location).
    let names = ["a", "b", "c", "b", "c", "c", "a"];
    let addrs = [1u64, 2, 3, 2, 3, 3, 1];

    let mut analyzer = DistanceAnalyzer::new();
    let mut out = String::new();
    out.push_str("== Figure 1 reproduction: reuse vs stack distance ==\n\n");
    out.push_str("access   location   reuse distance (RD)   stack distance (SD)\n");
    for (i, (&name, &addr)) in names.iter().zip(&addrs).enumerate() {
        let d = analyzer.access(addr);
        let (rd, sd) = match (d.reuse, d.stack) {
            (Some(r), Some(s)) => (r.to_string(), s.to_string()),
            _ => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!("{:>6}   {name:>8}   {rd:>18}   {sd:>19}\n", i + 1));
    }
    out.push_str(
        "\nThe second access to `a` illustrates the difference: five accesses\n\
         (b c b c c) occurred in between, so RD = 5, but they touch only two\n\
         unique locations (b, c), so SD = 2. Stack distance is the metric the\n\
         paper models for memory locality (Section II-A).\n",
    );
    print!("{out}");
    write_report("fig1.txt", &out);
}
