//! Property-based verification of the model generator: exponent recovery
//! over the coarse space, invariance properties of the fit, and least
//! squares optimality.

use exareq::core::fit::{fit_single, FitConfig};
use exareq::core::linalg::{lstsq, rss, Matrix};
use exareq::core::measurement::Experiment;
use exareq::core::multiparam::{fit_multi, MultiParamConfig};
use exareq::core::pmnf::Exponents;
use proptest::prelude::*;

const XS: [f64; 7] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

fn coarse_exponent() -> impl Strategy<Value = (f64, f64)> {
    // The coarse search-space grid minus the constant pair.
    (0usize..7, 0usize..2)
        .prop_map(|(i, j)| (i as f64 * 0.5, j as f64))
        .prop_filter("non-constant", |&(i, j)| i != 0.0 || j != 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For exact data generated from a single coarse-grid term, the fitter
    /// recovers the exact exponents and coefficient.
    #[test]
    fn recovers_generating_exponents(
        (i, j) in coarse_exponent(),
        coeff in 1.0f64..1000.0,
        offset in 0.0f64..100.0,
    ) {
        let e = Experiment::from_fn(vec!["x"], &[&XS], |c| {
            offset + coeff * c[0].powf(i) * c[0].log2().powf(j)
        });
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        let lead = m.model.dominant_exponents(0);
        prop_assert_eq!(lead, Exponents::new(i, j), "fit {}", m.model);
        let t = m.model.dominant_term().unwrap();
        prop_assert!((t.coeff - coeff).abs() / coeff < 1e-6, "coeff {} vs {}", t.coeff, coeff);
    }

    /// Scaling all observations by a positive constant scales the model
    /// coefficients and leaves the selected exponents unchanged.
    #[test]
    fn fit_is_scale_equivariant(
        (i, j) in coarse_exponent(),
        scale in 1.0f64..1e6,
    ) {
        let base = Experiment::from_fn(vec!["x"], &[&XS], |c| {
            5.0 * c[0].powf(i) * c[0].log2().powf(j) + 3.0
        });
        let mut scaled = base.clone();
        for p in &mut scaled.points {
            p.value *= scale;
        }
        let mb = fit_single(&base, &FitConfig::coarse()).unwrap();
        let ms = fit_single(&scaled, &FitConfig::coarse()).unwrap();
        prop_assert_eq!(
            mb.model.dominant_exponents(0),
            ms.model.dominant_exponents(0)
        );
        let (cb, cs) = (
            mb.model.dominant_term().unwrap().coeff,
            ms.model.dominant_term().unwrap().coeff,
        );
        prop_assert!((cs / cb - scale).abs() / scale < 1e-6);
    }

    /// The model's predictions at the measured points match the data for
    /// exact inputs (in-sample SMAPE ≈ 0, R² ≈ 1).
    #[test]
    fn exact_data_fits_exactly((i, j) in coarse_exponent()) {
        let e = Experiment::from_fn(vec!["x"], &[&XS], |c| {
            7.0 * c[0].powf(i) * c[0].log2().powf(j) + 11.0
        });
        let m = fit_single(&e, &FitConfig::coarse()).unwrap();
        prop_assert!(m.smape < 1e-6, "smape {}", m.smape);
        prop_assert!(m.r2 > 1.0 - 1e-9, "r2 {}", m.r2);
    }

    /// Least squares is optimal: random perturbations of the solution never
    /// reduce the residual.
    #[test]
    fn lstsq_is_optimal(
        rows in 3usize..8,
        seedvals in proptest::collection::vec(-100.0f64..100.0, 16..64),
        d0 in -0.1f64..0.1,
        d1 in -0.1f64..0.1,
    ) {
        let cols = 2;
        prop_assume!(seedvals.len() >= rows * (cols + 1));
        let mut a = Matrix::zeros(rows, cols);
        let mut b = vec![0.0; rows];
        for r in 0..rows {
            a[(r, 0)] = 1.0;
            a[(r, 1)] = seedvals[r * 2] + 200.0 * (r as f64 + 1.0); // distinct
            b[r] = seedvals[r * 2 + 1];
        }
        let x = lstsq(&a, &b).unwrap();
        let base = rss(&a, &x, &b);
        let pert = [x[0] + d0, x[1] + d1];
        prop_assert!(rss(&a, &pert, &b) >= base - 1e-9 * (1.0 + base));
    }

    /// Two-parameter separable products are recovered with both factors.
    #[test]
    fn multiparam_recovers_products(
        (i1, j1) in coarse_exponent(),
        (i2, j2) in coarse_exponent(),
    ) {
        // Keep the magnitudes sane.
        prop_assume!(i1 + i2 <= 3.0);
        let e = Experiment::from_fn(
            vec!["p", "n"],
            &[&[2.0, 4.0, 8.0, 16.0, 32.0], &[64.0, 256.0, 1024.0, 4096.0, 16384.0]],
            |c| {
                2.0 * c[0].powf(i1)
                    * c[0].log2().powf(j1)
                    * c[1].powf(i2)
                    * c[1].log2().powf(j2)
            },
        );
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        prop_assert_eq!(
            m.model.dominant_exponents(0),
            Exponents::new(i1, j1),
            "fit {}",
            &m.model
        );
        prop_assert_eq!(
            m.model.dominant_exponents(1),
            Exponents::new(i2, j2),
            "fit {}",
            &m.model
        );
    }
}
