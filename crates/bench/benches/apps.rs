//! Performance of the behavioural twins (P1): one full `measure()` —
//! simulated run + locality kernel — per application at a mid-grid
//! configuration, plus the Section II-D matrix kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exareq_apps::mmm::{blocked_mmm, naive_mmm};
use exareq_apps::{all_apps, measure};
use exareq_locality::{BurstSampler, BurstSchedule};
use std::hint::black_box;

fn bench_measure(c: &mut Criterion) {
    let mut g = c.benchmark_group("measure_app");
    g.sample_size(10);
    for app in all_apps() {
        g.bench_with_input(BenchmarkId::new(app.name(), "p8_n1024"), &app, |b, app| {
            b.iter(|| black_box(measure(app.as_ref(), 8, 1024)));
        });
    }
    g.finish();
}

fn bench_mmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmm_kernels");
    g.sample_size(10);
    g.bench_function("naive_n32_instrumented", |b| {
        b.iter(|| {
            let mut s = BurstSampler::new(BurstSchedule::always());
            black_box(naive_mmm(32, &mut s))
        });
    });
    g.bench_function("blocked_n32_b4_instrumented", |b| {
        b.iter(|| {
            let mut s = BurstSampler::new(BurstSchedule::always());
            black_box(blocked_mmm(32, 4, &mut s))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_measure, bench_mmm);
criterion_main!(benches);
