//! Requirement surveys: measured metric values over `(p, n)` configurations,
//! the hand-off format between the measurement substrate and the model
//! generator.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Current survey JSON schema version, written into every new survey and
/// journal manifest.
///
/// History:
/// - **0** — implicit: pre-versioning JSON with no `schema_version` field
///   (also lacks `degraded`/`skipped`; all fields default cleanly).
/// - **1** — adds `schema_version` itself, `degraded` observation flags and
///   the `skipped` list (both already tolerated as defaults in 0).
/// - **2** — adds the `incomplete` flag marking partial artifacts written by
///   a preempted sweep (defaults to `false` in older files, which by
///   definition were only written by completed sweeps).
///
/// Readers accept any version `<=` this constant (older fields default) and
/// reject newer versions loudly instead of mis-parsing them.
pub const SURVEY_SCHEMA_VERSION: u32 = 2;

/// The requirement metrics of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Memory footprint: resident bytes used per process.
    BytesUsed,
    /// Computation: floating-point operations per process.
    Flops,
    /// Network communication: bytes sent + received per process.
    CommBytes,
    /// Memory access volume: loads + stores per process.
    LoadsStores,
    /// Memory access locality: stack distance (median over samples).
    StackDistance,
    /// Storage I/O: bytes read + written per process (Section II-A:
    /// "handled analogously to the network communication requirement").
    IoBytes,
}

impl MetricKind {
    /// All metrics: the Table I set plus the analogous I/O metric.
    pub const ALL: [MetricKind; 6] = [
        MetricKind::BytesUsed,
        MetricKind::Flops,
        MetricKind::CommBytes,
        MetricKind::LoadsStores,
        MetricKind::StackDistance,
        MetricKind::IoBytes,
    ];

    /// Stable identifier used in journal lines (matches the serde variant
    /// name used in survey JSON).
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::BytesUsed => "BytesUsed",
            MetricKind::Flops => "Flops",
            MetricKind::CommBytes => "CommBytes",
            MetricKind::LoadsStores => "LoadsStores",
            MetricKind::StackDistance => "StackDistance",
            MetricKind::IoBytes => "IoBytes",
        }
    }

    /// Inverse of [`MetricKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        MetricKind::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Row label as printed in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::BytesUsed => "#Bytes used",
            MetricKind::Flops => "#FLOP",
            MetricKind::CommBytes => "#Bytes sent & received",
            MetricKind::LoadsStores => "#Loads & stores",
            MetricKind::StackDistance => "Stack distance",
            MetricKind::IoBytes => "#Bytes read & written",
        }
    }
}

/// One measured value: a metric at a `(p, n)` configuration, optionally
/// scoped to a sub-channel (a collective class for `CommBytes`, an
/// instruction group for `StackDistance`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Number of processes of the run.
    pub p: u64,
    /// Problem size per process of the run.
    pub n: u64,
    /// Which requirement was measured.
    pub metric: MetricKind,
    /// Sub-channel: collective class name, instruction group id, …
    pub channel: Option<String>,
    /// Measured per-process value (averaged over ranks unless stated
    /// otherwise by the producer).
    pub value: f64,
    /// True when the run this value came from was degraded (rank crashes,
    /// injected message faults) — the fitting layer drops such points and
    /// reports them. Absent in pre-fault-layer JSON, hence the default.
    #[serde(default)]
    pub degraded: bool,
}

/// A `(p, n)` configuration whose run produced no usable measurement at
/// all (e.g. every rank crashed, or the run deadlocked and was aborted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedConfig {
    /// Number of processes of the attempted run.
    pub p: u64,
    /// Problem size per process of the attempted run.
    pub n: u64,
    /// Why no measurement was recorded.
    pub reason: String,
}

/// A survey: all observations for one application across its measurement
/// grid. Serializable so bench binaries can cache expensive sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Survey {
    /// JSON schema version this survey was written with. Absent in
    /// pre-versioning JSON (defaults to 0); see [`SURVEY_SCHEMA_VERSION`].
    #[serde(default)]
    pub schema_version: u32,
    /// Application name.
    pub app: String,
    /// All recorded observations.
    pub observations: Vec<Observation>,
    /// Configurations that produced no usable measurement (all ranks dead,
    /// deadlock abort). Absent in pre-fault-layer JSON, hence the default.
    #[serde(default)]
    pub skipped: Vec<SkippedConfig>,
    /// True when this artifact was written by a *preempted* sweep (SIGTERM,
    /// deadline, budget) and therefore covers only a prefix of its grid.
    /// The journal, not this file, is the resume source of truth; the flag
    /// exists so downstream consumers never mistake a partial artifact for
    /// a finished survey. Absent (false) in schema ≤ 1 files, which were
    /// only ever written by completed sweeps.
    #[serde(default)]
    pub incomplete: bool,
}

impl Default for Survey {
    fn default() -> Self {
        Survey::new("")
    }
}

/// Why a survey JSON could not be loaded.
#[derive(Debug)]
pub enum SurveyLoadError {
    /// The text is not valid survey JSON.
    Json(serde_json::Error),
    /// The survey was written by a newer exareq whose schema this build
    /// does not understand.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The survey could not be serialized (non-finite values only; JSON
    /// has no representation for them).
    Serialize(serde_json::Error),
}

impl core::fmt::Display for SurveyLoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SurveyLoadError::Json(e) => write!(f, "{e}"),
            SurveyLoadError::UnsupportedVersion { found, supported } => write!(
                f,
                "survey schema version {found} is newer than the newest supported \
                 version {supported}; upgrade exareq to read this file"
            ),
            SurveyLoadError::Serialize(e) => write!(f, "cannot serialize survey: {e}"),
        }
    }
}

impl std::error::Error for SurveyLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurveyLoadError::Json(e) | SurveyLoadError::Serialize(e) => Some(e),
            SurveyLoadError::UnsupportedVersion { .. } => None,
        }
    }
}

impl Survey {
    /// Creates an empty survey for `app` at the current schema version.
    pub fn new(app: impl Into<String>) -> Self {
        Survey {
            schema_version: SURVEY_SCHEMA_VERSION,
            app: app.into(),
            observations: Vec::new(),
            skipped: Vec::new(),
            incomplete: false,
        }
    }

    /// Records one observation (verbatim; callers set the degraded flag).
    pub fn record(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// Records one observation.
    pub fn push(&mut self, p: u64, n: u64, metric: MetricKind, value: f64) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: None,
            value,
            degraded: false,
        });
    }

    /// Records one observation from a degraded run.
    pub fn push_degraded(&mut self, p: u64, n: u64, metric: MetricKind, value: f64) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: None,
            value,
            degraded: true,
        });
    }

    /// Records one observation scoped to a channel.
    pub fn push_channel(
        &mut self,
        p: u64,
        n: u64,
        metric: MetricKind,
        channel: impl Into<String>,
        value: f64,
    ) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: Some(channel.into()),
            value,
            degraded: false,
        });
    }

    /// Records a configuration that produced no measurement at all.
    pub fn note_skipped(&mut self, p: u64, n: u64, reason: impl Into<String>) {
        self.skipped.push(SkippedConfig {
            p,
            n,
            reason: reason.into(),
        });
    }

    /// Observations with earlier retry attempts superseded: for each
    /// `(p, n, metric, channel)` key only the **last** recorded observation
    /// is yielded, in original record order.
    ///
    /// A config that was measured degraded and then re-measured clean by
    /// the retry driver has both attempts' observations in `observations`
    /// (append-only, like the journal); every query that interprets the
    /// survey — triples, channels, degraded accounting, model fitting —
    /// must see only the final attempt, or a recovered config would still
    /// be reported (and dropped from fits) as degraded.
    pub fn final_observations(&self) -> impl Iterator<Item = &Observation> {
        let mut last: BTreeMap<(u64, u64, MetricKind, Option<&str>), usize> = BTreeMap::new();
        for (i, o) in self.observations.iter().enumerate() {
            last.insert((o.p, o.n, o.metric, o.channel.as_deref()), i);
        }
        let keep: BTreeSet<usize> = last.into_values().collect();
        self.observations
            .iter()
            .enumerate()
            .filter(move |(i, _)| keep.contains(i))
            .map(|(_, o)| o)
    }

    /// `(p, n, value)` triples for a metric (no channel), final attempts
    /// only.
    pub fn triples(&self, metric: MetricKind) -> Vec<(u64, u64, f64)> {
        self.final_observations()
            .filter(|o| o.metric == metric && o.channel.is_none())
            .map(|o| (o.p, o.n, o.value))
            .collect()
    }

    /// `(p, n, value)` triples for a metric restricted to one channel,
    /// final attempts only.
    pub fn channel_triples(&self, metric: MetricKind, channel: &str) -> Vec<(u64, u64, f64)> {
        self.final_observations()
            .filter(|o| o.metric == metric && o.channel.as_deref() == Some(channel))
            .map(|o| (o.p, o.n, o.value))
            .collect()
    }

    /// Distinct channels present for a metric, sorted.
    pub fn channels(&self, metric: MetricKind) -> Vec<String> {
        let mut set: BTreeMap<String, ()> = BTreeMap::new();
        for o in self.final_observations() {
            if o.metric == metric {
                if let Some(c) = &o.channel {
                    set.insert(c.clone(), ());
                }
            }
        }
        set.into_keys().collect()
    }

    /// Distinct `(p, n)` configurations whose **final** observations are
    /// marked degraded, sorted. A config retried to a clean measurement is
    /// not degraded, no matter what earlier attempts recorded.
    pub fn degraded_configs(&self) -> Vec<(u64, u64)> {
        let mut set: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        for o in self.final_observations() {
            if o.degraded {
                set.insert((o.p, o.n), ());
            }
        }
        set.into_keys().collect()
    }

    /// Number of distinct `(p, n)` configurations covered.
    pub fn config_count(&self) -> usize {
        let mut set: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        for o in &self.observations {
            set.insert((o.p, o.n), ());
        }
        set.len()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    /// Panics if the survey contains non-finite values (JSON cannot
    /// represent them). User-reachable writers go through
    /// [`Survey::try_to_json`] instead.
    pub fn to_json(&self) -> String {
        self.try_to_json().expect("survey serializes")
    }

    /// Serializes to pretty JSON, reporting failure instead of panicking.
    ///
    /// # Errors
    /// [`SurveyLoadError::Serialize`] when serialization fails (non-finite
    /// measurement values are the only realistic cause).
    pub fn try_to_json(&self) -> Result<String, SurveyLoadError> {
        serde_json::to_string_pretty(self).map_err(SurveyLoadError::Serialize)
    }

    /// Deserializes from JSON, applying defaults for fields absent in
    /// older schema versions and rejecting newer ones.
    ///
    /// # Errors
    /// [`SurveyLoadError::Json`] on malformed input;
    /// [`SurveyLoadError::UnsupportedVersion`] when the file's
    /// `schema_version` is newer than [`SURVEY_SCHEMA_VERSION`].
    pub fn from_json(s: &str) -> Result<Self, SurveyLoadError> {
        let survey: Survey = serde_json::from_str(s).map_err(SurveyLoadError::Json)?;
        if survey.schema_version > SURVEY_SCHEMA_VERSION {
            return Err(SurveyLoadError::UnsupportedVersion {
                found: survey.schema_version,
                supported: SURVEY_SCHEMA_VERSION,
            });
        }
        Ok(survey)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_triples() {
        let mut s = Survey::new("kripke");
        s.push(2, 100, MetricKind::Flops, 1e6);
        s.push(4, 100, MetricKind::Flops, 1e6);
        s.push(2, 100, MetricKind::BytesUsed, 5e4);
        let t = s.triples(MetricKind::Flops);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (2, 100, 1e6));
    }

    #[test]
    fn channels_are_separate() {
        let mut s = Survey::new("milc");
        s.push_channel(2, 10, MetricKind::CommBytes, "Allreduce", 100.0);
        s.push_channel(2, 10, MetricKind::CommBytes, "Bcast", 50.0);
        s.push(2, 10, MetricKind::CommBytes, 150.0);
        assert_eq!(
            s.channels(MetricKind::CommBytes),
            vec!["Allreduce", "Bcast"]
        );
        assert_eq!(
            s.channel_triples(MetricKind::CommBytes, "Allreduce"),
            vec![(2, 10, 100.0)]
        );
        // Un-channelled triples exclude channelled rows.
        assert_eq!(s.triples(MetricKind::CommBytes), vec![(2, 10, 150.0)]);
    }

    #[test]
    fn config_count_dedups() {
        let mut s = Survey::new("x");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push(2, 10, MetricKind::BytesUsed, 1.0);
        s.push(4, 10, MetricKind::Flops, 1.0);
        assert_eq!(s.config_count(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Survey::new("app");
        s.push_channel(8, 64, MetricKind::StackDistance, "group-3", 42.0);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn degraded_and_skipped_are_tracked() {
        let mut s = Survey::new("lulesh");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push_degraded(4, 10, MetricKind::Flops, 0.7);
        s.push_degraded(4, 10, MetricKind::BytesUsed, 0.5);
        s.note_skipped(8, 10, "all 8 ranks failed");
        assert_eq!(s.degraded_configs(), vec![(4, 10)]);
        assert_eq!(s.skipped.len(), 1);
        assert_eq!(s.skipped[0].p, 8);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pre_fault_layer_json_defaults_cleanly() {
        let json = r#"{
            "app": "old",
            "observations": [
                {"p": 2, "n": 10, "metric": "Flops", "channel": null, "value": 1.0}
            ]
        }"#;
        let s = Survey::from_json(json).unwrap();
        assert!(!s.observations[0].degraded);
        assert!(s.skipped.is_empty());
        assert!(!s.incomplete);
        // Pre-versioning JSON reads back as schema version 0 with every
        // newer field defaulted.
        assert_eq!(s.schema_version, 0);
    }

    #[test]
    fn incomplete_flag_roundtrips() {
        let mut s = Survey::new("preempted");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.incomplete = true;
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert!(back.incomplete);
        assert_eq!(s, back);
        // Schema-1 files (written only by completed sweeps) default clean.
        let v1 = r#"{"schema_version": 1, "app": "old", "observations": []}"#;
        assert!(!Survey::from_json(v1).unwrap().incomplete);
    }

    #[test]
    fn newer_schema_version_is_rejected_loudly() {
        let json = format!(
            r#"{{"schema_version": {}, "app": "future", "observations": []}}"#,
            SURVEY_SCHEMA_VERSION + 1
        );
        let err = Survey::from_json(&json).unwrap_err();
        match err {
            SurveyLoadError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, SURVEY_SCHEMA_VERSION + 1);
                assert_eq!(supported, SURVEY_SCHEMA_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn new_surveys_carry_current_schema_version() {
        let s = Survey::new("app");
        assert_eq!(s.schema_version, SURVEY_SCHEMA_VERSION);
        assert_eq!(Survey::default().schema_version, SURVEY_SCHEMA_VERSION);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(back.schema_version, SURVEY_SCHEMA_VERSION);
    }

    #[test]
    fn retried_then_clean_config_is_not_degraded() {
        // Attempt 1 of (4, 10) was degraded; the retry driver re-measured
        // it clean and appended the final attempt. Only the final attempt
        // may be visible to queries.
        let mut s = Survey::new("retry");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push_degraded(4, 10, MetricKind::Flops, 0.7);
        s.push_degraded(4, 10, MetricKind::BytesUsed, 0.5);
        s.push(4, 10, MetricKind::Flops, 1.1);
        s.push(4, 10, MetricKind::BytesUsed, 2.0);
        assert_eq!(
            s.degraded_configs(),
            vec![],
            "recovered config still degraded"
        );
        assert_eq!(s.config_count(), 2);
        assert_eq!(
            s.triples(MetricKind::Flops),
            vec![(2, 10, 1.0), (4, 10, 1.1)],
            "superseded attempt leaked into triples"
        );
        assert_eq!(s.triples(MetricKind::BytesUsed), vec![(4, 10, 2.0)]);
    }

    #[test]
    fn final_attempt_keeps_channels_independent() {
        let mut s = Survey::new("retry");
        s.push_channel(2, 10, MetricKind::CommBytes, "Bcast", 50.0);
        s.push(2, 10, MetricKind::CommBytes, 100.0);
        // Retry replaces only the un-channelled total.
        s.push(2, 10, MetricKind::CommBytes, 110.0);
        assert_eq!(s.triples(MetricKind::CommBytes), vec![(2, 10, 110.0)]);
        assert_eq!(
            s.channel_triples(MetricKind::CommBytes, "Bcast"),
            vec![(2, 10, 50.0)]
        );
        assert_eq!(s.channels(MetricKind::CommBytes), vec!["Bcast"]);
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in MetricKind::ALL {
            assert_eq!(MetricKind::from_name(m.name()), Some(m));
        }
        assert_eq!(MetricKind::from_name("NoSuchMetric"), None);
    }

    #[test]
    fn metric_labels_match_table_one() {
        assert_eq!(MetricKind::BytesUsed.label(), "#Bytes used");
        assert_eq!(MetricKind::IoBytes.label(), "#Bytes read & written");
        assert_eq!(MetricKind::ALL.len(), 6);
    }
}
