//! Human-readable growth descriptions.
//!
//! The paper argues its models "are intuitive in that they allow direct
//! statements such as 'the required network bandwidth grows logarithmically
//! with the system size'" (Section IV). This module generates those
//! statements from fitted models.

use crate::pmnf::{Exponents, Model};

/// The qualitative growth class of a PMNF factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthClass {
    /// No dependence.
    Constant,
    /// `log^j x` only.
    Logarithmic,
    /// `x^i` with `i < 1` (with or without log factors).
    Sublinear,
    /// Exactly `x` (no log factors).
    Linear,
    /// `x · log^j x`.
    Quasilinear,
    /// `x^i`, `1 < i < 2` (with or without log factors).
    Superlinear,
    /// `x^i` with `i ≥ 2`.
    Polynomial,
}

impl GrowthClass {
    /// Classifies an exponent pair.
    pub fn of(e: Exponents) -> GrowthClass {
        if e.is_constant() {
            GrowthClass::Constant
        } else if e.poly == 0.0 {
            GrowthClass::Logarithmic
        } else if e.poly < 1.0 {
            GrowthClass::Sublinear
        } else if e.poly == 1.0 && e.log == 0.0 {
            GrowthClass::Linear
        } else if e.poly == 1.0 {
            GrowthClass::Quasilinear
        } else if e.poly < 2.0 {
            GrowthClass::Superlinear
        } else {
            GrowthClass::Polynomial
        }
    }

    /// Adverbial phrase for sentences.
    pub fn phrase(&self) -> &'static str {
        match self {
            GrowthClass::Constant => "stays constant",
            GrowthClass::Logarithmic => "grows logarithmically",
            GrowthClass::Sublinear => "grows sublinearly",
            GrowthClass::Linear => "grows linearly",
            GrowthClass::Quasilinear => "grows quasilinearly (n·log n-like)",
            GrowthClass::Superlinear => "grows superlinearly",
            GrowthClass::Polynomial => "grows polynomially (quadratic or worse)",
        }
    }
}

/// Generates the paper-style English statement for one model parameter,
/// e.g. `"the requirement grows logarithmically with p"`.
pub fn describe_growth(model: &Model, param: &str) -> String {
    let Some(idx) = model.param_index(param) else {
        return format!("the model has no parameter named {param}");
    };
    let lead = model.dominant_exponents(idx);
    let class = GrowthClass::of(lead);
    let exact = lead
        .render(param)
        .map(|r| format!(" (as {r})"))
        .unwrap_or_default();
    format!("the requirement {} with {param}{exact}", class.phrase())
}

/// Full multi-parameter description, one clause per parameter.
pub fn describe(model: &Model) -> String {
    let clauses: Vec<String> = model
        .params
        .iter()
        .map(|p| describe_growth(model, p))
        .collect();
    clauses.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmnf::{Model, Term};

    fn m(terms: &[(f64, f64, f64)]) -> Model {
        Model::new(
            1.0,
            terms
                .iter()
                .map(|&(c, i, j)| Term::new(c, vec![Exponents::new(i, j)]))
                .collect(),
            vec!["p".into()],
        )
    }

    #[test]
    fn classes_cover_the_spectrum() {
        use GrowthClass::*;
        let e = Exponents::new;
        assert_eq!(GrowthClass::of(e(0.0, 0.0)), Constant);
        assert_eq!(GrowthClass::of(e(0.0, 1.0)), Logarithmic);
        assert_eq!(GrowthClass::of(e(0.5, 0.0)), Sublinear);
        assert_eq!(GrowthClass::of(e(0.5, 1.0)), Sublinear);
        assert_eq!(GrowthClass::of(e(1.0, 0.0)), Linear);
        assert_eq!(GrowthClass::of(e(1.0, 1.0)), Quasilinear);
        assert_eq!(GrowthClass::of(e(1.5, 0.0)), Superlinear);
        assert_eq!(GrowthClass::of(e(2.0, 0.0)), Polynomial);
        assert_eq!(GrowthClass::of(e(3.0, 2.0)), Polynomial);
    }

    #[test]
    fn paper_example_sentence() {
        // "the required network bandwidth grows logarithmically with the
        // system size" — an Allreduce-style model.
        let model = m(&[(1e4, 0.0, 1.0)]);
        let s = describe_growth(&model, "p");
        assert_eq!(
            s,
            "the requirement grows logarithmically with p (as log2(p))"
        );
    }

    #[test]
    fn constant_model_description() {
        let model = m(&[]);
        assert_eq!(
            describe_growth(&model, "p"),
            "the requirement stays constant with p"
        );
    }

    #[test]
    fn dominant_term_drives_description() {
        let model = m(&[(1e8, 1.0, 0.0), (10.0, 1.5, 0.0)]);
        assert!(describe_growth(&model, "p").contains("superlinearly"));
    }

    #[test]
    fn unknown_parameter_is_reported() {
        let model = m(&[(1.0, 1.0, 0.0)]);
        assert!(describe_growth(&model, "zz").contains("no parameter"));
    }

    #[test]
    fn multi_parameter_description_joins_clauses() {
        let model = Model::new(
            0.0,
            vec![Term::new(
                2.0,
                vec![Exponents::new(0.0, 1.0), Exponents::new(1.0, 1.0)],
            )],
            vec!["p".into(), "n".into()],
        );
        let s = describe(&model);
        assert!(s.contains("logarithmically with p"), "{s}");
        assert!(s.contains("quasilinearly"), "{s}");
        assert!(s.contains("; "), "{s}");
    }
}
