//! # exareq-apps — behavioural twins of the five study applications
//!
//! The paper measures Kripke, LULESH, MILC, Relearn and icoFoam on two
//! production clusters. We cannot run 500 000-core production codes, so each
//! application is replaced by a *behavioural twin*: a mini-app that executes
//! real floating-point work on real arrays and real (simulated-MPI) message
//! traffic, with loop and message shapes chosen so its per-process
//! requirement signature reproduces Table II. The measurement pipeline —
//! counters → surveys → model generation — is identical to the paper's and
//! is never told the target formulas; the model generator has to rediscover
//! them from the counters.
//!
//! ```
//! use exareq_apps::{measure, Kripke};
//!
//! let m = measure(&Kripke, 4, 1024);
//! assert!(m.flops > 0.0);
//! assert!(m.comm_total > 0.0);
//! ```

#![warn(missing_docs)]

pub mod extras;
pub mod icofoam;
pub mod kripke;
pub mod lulesh;
pub mod milc;
pub mod mmm;
pub mod parallel;
pub mod relearn;
pub mod resilient;
pub mod shapes;
pub mod shard;

pub use extras::{Fft, Multigrid};
pub use icofoam::IcoFoam;
pub use kripke::Kripke;
pub use lulesh::Lulesh;
pub use milc::Milc;
pub use parallel::{default_jobs, run_survey_parallel};
pub use relearn::Relearn;
pub use resilient::{
    measure_config_resilient, run_survey_cancellable, run_survey_resilient, survey_app_resilient,
    RetryPolicy, SurveyRunError,
};
pub use shard::{grid_configs, plan_shards, ShardPlan};

use exareq_core::cancel::CancelToken;
use exareq_locality::{BurstSampler, BurstSchedule};
use exareq_profile::{MetricKind, Observation, ProcessProfile, Survey};
use exareq_sim::{run_ranks_supervised, CommStats, FaultPlan, OpClass, Rank, SimConfig, SimError};
use serde::{Deserialize, Serialize};

/// A behavioural twin: one rank body plus a single-process locality kernel.
pub trait MiniApp: Sync {
    /// Application name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Executes one rank's share of the computation for per-process problem
    /// size `n`, reporting all requirements through `prof` and communicating
    /// through `rank`.
    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile);

    /// Runs the single-process memory-locality kernel for problem size `n`,
    /// registering its instruction groups on `sampler`. (The paper likewise
    /// measured stack distance on a separate system, single-threaded.)
    fn run_locality(&self, n: u64, sampler: &mut BurstSampler);
}

/// All five study applications in Table II order.
pub fn all_apps() -> Vec<Box<dyn MiniApp>> {
    vec![
        Box::new(Kripke),
        Box::new(Lulesh),
        Box::new(Milc),
        Box::new(Relearn),
        Box::new(IcoFoam),
    ]
}

/// The study applications plus the extra feasibility-study twins
/// (FFT, multigrid — related work \[20\]'s algorithm classes).
pub fn all_apps_extended() -> Vec<Box<dyn MiniApp>> {
    let mut apps = all_apps();
    apps.push(Box::new(Fft));
    apps.push(Box::new(Multigrid));
    apps
}

/// Per-region (call-path) share of one metric: `(path, value)`.
pub type RegionValues = Vec<(String, f64)>;

/// Per-process measurement of one `(p, n)` configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMeasurement {
    /// Number of processes of the run.
    pub p: u64,
    /// Per-process problem size of the run.
    pub n: u64,
    /// Mean per-process peak resident bytes.
    pub bytes_used: f64,
    /// Mean per-process FLOPs.
    pub flops: f64,
    /// Mean per-process loads + stores.
    pub loads_stores: f64,
    /// Mean per-process communication bytes (sent + received), all classes.
    pub comm_total: f64,
    /// Mean per-process bytes per collective class `(class, bytes)`.
    pub comm_by_class: Vec<(String, f64)>,
    /// Median stack distance per instruction group `(group, median, samples)`.
    pub stack_groups: Vec<(String, f64, usize)>,
    /// Mean per-process I/O bytes (read + written); zero for the five study
    /// twins, matching the paper's observation that none of its applications
    /// carries significant I/O.
    pub io_bytes: f64,
    /// Mean per-process FLOPs attributed to each call path (exclusive), the
    /// Score-P-style location-level view (Section II-B: bottlenecks can be
    /// "precisely attributed to individual program locations").
    pub flops_by_region: RegionValues,
    /// Load imbalance per metric: `max over ranks / mean over ranks`, for
    /// (flops, loads+stores, comm bytes). 1.0 = perfectly balanced. The
    /// per-process averages above assume balance (as the paper does:
    /// "the overall problem size can be divided equally among all
    /// processes"); this records how true that is for the twin.
    pub imbalance: [f64; 3],
    /// True when the run this measurement came from was degraded (rank
    /// crashes, injected message faults, watchdog abort). Absent in
    /// pre-fault-layer JSON, hence the serde default.
    #[serde(default)]
    pub degraded: bool,
    /// Ranks whose bodies completed and contributed to the averages
    /// (equals `p` for a clean run; 0 in pre-fault-layer JSON means the
    /// field was absent, not that every rank died).
    #[serde(default)]
    pub completed_ranks: u64,
}

impl AppMeasurement {
    /// Bytes for one collective class (0 if absent).
    pub fn comm_class(&self, class: &str) -> f64 {
        self.comm_by_class
            .iter()
            .find(|(c, _)| c == class)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// The largest group median stack distance (the app-level summary used
    /// when a single number is wanted; Table II reports the fastest-growing
    /// group's model).
    pub fn max_stack_distance(&self) -> Option<f64> {
        self.stack_groups
            .iter()
            .map(|(_, v, _)| *v)
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

/// Class label used in surveys and symbolic communication models.
fn class_label(c: OpClass) -> &'static str {
    match c {
        OpClass::P2p => "P2P",
        OpClass::Bcast => "Bcast",
        OpClass::Allreduce => "Allreduce",
        OpClass::Allgather => "Allgather",
        OpClass::Alltoall => "Alltoall",
    }
}

/// Per-rank raw observation: (peak bytes, flops, loads+stores, io bytes,
/// per-region flops).
type RankObs = (u64, u64, u64, u64, RegionValues);

/// Runs `app` at one `(p, n)` configuration and gathers all Table I
/// requirement metrics (one run per configuration — the metrics are
/// deterministic, as the paper's counters effectively are).
///
/// # Panics
/// Panics if the fault-free run cannot complete (i.e. the twin itself
/// deadlocks — an application bug, reported with the watchdog's
/// diagnosis). For fault-injected measurement use [`measure_with_faults`].
pub fn measure(app: &dyn MiniApp, p: usize, n: u64) -> AppMeasurement {
    measure_with_faults(app, p, n, &FaultPlan::none()).expect("fault-free twin run completes")
}

/// Runs `app` at one `(p, n)` configuration under the given fault plan.
///
/// Averages are taken over the ranks that completed (the survivors), and
/// the measurement is marked [`AppMeasurement::degraded`] when anything
/// was injected or any rank failed — the fitting layer then drops it with
/// a report instead of silently modeling a crippled run.
///
/// # Errors
/// - [`SimError::AllRanksFailed`] when no rank survived to measure.
/// - [`SimError::Deadlock`] when the watchdog caught a genuine deadlock
///   not explained by injected faults.
pub fn measure_with_faults(
    app: &dyn MiniApp,
    p: usize,
    n: u64,
    faults: &FaultPlan,
) -> Result<AppMeasurement, SimError> {
    measure_supervised(app, p, n, faults, None)
}

/// [`measure_with_faults`] with a cooperative cancellation token threaded
/// into the simulated run: every rank probes the token at its
/// communication chokepoints, so a preempted measurement winds down and
/// surfaces as [`SimError::Cancelled`] instead of completing or hanging.
///
/// # Errors
/// Everything [`measure_with_faults`] returns, plus
/// [`SimError::Cancelled`] when `cancel` fires mid-run.
pub fn measure_with_cancel(
    app: &dyn MiniApp,
    p: usize,
    n: u64,
    faults: &FaultPlan,
    cancel: &CancelToken,
) -> Result<AppMeasurement, SimError> {
    measure_supervised(app, p, n, faults, Some(cancel))
}

fn measure_supervised(
    app: &dyn MiniApp,
    p: usize,
    n: u64,
    faults: &FaultPlan,
    cancel: Option<&CancelToken>,
) -> Result<AppMeasurement, SimError> {
    let mut cfg = SimConfig::with_faults(faults.clone());
    if let Some(token) = cancel {
        cfg = cfg.with_cancel(token.clone());
    }
    let outcome = run_ranks_supervised(p, &cfg, |rank| -> RankObs {
        let mut prof = ProcessProfile::new();
        app.run_rank(rank, n, &mut prof);
        let totals = prof.totals();
        let regions: RegionValues = prof
            .callpath
            .flat_profile()
            .into_iter()
            .filter(|(_, c, _, _)| c.flops > 0)
            .map(|(path, c, _, _)| (path, c.flops as f64))
            .collect();
        (
            prof.footprint.peak(),
            totals.flops,
            totals.loads_stores(),
            prof.io.total(),
            regions,
        )
    })?;
    let degraded = outcome.is_degraded();
    let survivors: Vec<(RankObs, CommStats)> = outcome
        .ranks
        .into_iter()
        .filter_map(|r| r.value.map(|v| (v, r.stats)))
        .collect();
    if survivors.is_empty() {
        return Err(SimError::AllRanksFailed { ranks: p });
    }
    let pf = survivors.len() as f64;
    let bytes_used = survivors.iter().map(|(o, _)| o.0 as f64).sum::<f64>() / pf;
    let flops = survivors.iter().map(|(o, _)| o.1 as f64).sum::<f64>() / pf;
    let loads_stores = survivors.iter().map(|(o, _)| o.2 as f64).sum::<f64>() / pf;
    let io_bytes = survivors.iter().map(|(o, _)| o.3 as f64).sum::<f64>() / pf;
    // Average the per-region flops across ranks (regions are keyed by path;
    // the twins execute the same regions on every rank).
    let flops_by_region = merge_region_values(survivors.iter().map(|(o, _)| &o.4), pf);
    let comm_total = survivors.iter().map(|(_, s)| s.total() as f64).sum::<f64>() / pf;
    let imbalance = {
        let ratio = |f: &dyn Fn(&(RankObs, CommStats)) -> f64, mean: f64| {
            if mean == 0.0 {
                1.0
            } else {
                survivors.iter().map(f).fold(0.0f64, f64::max) / mean
            }
        };
        [
            ratio(&|(o, _)| o.1 as f64, flops),
            ratio(&|(o, _)| o.2 as f64, loads_stores),
            ratio(&|(_, s)| s.total() as f64, comm_total),
        ]
    };
    let comm_by_class = OpClass::ALL
        .iter()
        .map(|&c| {
            let v = survivors
                .iter()
                .map(|(_, s)| s.class(c).total() as f64)
                .sum::<f64>()
                / pf;
            (class_label(c).to_string(), v)
        })
        .collect();

    // Locality: single-process, exact sampling (the kernels are small).
    let mut sampler = BurstSampler::new(BurstSchedule::always());
    app.run_locality(n, &mut sampler);
    let stack_groups = sampler
        .modelable_groups()
        .filter_map(|(_, g)| g.median_stack().map(|m| (g.name.clone(), m, g.stack.len())))
        .collect();

    Ok(AppMeasurement {
        p: p as u64,
        n,
        bytes_used,
        flops,
        loads_stores,
        comm_total,
        comm_by_class,
        stack_groups,
        io_bytes,
        flops_by_region,
        imbalance,
        degraded,
        completed_ranks: survivors.len() as u64,
    })
}

/// Sums per-region values across ranks, scaling each contribution by
/// `1 / pf`, in first-appearance order (the order the regions are first
/// seen walking the ranks, which for the twins — identical call trees on
/// every rank — is rank 0's region order).
///
/// Hash-indexed, so merging R regions over k ranks is O(k·R) rather than
/// the O(k·R²) of a per-region linear scan; the output is byte-identical
/// to the naive merge because only the *lookup* changed, not the
/// accumulation order (each region's partial sums still arrive in rank
/// order).
fn merge_region_values<'a>(
    per_rank: impl Iterator<Item = &'a RegionValues>,
    pf: f64,
) -> RegionValues {
    let mut merged: RegionValues = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for regions in per_rank {
        for (path, v) in regions {
            match index.get(path) {
                Some(&i) => merged[i].1 += v / pf,
                None => {
                    index.insert(path.clone(), merged.len());
                    merged.push((path.clone(), v / pf));
                }
            }
        }
    }
    merged
}

/// The measurement grid of an application survey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppGrid {
    /// Process counts (the paper's rule of thumb: ≥ 5 values).
    pub p_values: Vec<usize>,
    /// Per-process problem sizes (≥ 5 values).
    pub n_values: Vec<u64>,
}

impl Default for AppGrid {
    fn default() -> Self {
        // n values are powers of four: perfect squares (so √n-sized
        // payloads are exact) with integral log2 (so n·log n loop shapes
        // are exact) — the cleanest measurement design for the generator.
        // Seven process counts: the paper's "at least five per parameter"
        // is a lower bound; two extra p-points let the generator separate
        // two-term p-structures (e.g. icoFoam's n·p^0.375 + p^0.5·log p)
        // from near-collinear impostor pairs.
        AppGrid {
            p_values: vec![2, 4, 8, 16, 32, 64, 128],
            n_values: vec![64, 256, 1024, 4096, 16384],
        }
    }
}

impl AppGrid {
    /// A lighter grid for fast tests (same design rules).
    pub fn small() -> Self {
        AppGrid {
            p_values: vec![2, 4, 8, 16, 32],
            n_values: vec![16, 64, 256, 1024, 4096],
        }
    }
}

/// Records one measurement's observations into a survey, carrying its
/// degraded flag onto every observation.
pub(crate) fn push_measurement(survey: &mut Survey, m: &AppMeasurement) {
    let mut push = |metric: MetricKind, channel: Option<String>, value: f64| {
        survey.record(Observation {
            p: m.p,
            n: m.n,
            metric,
            channel,
            value,
            degraded: m.degraded,
        });
    };
    push(MetricKind::BytesUsed, None, m.bytes_used);
    push(MetricKind::Flops, None, m.flops);
    push(MetricKind::LoadsStores, None, m.loads_stores);
    push(MetricKind::CommBytes, None, m.comm_total);
    for (class, v) in &m.comm_by_class {
        if *v > 0.0 {
            push(MetricKind::CommBytes, Some(class.clone()), *v);
        }
    }
    for (group, median, _) in &m.stack_groups {
        push(MetricKind::StackDistance, Some(group.clone()), *median);
    }
    if let Some(sd) = m.max_stack_distance() {
        push(MetricKind::StackDistance, None, sd);
    }
    if m.io_bytes > 0.0 {
        push(MetricKind::IoBytes, None, m.io_bytes);
    }
    for (path, v) in &m.flops_by_region {
        push(MetricKind::Flops, Some(path.clone()), *v);
    }
}

/// Runs the full 25-configuration survey for one application, producing the
/// metric observations the model generator consumes (E1).
pub fn survey_app(app: &dyn MiniApp, grid: &AppGrid) -> Survey {
    survey_app_with_faults(app, grid, &FaultPlan::none())
}

/// Runs an application survey with fault injection: every `(p, n)` run is
/// executed under `faults`. Degraded runs are recorded with their
/// observations flagged; runs with no surviving rank (or a deadlock) are
/// noted in [`Survey::skipped`] instead of aborting the whole sweep —
/// exactly how an exascale measurement campaign tolerates node failures.
///
/// This is the single-attempt special case of
/// [`resilient::run_survey_resilient`]; use the resilient driver directly
/// for retries, wall-clock budgets or journaled (resumable) sweeps.
pub fn survey_app_with_faults(app: &dyn MiniApp, grid: &AppGrid, faults: &FaultPlan) -> Survey {
    survey_app_resilient(app, grid, faults, &RetryPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_have_distinct_names() {
        let apps = all_apps();
        assert_eq!(apps.len(), 5);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"]
        );
    }

    #[test]
    fn measure_fills_every_field() {
        let m = measure(&Kripke, 4, 256);
        assert_eq!(m.p, 4);
        assert_eq!(m.n, 256);
        assert!(m.bytes_used > 0.0);
        assert!(m.flops > 0.0);
        assert!(m.loads_stores > 0.0);
        assert!(m.comm_total > 0.0);
        assert!(!m.stack_groups.is_empty());
        assert!(m.max_stack_distance().unwrap() > 0.0);
        assert!(!m.degraded);
        assert_eq!(m.completed_ranks, 4);
    }

    /// A minimal twin with a pure ring exchange: a crash on one rank only
    /// affects the ranks that still depend on it, so survivors remain.
    struct RingTwin;

    impl MiniApp for RingTwin {
        fn name(&self) -> &'static str {
            "RingTwin"
        }
        fn run_rank(&self, rank: &mut Rank, n: u64, _prof: &mut ProcessProfile) {
            let next = (rank.rank() + 1) % rank.size();
            let prev = (rank.rank() + rank.size() - 1) % rank.size();
            rank.send(next, 1, &vec![1u8; n as usize]);
            let _ = rank.recv(prev, 1);
        }
        fn run_locality(&self, _n: u64, _sampler: &mut BurstSampler) {}
    }

    #[test]
    fn crashed_rank_yields_degraded_measurement() {
        // Rank 1 dies at its second op: after sending to rank 2 (so rank 2
        // survives) but before receiving from rank 0.
        let plan = FaultPlan::default().crash(1, 2);
        let m = measure_with_faults(&RingTwin, 4, 64, &plan).expect("survivors remain");
        assert!(m.degraded);
        assert_eq!(m.completed_ranks, 3, "only rank 1 died");
        // Survivor averages are still positive, usable measurements.
        assert!(m.comm_total > 0.0);
    }

    #[test]
    fn all_twins_survive_clean_supervised_measurement() {
        // Zero watchdog false positives on the real kernels: a clean
        // supervised run of every extended twin completes undegraded.
        for app in all_apps_extended() {
            let m = measure_with_faults(app.as_ref(), 8, 64, &FaultPlan::none())
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(!m.degraded, "{}", app.name());
            assert_eq!(m.completed_ranks, 8, "{}", app.name());
        }
    }

    #[test]
    fn faulted_survey_flags_observations_instead_of_aborting() {
        let grid = AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64],
        };
        let plan = FaultPlan::default().crash(1, 5);
        let s = survey_app_with_faults(&Relearn, &grid, &plan);
        // Every configuration either produced (flagged) observations or a
        // skip record — nothing vanished silently.
        assert_eq!(s.config_count() + s.skipped.len(), 2);
        assert!(s.observations.iter().any(|o| o.degraded) || !s.skipped.is_empty());
    }

    #[test]
    fn twins_are_load_balanced() {
        // The twins execute identical work on every rank; comm varies only
        // through collective roles (trees are asymmetric), so imbalance
        // stays near 1.
        for app in all_apps() {
            let m = measure(app.as_ref(), 8, 256);
            assert!((m.imbalance[0] - 1.0).abs() < 1e-9, "{} flops", app.name());
            assert!((m.imbalance[1] - 1.0).abs() < 1e-9, "{} loads", app.name());
            assert!(
                m.imbalance[2] < 2.5,
                "{} comm {:?}",
                app.name(),
                m.imbalance
            );
        }
    }

    #[test]
    fn region_merge_matches_naive_merge_with_many_regions() {
        // The hash-indexed merge must reproduce the old linear-scan merge
        // exactly — same sums, same first-appearance ordering — on a wide
        // profile (hundreds of regions, ragged across ranks).
        let ranks: Vec<RegionValues> = (0..8)
            .map(|r| {
                (0..300)
                    .filter(|i| (i + r) % 3 != 0) // ragged: each rank misses some
                    .map(|i| (format!("main/phase{}/kernel{i}", i % 7), (i * r + 1) as f64))
                    .collect()
            })
            .collect();
        let pf = ranks.len() as f64;
        let mut naive: RegionValues = Vec::new();
        for regions in &ranks {
            for (path, v) in regions {
                match naive.iter_mut().find(|(p2, _)| p2 == path) {
                    Some((_, acc)) => *acc += v / pf,
                    None => naive.push((path.clone(), v / pf)),
                }
            }
        }
        let merged = merge_region_values(ranks.iter(), pf);
        assert_eq!(merged, naive);
        assert!(merged.len() > 100, "grid must exercise many regions");
    }

    #[test]
    fn comm_class_lookup() {
        let m = measure(&Milc, 4, 256);
        assert!(m.comm_class("Allreduce") > 0.0);
        assert_eq!(m.comm_class("NoSuchClass"), 0.0);
    }

    #[test]
    fn survey_covers_grid() {
        let grid = AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64, 128],
        };
        let s = survey_app(&Relearn, &grid);
        assert_eq!(s.config_count(), 4);
        assert_eq!(s.triples(MetricKind::Flops).len(), 4);
        // Channels present for comm and stack distance.
        assert!(!s.channels(MetricKind::CommBytes).is_empty());
        assert!(!s.channels(MetricKind::StackDistance).is_empty());
    }

    #[test]
    fn survey_json_roundtrip() {
        let grid = AppGrid {
            p_values: vec![2],
            n_values: vec![64],
        };
        let s = survey_app(&Kripke, &grid);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }
}
