//! `exareq-net`: the networking plumbing shared by every component that
//! talks to an `exareq serve` daemon over loopback or a cluster network.
//!
//! Two modules, one concern each:
//!
//! - [`client`] — a std-only HTTP/1.1 client: connect/write/read timeouts
//!   under a total per-request budget, cancellable slice reads, typed
//!   truncation/oversize/integrity errors, jittered exponential backoff
//!   under a retry budget, and `Retry-After` honored when the server names
//!   its own price.
//! - [`health`] — endpoint liveness with hysteresis
//!   (Healthy → Suspect → Dead → recovered), fed by both a background
//!   `/healthz` prober and dispatch outcomes.
//! - [`metrics`] — phase-attributed timeout counters
//!   (`net_request_phase_timeouts_total{phase}`) every client feeds, so
//!   the router and fleet can export *where* a request's budget went.
//!
//! Both grew up inside `exareq-fleet` driving survey workers; the serving
//! router (`exareq router`) needs the exact same behaviours for query
//! replicas, so they live here and both crates re-export them. There is
//! deliberately one implementation of "retry politely" and one of "decide
//! a peer is dead" in this workspace — a failover bug fixed here is fixed
//! for the fleet coordinator and the query router at once.

#![warn(missing_docs)]

pub mod client;
pub mod health;
pub mod metrics;

pub use client::{
    digest_hex, fnv1a64, sleep_cancellable, ClientConfig, ClientError, ClientResponse, HttpClient,
    MAX_RESPONSE_BODY, MAX_RESPONSE_HEAD, MAX_RETRY_AFTER_SECS,
};
pub use health::{HealthPolicy, HealthTable, WorkerState};
pub use metrics::{NetMetrics, Phase, PHASES};
