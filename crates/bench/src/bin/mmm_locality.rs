//! Regenerates the **Section II-D** experiment: modeling the scalability of
//! memory locality for naïve vs blocked matrix multiplication (Listings 1
//! and 2). The locality models must discover that the naïve kernel's stack
//! distances grow with the matrix (Θ(n), Θ(n²)) while the blocked kernel's
//! depend only on the block size (Θ(b), Θ(b²), constant C).
//!
//! Run with `cargo run --release -p exareq-bench --bin mmm_locality`.

use exareq_apps::mmm::{blocked_mmm, naive_mmm};
use exareq_bench::write_report;
use exareq_core::fit::{fit_single, FitConfig};
use exareq_core::measurement::Experiment;
use exareq_locality::{BurstSampler, BurstSchedule};

fn main() {
    let cfg = FitConfig::default();
    let mut out = String::new();
    out.push_str("== Section II-D reproduction: MMM locality models ==\n\n");

    // --- Naive kernel: model SD as a function of n. ---
    let ns = [8usize, 12, 16, 24, 32, 48];
    let mut exp_a = Experiment::new(vec!["n"]);
    let mut exp_b = Experiment::new(vec!["n"]);
    out.push_str("naive mmm (Listing 1):\n  n     SD(A)     SD(B)     RD(B)\n");
    for &n in &ns {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let (g, _) = naive_mmm(n, &mut s);
        let sd_a = s.groups()[g.a].median_stack().unwrap();
        let sd_b = s.groups()[g.b].median_stack().unwrap();
        let rd_b = s.groups()[g.b].median_reuse().unwrap();
        out.push_str(&format!("  {n:<4}  {sd_a:<8}  {sd_b:<8}  {rd_b:<8}\n"));
        exp_a.push(&[n as f64], sd_a);
        exp_b.push(&[n as f64], sd_b);
    }
    let ma = fit_single(&exp_a, &cfg).expect("fit SD(A)");
    let mb = fit_single(&exp_b, &cfg).expect("fit SD(B)");
    out.push_str(&format!(
        "  model SD_A(n) = {}     (paper: ~2n)\n",
        ma.model
    ));
    out.push_str(&format!(
        "  model SD_B(n) = {}     (paper: n^2 + 2n - 1)\n",
        mb.model
    ));

    // --- Blocked kernel: SD as a function of b, invariant in n. ---
    let bs = [2usize, 4, 8, 16];
    let n = 32;
    let mut exp_ba = Experiment::new(vec!["b"]);
    let mut exp_bb = Experiment::new(vec!["b"]);
    out.push_str("\nblocked mmm (Listing 2), n = 32:\n  b     SD(A)     SD(B)     SD(C)\n");
    for &b in &bs {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let (g, _) = blocked_mmm(n.max(b), b, &mut s);
        let sd_a = s.groups()[g.a].median_stack().unwrap();
        let sd_b = s.groups()[g.b].median_stack().unwrap();
        let sd_c = s.groups()[g.c].median_stack().unwrap();
        out.push_str(&format!("  {b:<4}  {sd_a:<8}  {sd_b:<8}  {sd_c:<8}\n"));
        exp_ba.push(&[b as f64], sd_a);
        exp_bb.push(&[b as f64], sd_b);
    }
    let mba = fit_single(&exp_ba, &cfg).expect("fit blocked SD(A)");
    let mbb = fit_single(&exp_bb, &cfg).expect("fit blocked SD(B)");
    out.push_str(&format!(
        "  model SD_A(b) = {}     (paper: 2b + 1)\n",
        mba.model
    ));
    out.push_str(&format!(
        "  model SD_B(b) = {}     (paper: ~2b^2 + b)\n",
        mbb.model
    ));

    // --- Invariance in n at fixed b. ---
    out.push_str("\nblocked mmm, b = 4, n sweep (locality must not move):\n");
    for n in [16usize, 32, 64, 96] {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let (g, _) = blocked_mmm(n, 4, &mut s);
        out.push_str(&format!(
            "  n = {n:<4} SD(A) = {}  SD(B) = {}  SD(C) = {}\n",
            s.groups()[g.a].median_stack().unwrap(),
            s.groups()[g.b].median_stack().unwrap(),
            s.groups()[g.c].median_stack().unwrap()
        ));
    }
    out.push_str(
        "\nConclusion (paper): the naive implementation is locality-degrading\n\
         (stack distances grow with the problem), the blocked implementation is\n\
         locality-preserving (stack distances depend only on the block size) —\n\
         with equal FLOPs, the blocked variant is preferable.\n",
    );
    print!("{out}");
    write_report("mmm_locality.txt", &out);
}
