//! Compiled PMNF: a flat coefficient/exponent table for batch evaluation.
//!
//! [`Model`] is the authoring representation — per-term `Vec<Exponents>`
//! aligned with the parameter list, one heap allocation per term, and a
//! multiply by `1.0` for every parameter a term does not mention. That
//! layout is right for fitting and display, and wrong for the serve
//! daemon's hot path, where one `POST /predict_batch` walks the same five
//! models over thousands of `(p, n)` points.
//!
//! [`CompiledModel`] lowers a model once into two flat arrays:
//!
//! ```text
//! terms:   [ (coeff, factor range) … ]           one entry per term
//! factors: [ (param index, poly, log) … ]        non-constant factors only
//! ```
//!
//! Evaluation is a single forward pass over both arrays — no per-term
//! indirection, no constant factors, cache lines consumed in order.
//!
//! ## Bit-identity contract
//!
//! `CompiledModel::eval` returns **bit-identical** results to
//! [`Model::eval`] for every input. The serve daemon's byte-identity
//! guarantee (a daemon `200` equals the direct library call, digit for
//! digit) rides on this, so the lowering is *not allowed* to re-associate
//! anything:
//!
//! - each factor value is computed exactly as [`Exponents::eval`] does
//!   (clamp, conditional `powf`, conditional `log2().powf`);
//! - factor values multiply into a basis that starts at `1.0`, in the
//!   term's original factor order — skipping constant factors is exact
//!   because their value is exactly `1.0` and IEEE multiplication by `1.0`
//!   is the identity;
//! - term values accumulate into a sum that starts at `0.0`, in term
//!   order, and the constant is added **after** the sum — the same fold
//!   `constant + Σ` that `Model::eval` performs, not the re-associated
//!   `(constant + t₀) + t₁ …`.
//!
//! `tests/compiled_pmnf_properties.rs` fuzzes this contract over arbitrary
//! models and coordinates.

use crate::pmnf::Model;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One non-constant factor `x_param^poly · log2(x_param)^log` in the flat
/// factor table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledFactor {
    /// Index of the parameter this factor applies to.
    pub param: u32,
    /// Polynomial exponent `i`.
    pub poly: f64,
    /// Logarithm exponent `j`.
    pub log: f64,
}

/// One term: its coefficient and the half-open range of entries it owns in
/// the factor table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledTerm {
    /// Multiplicative coefficient `c_k`.
    pub coeff: f64,
    /// First factor index in [`CompiledModel::factors`].
    pub factors_start: u32,
    /// Number of factors (possibly zero for a constant term).
    pub factors_len: u32,
}

/// A PMNF model lowered into flat arrays for cache-friendly evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    constant: f64,
    arity: usize,
    terms: Vec<CompiledTerm>,
    factors: Vec<CompiledFactor>,
}

impl CompiledModel {
    /// Lowers `model` into the flat form. Constant factors (exponents
    /// `0, 0`) are dropped — they contribute exactly `1.0` to a product —
    /// and every surviving factor keeps its original in-term order.
    pub fn lower(model: &Model) -> CompiledModel {
        let mut factors = Vec::new();
        let mut terms = Vec::with_capacity(model.terms.len());
        for term in &model.terms {
            let start = factors.len();
            for (param, f) in term.factors.iter().enumerate() {
                if !f.is_constant() {
                    factors.push(CompiledFactor {
                        param: param as u32,
                        poly: f.poly,
                        log: f.log,
                    });
                }
            }
            terms.push(CompiledTerm {
                coeff: term.coeff,
                factors_start: start as u32,
                factors_len: (factors.len() - start) as u32,
            });
        }
        CompiledModel {
            constant: model.constant,
            arity: model.arity(),
            terms,
            factors,
        }
    }

    /// Number of model parameters (coordinates `eval` expects).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The flat term table.
    pub fn terms(&self) -> &[CompiledTerm] {
        &self.terms
    }

    /// The flat factor table.
    pub fn factors(&self) -> &[CompiledFactor] {
        &self.factors
    }

    /// Evaluates the model at `coords` — bit-identical to
    /// [`Model::eval`] on the model this was lowered from (see the module
    /// docs for why the fold order is load-bearing).
    ///
    /// # Panics
    /// Panics (debug) if `coords.len() != self.arity()`.
    pub fn eval(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.arity);
        let mut sum = 0.0f64;
        for term in &self.terms {
            let mut basis = 1.0f64;
            let start = term.factors_start as usize;
            let end = start + term.factors_len as usize;
            for f in &self.factors[start..end] {
                // Exactly Exponents::eval, inlined over the flat entry.
                let x = coords[f.param as usize].max(1.0);
                let mut v = 1.0f64;
                if f.poly != 0.0 {
                    v *= x.powf(f.poly);
                }
                if f.log != 0.0 {
                    v *= x.log2().powf(f.log);
                }
                basis *= v;
            }
            sum += term.coeff * basis;
        }
        self.constant + sum
    }
}

/// FNV-1a 64 content hash of a model: constant and coefficient bit
/// patterns, factor exponent bit patterns, and parameter names, in
/// structure order. Two models hash equal iff they evaluate identically
/// bit for bit (same constant, terms, factors, and parameter list), which
/// is exactly the key the [`CompiledArena`] needs.
pub fn model_content_hash(model: &Model) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&model.constant.to_bits().to_le_bytes());
    eat(&(model.terms.len() as u64).to_le_bytes());
    for term in &model.terms {
        eat(&term.coeff.to_bits().to_le_bytes());
        eat(&(term.factors.len() as u64).to_le_bytes());
        for f in &term.factors {
            eat(&f.poly.to_bits().to_le_bytes());
            eat(&f.log.to_bits().to_le_bytes());
        }
    }
    for p in &model.params {
        eat(p.as_bytes());
        eat(&[0]);
    }
    hash
}

/// A shared lowering cache keyed by [`model_content_hash`]: asking for the
/// same model twice returns the same `Arc<CompiledModel>` without
/// re-lowering. The serve registry threads every artifact's five metric
/// models through one arena, so a refresh (or an online refit touching a
/// single metric) re-lowers only the models whose content actually
/// changed.
#[derive(Debug, Default)]
pub struct CompiledArena {
    inner: Mutex<HashMap<u64, Arc<CompiledModel>>>,
}

impl CompiledArena {
    /// An empty arena.
    pub fn new() -> Self {
        CompiledArena::default()
    }

    /// The lowered form of `model`: cached when its content hash was seen
    /// before, freshly lowered (and cached) otherwise.
    pub fn lower(&self, model: &Model) -> Arc<CompiledModel> {
        let key = model_content_hash(model);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(CompiledModel::lower(model))),
        )
    }

    /// Distinct models lowered so far — observability for the "refresh
    /// only re-lowers changed models" contract.
    pub fn lowered(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Drops cached lowerings whose hash is not in `live` — called after a
    /// registry refresh so departed artifacts do not pin memory.
    pub fn retain(&self, live: &dyn Fn(u64) -> bool) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|k, _| live(*k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmnf::{Exponents, Term};

    fn two_param(constant: f64, terms: Vec<Term>) -> Model {
        Model::new(constant, terms, vec!["p".to_string(), "n".to_string()])
    }

    fn assert_bit_identical(model: &Model, coords: &[f64]) {
        let compiled = CompiledModel::lower(model);
        let direct = model.eval(coords);
        let fast = compiled.eval(coords);
        assert_eq!(
            direct.to_bits(),
            fast.to_bits(),
            "coords {coords:?}: direct {direct:?} vs compiled {fast:?}"
        );
    }

    #[test]
    fn constant_model_lowers_to_empty_tables() {
        let m = Model::constant(3.25, vec!["p".to_string()]);
        let c = CompiledModel::lower(&m);
        assert!(c.terms().is_empty());
        assert!(c.factors().is_empty());
        assert_bit_identical(&m, &[17.0]);
    }

    #[test]
    fn constant_factors_are_dropped_without_changing_bits() {
        // Term mentions only n: the p factor is constant and must vanish.
        let m = two_param(
            1.0e3,
            vec![Term::new(
                2.5,
                vec![Exponents::constant(), Exponents::new(1.0, 1.0)],
            )],
        );
        let c = CompiledModel::lower(&m);
        assert_eq!(c.factors().len(), 1);
        assert_eq!(c.factors()[0].param, 1);
        for coords in [[2.0, 64.0], [1.0, 1.0], [1e8, 1e6], [3.7, 1000.5]] {
            assert_bit_identical(&m, &coords);
        }
    }

    #[test]
    fn multiplicative_and_fractional_terms_stay_bit_identical() {
        // Kripke-like n·p and LULESH-like n log n · p^0.25 log p shapes,
        // plus a negative coefficient so the sum order matters.
        let m = two_param(
            -7.5e2,
            vec![
                Term::new(
                    4.0,
                    vec![Exponents::new(1.0, 0.0), Exponents::new(1.0, 0.0)],
                ),
                Term::new(
                    1.0e-3,
                    vec![Exponents::new(0.25, 1.0), Exponents::new(1.0, 1.0)],
                ),
                Term::new(-2.0, vec![Exponents::new(0.0, 2.0), Exponents::constant()]),
            ],
        );
        for coords in [
            [2.0, 64.0],
            [32.0, 1024.0],
            [1e8, 1e6],
            [1.0, 1.0],
            [0.5, 0.25], // below the clamp: both paths clamp to 1
        ] {
            assert_bit_identical(&m, &coords);
        }
    }

    #[test]
    fn coordinates_below_one_clamp_identically() {
        let m = two_param(
            0.0,
            vec![Term::new(
                3.0,
                vec![Exponents::new(2.0, 1.0), Exponents::new(0.5, 0.0)],
            )],
        );
        assert_bit_identical(&m, &[0.0, 0.9]);
    }

    #[test]
    fn content_hash_tracks_content_not_identity() {
        let a = two_param(
            1.0,
            vec![Term::new(
                2.0,
                vec![Exponents::new(1.0, 0.0), Exponents::new(1.0, 1.0)],
            )],
        );
        let same = a.clone();
        assert_eq!(model_content_hash(&a), model_content_hash(&same));
        let mut other_coeff = a.clone();
        other_coeff.terms[0].coeff = 2.5;
        assert_ne!(model_content_hash(&a), model_content_hash(&other_coeff));
        let mut other_const = a.clone();
        other_const.constant = 1.5;
        assert_ne!(model_content_hash(&a), model_content_hash(&other_const));
        let mut other_exp = a.clone();
        other_exp.terms[0].factors[1] = Exponents::new(2.0, 1.0);
        assert_ne!(model_content_hash(&a), model_content_hash(&other_exp));
    }

    #[test]
    fn arena_reuses_unchanged_lowerings() {
        let arena = CompiledArena::new();
        let m = two_param(
            1.0,
            vec![Term::new(
                4.0,
                vec![Exponents::new(1.0, 0.0), Exponents::new(1.0, 0.0)],
            )],
        );
        let first = arena.lower(&m);
        let second = arena.lower(&m.clone());
        assert!(Arc::ptr_eq(&first, &second), "same content, same lowering");
        assert_eq!(arena.lowered(), 1);

        // A coefficient change (the refresh case) lowers exactly one more.
        let mut refit = m.clone();
        refit.terms[0].coeff = 4.5;
        let third = arena.lower(&refit);
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(arena.lowered(), 2);

        // Retain drops the lowering whose model departed.
        let keep = model_content_hash(&refit);
        arena.retain(&|k| k == keep);
        assert_eq!(arena.lowered(), 1);
        assert_eq!(first.eval(&[2.0, 64.0]), m.eval(&[2.0, 64.0]));
    }
}
