//! # exareq-sim — deterministic message-passing simulator
//!
//! The measurement substrate of the reproduction. The paper ran its five
//! applications on JUQUEEN and Lichtenberg under an MPI library; we run
//! *behavioural twins* on this simulator instead. Because the paper's
//! requirement metrics (Table I) are hardware-independent by construction —
//! bytes injected, FLOPs executed, loads/stores retired — a functional
//! simulator that executes the same data flow produces the same counter
//! values a physical cluster would.
//!
//! Each simulated rank runs on its own OS thread and communicates through
//! unbounded channels. Collectives are implemented with real algorithms
//! (binomial-tree broadcast, recursive-doubling all-reduce, ring all-gather,
//! pairwise all-to-all) so byte counts carry the true structural
//! `p`-dependence that the model generator later rediscovers as `log p`,
//! `p − 1`, …
//!
//! ```
//! use exareq_sim::{run_ranks, total_stats};
//!
//! let results = run_ranks(8, |rank| {
//!     let mut local = vec![rank.rank() as f64];
//!     rank.allreduce_sum(&mut local);
//!     local[0]
//! });
//! assert!(results.iter().all(|r| r.value == 28.0)); // Σ 0..8
//! let stats = total_stats(&results);
//! assert!(stats.total_sent() > 0);
//! ```

#![warn(missing_docs)]

mod collectives;
mod extended;
mod rank;
mod runner;
pub mod stats;
pub mod topology;

pub use extended::{Group, RecvFuture};
pub use rank::Rank;
pub use runner::{max_over_ranks, run_ranks, total_stats, RankResult};
pub use stats::{ClassBytes, CommStats, OpClass};
pub use topology::{dims_create, CartGrid};
