//! The fleet coordinator: shard dispatch, work stealing, and the
//! crash-exact journal merge.
//!
//! [`run_fleet`] shards the pending survey grid ([`plan_shards`]) and
//! farms the shards out to `exareq serve --allow-measure` workers over
//! `POST /measure`, surviving their failure:
//!
//! - one **dispatcher** thread per worker pulls shards from a shared
//!   queue while its worker is Healthy (per the [`HealthTable`] fed by
//!   the background `/healthz` prober *and* dispatch outcomes);
//! - a failed or timed-out dispatch **re-queues** the shard, where any
//!   healthy worker's dispatcher steals it (`fleet_redispatch_total`);
//! - completions land in a [`ShardSequencer`] keyed by shard id with
//!   **first-wins** semantics — a late duplicate is dropped, never
//!   committed twice;
//! - the **committer** (the calling thread) drains the sequencer in
//!   canonical shard order and replays the sequential driver's exact
//!   commit sequence per config — journal append, survey fold, budget
//!   charge — so the merged journal and Survey artifact are
//!   byte-identical to a single-process sequential run;
//! - **degraded mode**: when every worker is dead, or a shard exhausts
//!   its re-dispatch budget, the committer measures the shard in-process
//!   with the same [`measure_config_resilient`] the workers run. The
//!   run completes, flagged in the [`FleetReport`] — never a silent
//!   stall.
//!
//! Byte-identity holds because a journal entry is a pure function of
//! `(application, p, n, fault plan, attempt)` — the seeds derive from
//! [`exareq_sim::derive_attempt_seed`] — so *where* a config was
//! measured cannot show up in *what* was measured, and the committer
//! alone writes the journal, in canonical order, through the same
//! `SurveyJournal::append` path as `exareq survey`.

use crate::client::{sleep_cancellable, ClientConfig, ClientError, HttpClient};
use crate::health::{HealthPolicy, HealthTable, WorkerState};
use crate::metrics::FleetMetrics;
use exareq_apps::{
    grid_configs, measure_config_resilient, plan_shards, AppGrid, MiniApp, RetryPolicy, ShardPlan,
    SurveyRunError,
};
use exareq_core::cancel::CancelToken;
use exareq_profile::journal::{apply_entry, JournalEntry, SurveyJournal};
use exareq_profile::minijson::Json;
use exareq_profile::Survey;
use exareq_serve::api;
use exareq_sim::FaultPlan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How often the waiting committer re-checks for starvation (all workers
/// dead, or the awaited shard over its re-dispatch budget).
const COMMIT_POLL: Duration = Duration::from_millis(50);

/// Dispatcher idle/backoff pause between queue polls.
const DISPATCH_IDLE: Duration = Duration::from_millis(20);

/// Coordinator tuning. [`Default`] matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`), index-aligned with the
    /// [`HealthTable`] and the per-worker report rows.
    pub workers: Vec<String>,
    /// Configs per shard (0 is treated as 1).
    pub shard_size: usize,
    /// Worker-side deadline per shard, shipped as `deadline_ms`; a
    /// worker past it answers 504 and the shard is re-queued.
    pub shard_deadline: Duration,
    /// Extra client-side wait beyond the shard deadline before an
    /// exchange is abandoned (covers transfer + queue time).
    pub dispatch_grace: Duration,
    /// TCP connect timeout toward workers.
    pub connect_timeout: Duration,
    /// HTTP attempts per dispatch (transport errors and 503/504 retry
    /// within one dispatch before it counts as a failure).
    pub dispatch_retries: u32,
    /// Re-queues a single shard may consume before the committer stops
    /// waiting for workers and measures it in-process. Bounds the
    /// pathological worker that is alive on `/healthz` but never
    /// completes a shard — the degraded-mode promise is "never stalls",
    /// not "stalls only when workers are honest".
    pub max_shard_redispatches: u32,
    /// Liveness thresholds and probe cadence.
    pub health: HealthPolicy,
    /// Worker-side artificial pre-measurement hold, milliseconds. A
    /// chaos hook: widens the window in which killing a worker is
    /// guaranteed to be mid-shard. 0 in production.
    pub hold_ms: u64,
    /// Backoff jitter seed for the dispatch client.
    pub jitter_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: Vec::new(),
            shard_size: 2,
            shard_deadline: Duration::from_secs(30),
            dispatch_grace: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            dispatch_retries: 2,
            max_shard_redispatches: 5,
            health: HealthPolicy::default(),
            hold_ms: 0,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Final per-worker accounting for the [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker address as given in [`FleetConfig::workers`].
    pub addr: String,
    /// Liveness state at the end of the run (label form).
    pub state: &'static str,
    /// Shards this worker completed (first-wins completions only).
    pub shards: u64,
    /// The last dispatch failure this worker caused, if any — the
    /// operator's first clue why a worker went suspect or dead.
    pub last_error: Option<String>,
}

/// What the fleet did to finish the survey — the operator-facing
/// companion to the (byte-identical) Survey artifact. The degraded-mode
/// flag lives here, *not* in the Survey, precisely so that a run that
/// fell back still produces artifact bytes `cmp`-equal to a sequential
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Per-worker accounting, index-aligned with the config.
    pub workers: Vec<WorkerReport>,
    /// Shards the pending grid was split into.
    pub shards_total: usize,
    /// Shards re-queued after dispatch failures or timeouts.
    pub redispatches: u64,
    /// Duplicate completions dropped by first-wins commit.
    pub duplicates_dropped: u64,
    /// True when any shard was measured in-process by the coordinator.
    pub fallback: bool,
    /// Shards measured in-process.
    pub fallback_shards: u64,
    /// Suspect/Dead → Healthy promotions observed.
    pub recoveries: u64,
    /// Prometheus text exposition of the fleet counters at run end
    /// (`fleet_redispatch_total`, `fleet_worker_state{state=...}`, ...).
    pub metrics_text: String,
}

impl FleetReport {
    /// One-line JSON form, written as the `--fleet-report` artifact.
    pub fn to_json_line(&self) -> String {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("addr".to_string(), Json::Str(w.addr.clone())),
                    ("state".to_string(), Json::Str(w.state.to_string())),
                    ("shards".to_string(), Json::Num(w.shards as f64)),
                    (
                        "last_error".to_string(),
                        w.last_error
                            .as_ref()
                            .map_or(Json::Null, |e| Json::Str(e.clone())),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Num(1.0)),
            (
                "shards_total".to_string(),
                Json::Num(self.shards_total as f64),
            ),
            (
                "redispatches".to_string(),
                Json::Num(self.redispatches as f64),
            ),
            (
                "duplicates_dropped".to_string(),
                Json::Num(self.duplicates_dropped as f64),
            ),
            ("fallback".to_string(), Json::Bool(self.fallback)),
            (
                "fallback_shards".to_string(),
                Json::Num(self.fallback_shards as f64),
            ),
            ("recoveries".to_string(), Json::Num(self.recoveries as f64)),
            ("workers".to_string(), Json::Arr(workers)),
            ("metrics".to_string(), Json::Str(self.metrics_text.clone())),
        ])
        .to_line()
    }
}

/// First-wins reorder buffer keyed by shard id: dispatchers (and the
/// fallback path) deposit completed shards under any interleaving; the
/// committer takes them in canonical order. This is PR 4's sequencer
/// lifted from per-config to per-shard granularity, plus the
/// at-most-once commit rule: a slot accepts exactly one deposit, so a
/// duplicate completion — however it arises — is dropped, never
/// journaled twice.
pub struct ShardSequencer {
    slots: Mutex<Vec<Slot>>,
    ready: Condvar,
}

enum Slot {
    Empty,
    Full(Vec<JournalEntry>),
    Taken,
}

impl ShardSequencer {
    /// A sequencer with one empty slot per shard.
    pub fn new(shards: usize) -> Self {
        ShardSequencer {
            slots: Mutex::new((0..shards).map(|_| Slot::Empty).collect()),
            ready: Condvar::new(),
        }
    }

    /// Deposits shard `id`'s entries. Returns `false` — and drops the
    /// entries — if the shard was already deposited or committed: first
    /// completion wins.
    pub fn put(&self, id: usize, entries: Vec<JournalEntry>) -> bool {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        match slots[id] {
            Slot::Empty => {
                slots[id] = Slot::Full(entries);
                self.ready.notify_all();
                true
            }
            Slot::Full(_) | Slot::Taken => false,
        }
    }

    /// Takes shard `id`'s entries, waiting up to `timeout`; `None` on
    /// timeout so the caller can re-check for starvation.
    pub fn take(&self, id: usize, timeout: Duration) -> Option<Vec<JournalEntry>> {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if matches!(slots[id], Slot::Full(_)) {
                let entries = match std::mem::replace(&mut slots[id], Slot::Taken) {
                    Slot::Full(entries) => entries,
                    _ => unreachable!("guarded by the matches! above"),
                };
                return Some(entries);
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(slots, timeout)
                .unwrap_or_else(|e| e.into_inner());
            slots = guard;
            if wait.timed_out() {
                return None;
            }
        }
    }
}

/// Undispatched shards, keyed by id so the committer can claim exactly
/// the shard it is starved on.
struct ShardQueue {
    inner: Mutex<BTreeMap<usize, ShardPlan>>,
}

impl ShardQueue {
    fn new(shards: Vec<ShardPlan>) -> Self {
        ShardQueue {
            inner: Mutex::new(shards.into_iter().map(|s| (s.id, s)).collect()),
        }
    }

    /// Claims the lowest-id shard (canonical order keeps the committer's
    /// next-needed shard moving first).
    fn pop_first(&self) -> Option<ShardPlan> {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = *map.keys().next()?;
        map.remove(&id)
    }

    /// Claims a specific shard, if still queued (fallback path).
    fn take(&self, id: usize) -> Option<ShardPlan> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
    }

    /// Returns a shard for another worker to steal.
    fn push(&self, shard: ShardPlan) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(shard.id, shard);
    }
}

/// Wire-protocol constants for one run, shared by every dispatcher.
struct Proto {
    app: String,
    fault_spec: String,
    max_attempts: u32,
    deadline_ms: u64,
    hold_ms: u64,
}

enum DispatchError {
    /// Transport-level failure (connect, I/O, timeout).
    Transport(ClientError),
    /// The worker answered, but not 200.
    Status(u16),
    /// The worker answered 200 with a body that does not certify this
    /// shard — treated exactly like a failure so the shard is re-run.
    Protocol(String),
}

impl DispatchError {
    fn is_cancelled(&self) -> bool {
        matches!(self, DispatchError::Transport(ClientError::Cancelled))
    }
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Transport(e) => write!(f, "transport: {e}"),
            DispatchError::Status(code) => write!(f, "worker answered {code}"),
            DispatchError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

/// One shard round trip: POST, parse, and verify the response certifies
/// exactly this shard's configs in order.
fn dispatch_shard(
    client: &HttpClient,
    addr: &str,
    shard: &ShardPlan,
    proto: &Proto,
    cancel: &CancelToken,
) -> Result<Vec<JournalEntry>, DispatchError> {
    let request = api::MeasureRequest {
        app: proto.app.clone(),
        shard_id: shard.id as u64,
        fault_spec: proto.fault_spec.clone(),
        max_attempts: proto.max_attempts,
        deadline_ms: Some(proto.deadline_ms),
        hold_ms: proto.hold_ms,
        configs: shard.configs.clone(),
    };
    let body = api::measure_request_body(&request);
    let resp = client
        .post_with_retry(addr, "/measure", body.as_bytes(), cancel)
        .map_err(DispatchError::Transport)?;
    if resp.status != 200 {
        return Err(DispatchError::Status(resp.status));
    }
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| DispatchError::Protocol("non-UTF8 body".to_string()))?;
    let (shard_id, entries) = api::parse_measure_response(text).map_err(DispatchError::Protocol)?;
    if shard_id != shard.id as u64 {
        return Err(DispatchError::Protocol(format!(
            "answered shard {shard_id}, asked for {}",
            shard.id
        )));
    }
    if entries.len() != shard.configs.len() {
        return Err(DispatchError::Protocol(format!(
            "{} entries for {} configs",
            entries.len(),
            shard.configs.len()
        )));
    }
    for (entry, &(p, n)) in entries.iter().zip(&shard.configs) {
        if entry.p != p || entry.n != n {
            return Err(DispatchError::Protocol(format!(
                "entry for (p={}, n={}) where (p={p}, n={n}) was asked",
                entry.p, entry.n
            )));
        }
    }
    Ok(entries)
}

/// Runs a survey across a fleet of `exareq serve --allow-measure`
/// workers, returning the Survey **byte-identical to a sequential run**
/// plus the [`FleetReport`] describing how the fleet got there.
///
/// Semantics match [`run_survey_cancellable`]
/// (`exareq_apps::run_survey_cancellable`) exactly: journal replay and
/// resume, canonical-order fsynced appends, probe-budget charging per
/// committed config, and drain-style cancellation. The one deliberate
/// difference: `retry.config_budget` is **ignored** — the wire protocol
/// ships `max_attempts` only, and a wall-clock allowance measured on
/// two differently-loaded machines would break the identity contract.
///
/// With an empty worker list every shard takes the in-process fallback
/// path: the run completes, flagged `fallback: true`.
///
/// # Errors
/// [`SurveyRunError::Journal`] on append failures,
/// [`SurveyRunError::Cancelled`] when `cancel` fires (the journal keeps
/// the canonical-order prefix of committed configs, resumable like any
/// interrupted sweep), and [`SurveyRunError::BudgetExhausted`] only via
/// the in-process fallback path's own measurements.
// The signature is `run_survey_cancellable`'s plus the fleet config and
// the fault spec's wire form — grouping them into a context struct would
// just move the argument list one call inward.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_fleet(
    app: &dyn MiniApp,
    grid: &AppGrid,
    faults: &FaultPlan,
    fault_spec: &str,
    retry: &RetryPolicy,
    mut journal: Option<&mut SurveyJournal>,
    cancel: &CancelToken,
    cfg: &FleetConfig,
) -> Result<(Survey, FleetReport), SurveyRunError> {
    // The wire protocol ships attempts only; normalize so the local
    // fallback measures exactly what a worker would.
    let retry = RetryPolicy {
        max_attempts: retry.max_attempts.max(1),
        ..RetryPolicy::default()
    };
    let configs = grid_configs(grid);
    let replayed: Vec<Option<JournalEntry>> = configs
        .iter()
        .map(|&(p, n)| journal.as_deref().and_then(|j| j.get(p, n)).cloned())
        .collect();
    let pending: Vec<(u64, u64)> = configs
        .iter()
        .zip(&replayed)
        .filter(|(_, r)| r.is_none())
        .map(|(&c, _)| c)
        .collect();
    let shard_size = cfg.shard_size.max(1);
    let shards = plan_shards(&pending, shard_size);
    let shards_total = shards.len();

    let health = HealthTable::new(cfg.workers.len(), cfg.health.clone());
    let metrics = FleetMetrics::new();
    let mut survey = Survey::new(app.name());

    if pending.is_empty() {
        // Fully journaled: replay without touching any worker.
        for entry in replayed.iter().flatten() {
            apply_entry(&mut survey, entry);
        }
        let report = final_report(cfg, &health, &metrics, 0, &[], &[]);
        return Ok((survey, report));
    }

    let queue = ShardQueue::new(shards);
    let seq = ShardSequencer::new(shards_total);
    let attempts: Vec<AtomicU32> = (0..shards_total).map(|_| AtomicU32::new(0)).collect();
    let per_worker: Vec<AtomicU64> = cfg.workers.iter().map(|_| AtomicU64::new(0)).collect();
    let last_errors: Vec<Mutex<Option<String>>> =
        cfg.workers.iter().map(|_| Mutex::new(None)).collect();
    let done = AtomicBool::new(false);
    // Wind-down token for fleet-internal I/O only: cancelled when the
    // committer finishes (or the user token fires) so in-flight
    // exchanges, backoffs, and probes abort within one slice instead of
    // running out their deadlines.
    let io_cancel = CancelToken::new();
    let dispatch_client = HttpClient::new(ClientConfig {
        connect_timeout: cfg.connect_timeout,
        exchange_deadline: cfg.shard_deadline + cfg.dispatch_grace,
        retry_budget: cfg.dispatch_retries,
        jitter_seed: cfg.jitter_seed,
        ..ClientConfig::default()
    });
    let probe_client = HttpClient::new(ClientConfig {
        connect_timeout: cfg.connect_timeout,
        exchange_deadline: Duration::from_secs(1),
        retry_budget: 1,
        jitter_seed: cfg.jitter_seed ^ 0x5bf0_3635,
        ..ClientConfig::default()
    });
    let proto = Proto {
        app: app.name().to_string(),
        fault_spec: fault_spec.to_string(),
        max_attempts: retry.max_attempts,
        deadline_ms: u64::try_from(cfg.shard_deadline.as_millis()).unwrap_or(u64::MAX),
        hold_ms: cfg.hold_ms,
    };

    let mut outcome: Result<(), SurveyRunError> = Ok(());
    std::thread::scope(|scope| {
        // Dispatchers: one per worker, alive for the whole run so a
        // recovered worker resumes pulling work.
        for (w, addr) in cfg.workers.iter().enumerate() {
            let (health, queue, seq, metrics) = (&health, &queue, &seq, &metrics);
            let (attempts, per_worker, last_errors) = (&attempts, &per_worker, &last_errors);
            let (done, io_cancel) = (&done, &io_cancel);
            let (client, proto) = (&dispatch_client, &proto);
            let max_redispatch = cfg.max_shard_redispatches;
            scope.spawn(move || loop {
                if done.load(Ordering::Relaxed) || io_cancel.is_cancelled() {
                    break;
                }
                if health.state(w) != WorkerState::Healthy {
                    if !sleep_cancellable(DISPATCH_IDLE, io_cancel) {
                        break;
                    }
                    continue;
                }
                let Some(shard) = queue.pop_first() else {
                    if !sleep_cancellable(DISPATCH_IDLE, io_cancel) {
                        break;
                    }
                    continue;
                };
                if attempts[shard.id].load(Ordering::Relaxed) >= max_redispatch {
                    // Over budget: leave it for the committer's fallback.
                    queue.push(shard);
                    if !sleep_cancellable(COMMIT_POLL, io_cancel) {
                        break;
                    }
                    continue;
                }
                match dispatch_shard(client, addr, &shard, proto, io_cancel) {
                    Ok(entries) => {
                        health.record_ok(w);
                        per_worker[w].fetch_add(1, Ordering::Relaxed);
                        if seq.put(shard.id, entries) {
                            metrics.record_shard_completed();
                        } else {
                            metrics.record_duplicate_dropped();
                        }
                    }
                    Err(e) if e.is_cancelled() => {
                        // Wind-down, not a worker fault: requeue silently.
                        queue.push(shard);
                        break;
                    }
                    Err(e) => {
                        *last_errors[w].lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(e.to_string());
                        health.record_failure(w);
                        attempts[shard.id].fetch_add(1, Ordering::Relaxed);
                        metrics.record_redispatch();
                        queue.push(shard);
                    }
                }
            });
        }

        // Prober: feeds the same health table dispatch outcomes feed.
        // Dead workers keep getting probed — that is the recovery path.
        if !cfg.workers.is_empty() {
            let (health, done, io_cancel) = (&health, &done, &io_cancel);
            let (client, workers) = (&probe_client, &cfg.workers);
            let interval = cfg.health.probe_interval;
            scope.spawn(move || loop {
                if done.load(Ordering::Relaxed) || io_cancel.is_cancelled() {
                    break;
                }
                for (w, addr) in workers.iter().enumerate() {
                    if done.load(Ordering::Relaxed) || io_cancel.is_cancelled() {
                        break;
                    }
                    match client.get(addr, "/healthz", io_cancel) {
                        Ok(resp) if resp.status == 200 => {
                            health.record_ok(w);
                        }
                        Err(ClientError::Cancelled) => {}
                        Ok(_) | Err(_) => {
                            health.record_failure(w);
                        }
                    }
                }
                if !sleep_cancellable(interval, io_cancel) {
                    break;
                }
            });
        }

        // The committer: canonical order, the sequential commit sequence.
        let mut current: Option<(usize, Vec<JournalEntry>)> = None;
        let mut pending_pos = 0usize;
        'commit: for (idx, rep) in replayed.iter().enumerate() {
            if let Some(entry) = rep {
                apply_entry(&mut survey, entry);
                continue;
            }
            if let Err(c) = cancel.checkpoint() {
                outcome = Err(SurveyRunError::Cancelled { reason: c.reason });
                break;
            }
            let pos = pending_pos;
            pending_pos += 1;
            let (sid, off) = (pos / shard_size, pos % shard_size);
            if current.as_ref().map(|(s, _)| *s) != Some(sid) {
                // Acquire shard `sid`, stealing it for in-process
                // measurement if the fleet cannot deliver it.
                current = loop {
                    if let Some(entries) = seq.take(sid, COMMIT_POLL) {
                        break Some((sid, entries));
                    }
                    if let Err(c) = cancel.checkpoint() {
                        outcome = Err(SurveyRunError::Cancelled { reason: c.reason });
                        break 'commit;
                    }
                    let starved = health.all_dead()
                        || attempts[sid].load(Ordering::Relaxed) >= cfg.max_shard_redispatches;
                    if !starved {
                        continue;
                    }
                    let Some(shard) = queue.take(sid) else {
                        // In flight on some dispatcher; its bounded
                        // exchange will deposit or requeue shortly.
                        continue;
                    };
                    metrics.record_fallback_shard();
                    let mut local = Vec::with_capacity(shard.configs.len());
                    let mut failed = false;
                    for &(p, n) in &shard.configs {
                        match measure_config_resilient(app, p as usize, n, faults, &retry, cancel) {
                            Ok(entry) => local.push(entry),
                            Err(e) => {
                                outcome = Err(e);
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        break 'commit;
                    }
                    if seq.put(sid, local) {
                        metrics.record_shard_completed();
                    } else {
                        metrics.record_duplicate_dropped();
                    }
                };
            }
            let Some((_, entries)) = current.as_ref() else {
                unreachable!("acquire loop either sets current or breaks 'commit");
            };
            let entry = &entries[off];
            debug_assert_eq!((entry.p, entry.n), configs[idx], "sequencer misalignment");
            if let Some(j) = journal.as_deref_mut() {
                if let Err(e) = j.append(entry) {
                    outcome = Err(e.into());
                    break;
                }
            }
            apply_entry(&mut survey, entry);
            cancel.consume(1);
        }

        done.store(true, Ordering::Relaxed);
        io_cancel.cancel(exareq_core::cancel::CancelReason::Interrupt);
    });

    let report = final_report(
        cfg,
        &health,
        &metrics,
        shards_total,
        &per_worker,
        &last_errors,
    );
    outcome.map(|()| (survey, report))
}

/// Snapshots the health table and counters into the operator report.
fn final_report(
    cfg: &FleetConfig,
    health: &HealthTable,
    metrics: &FleetMetrics,
    shards_total: usize,
    per_worker: &[AtomicU64],
    last_errors: &[Mutex<Option<String>>],
) -> FleetReport {
    let workers = cfg
        .workers
        .iter()
        .enumerate()
        .map(|(w, addr)| WorkerReport {
            addr: addr.clone(),
            state: health.state(w).label(),
            shards: per_worker.get(w).map_or(0, |c| c.load(Ordering::Relaxed)),
            last_error: last_errors
                .get(w)
                .and_then(|e| e.lock().unwrap_or_else(|p| p.into_inner()).clone()),
        })
        .collect();
    FleetReport {
        workers,
        shards_total,
        redispatches: metrics.redispatches(),
        duplicates_dropped: metrics.duplicates_dropped(),
        fallback: metrics.fallback_shards() > 0,
        fallback_shards: metrics.fallback_shards(),
        recoveries: health.recoveries(),
        metrics_text: metrics.render(health),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_apps::{survey_app_resilient, Relearn};

    fn grid() -> AppGrid {
        AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64, 256],
        }
    }

    fn entry(p: u64, n: u64) -> JournalEntry {
        JournalEntry {
            p,
            n,
            attempts: 1,
            seed: 7,
            skip_reason: None,
            observations: Vec::new(),
        }
    }

    #[test]
    fn sequencer_drops_duplicate_completions() {
        let seq = ShardSequencer::new(2);
        assert!(seq.put(0, vec![entry(2, 64)]));
        assert!(!seq.put(0, vec![entry(2, 64)]), "second deposit loses");
        let taken = seq.take(0, Duration::from_millis(10)).expect("deposited");
        assert_eq!(taken.len(), 1);
        assert!(!seq.put(0, vec![entry(2, 64)]), "post-commit deposit loses");
        assert!(seq.take(1, Duration::from_millis(10)).is_none(), "timeout");
    }

    #[test]
    fn zero_workers_falls_back_in_process_and_matches_sequential() {
        let plan = FaultPlan::with_seed(7).drop(0.01);
        let retry = RetryPolicy::retries(1);
        let sequential = survey_app_resilient(&Relearn, &grid(), &plan, &retry);
        let cfg = FleetConfig {
            shard_size: 3, // deliberately not a divisor of the grid
            ..FleetConfig::default()
        };
        let (survey, report) = run_fleet(
            &Relearn,
            &grid(),
            &plan,
            "seed=7,drop=0.01",
            &retry,
            None,
            &CancelToken::new(),
            &cfg,
        )
        .expect("degraded mode completes");
        assert_eq!(survey, sequential);
        assert!(report.fallback);
        assert_eq!(report.fallback_shards, 2, "ceil(4 configs / 3)");
        assert_eq!(report.shards_total, 2);
        assert!(report.workers.is_empty());
        assert!(
            report
                .metrics_text
                .contains("fleet_fallback_shards_total 2\n"),
            "{}",
            report.metrics_text
        );
    }

    #[test]
    fn dead_port_workers_go_dead_and_the_run_still_matches_sequential() {
        // Bind-then-drop twice for ports that refuse connections fast.
        let dead_addr = || {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let plan = FaultPlan::with_seed(7).drop(0.01);
        let retry = RetryPolicy::retries(1);
        let sequential = survey_app_resilient(&Relearn, &grid(), &plan, &retry);
        let cfg = FleetConfig {
            workers: vec![dead_addr(), dead_addr()],
            shard_size: 2,
            dispatch_retries: 1,
            health: HealthPolicy {
                dead_after: 2,
                probe_interval: Duration::from_millis(20),
                ..HealthPolicy::default()
            },
            ..FleetConfig::default()
        };
        let (survey, report) = run_fleet(
            &Relearn,
            &grid(),
            &plan,
            "seed=7,drop=0.01",
            &retry,
            None,
            &CancelToken::new(),
            &cfg,
        )
        .expect("fallback completes");
        assert_eq!(survey, sequential);
        assert!(report.fallback, "no worker could have measured anything");
        assert!(
            report.workers.iter().all(|w| w.state == "dead"),
            "{report:?}"
        );
        assert!(
            report.workers.iter().all(|w| w.last_error.is_some()),
            "dead workers must explain themselves: {report:?}"
        );
        assert!(
            report
                .metrics_text
                .contains("fleet_worker_state{state=\"dead\"} 2\n"),
            "{}",
            report.metrics_text
        );
    }

    #[test]
    fn report_json_line_is_parseable_and_flagged() {
        let report = FleetReport {
            workers: vec![WorkerReport {
                addr: "127.0.0.1:9".to_string(),
                state: "dead",
                shards: 0,
                last_error: Some("transport: connect: refused".to_string()),
            }],
            shards_total: 3,
            redispatches: 2,
            duplicates_dropped: 0,
            fallback: true,
            fallback_shards: 3,
            recoveries: 0,
            metrics_text: "fleet_redispatch_total 2\n".to_string(),
        };
        let line = report.to_json_line();
        let v = exareq_profile::minijson::parse(&line).expect("valid JSON");
        assert_eq!(v.get("fallback").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("shards_total").and_then(Json::as_f64), Some(3.0));
        let workers = v.get("workers").and_then(Json::as_arr).expect("workers");
        assert_eq!(workers[0].get("state").and_then(Json::as_str), Some("dead"));
        assert_eq!(
            workers[0].get("last_error").and_then(Json::as_str),
            Some("transport: connect: refused")
        );
    }
}
