//! The per-application requirements bundle and bottleneck analysis
//! (the ⚠ flags of Table II).

use exareq_core::pmnf::Model;
use serde::{Deserialize, Serialize};

/// All Table I requirement models of one application, over `(p, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequirements {
    /// Application name.
    pub name: String,
    /// Memory footprint per process (bytes).
    pub bytes_used: Model,
    /// Floating-point operations per process.
    pub flops: Model,
    /// Communication bytes (sent + received) per process.
    pub comm_bytes: Model,
    /// Loads + stores per process.
    pub loads_stores: Model,
    /// Median stack distance (memory locality).
    pub stack_distance: Model,
}

/// The non-footprint "rate" metrics, iterated by analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateMetric {
    /// Computation (#FLOP).
    Computation,
    /// Network communication (#bytes).
    Communication,
    /// Memory access (#loads & stores).
    MemoryAccess,
}

impl RateMetric {
    /// All rate metrics in Table V row order.
    pub const ALL: [RateMetric; 3] = [
        RateMetric::Computation,
        RateMetric::Communication,
        RateMetric::MemoryAccess,
    ];

    /// Row label as in Table V.
    pub fn label(&self) -> &'static str {
        match self {
            RateMetric::Computation => "Computation",
            RateMetric::Communication => "Communication",
            RateMetric::MemoryAccess => "Memory access",
        }
    }
}

impl AppRequirements {
    /// The model for one rate metric.
    pub fn rate_model(&self, m: RateMetric) -> &Model {
        match m {
            RateMetric::Computation => &self.flops,
            RateMetric::Communication => &self.comm_bytes,
            RateMetric::MemoryAccess => &self.loads_stores,
        }
    }

    /// Bottleneck warnings — the rules behind Table II's ⚠ marks:
    ///
    /// 1. a non-footprint metric has a *multiplicative* p×n interaction
    ///    with polynomial growth in `p` (problem size per process and
    ///    process count compound; Table II flags `n·p`, `n·p^0.25 log p`,
    ///    `n^1.5·p^0.5` … but not purely logarithmic couplings like MILC's
    ///    `n log p`);
    /// 2. the memory footprint depends on the process count (the
    ///    requirement that excludes icoFoam from Table VII);
    /// 3. the stack distance grows with the problem size (locality decays —
    ///    MILC's flag);
    /// 4. a communication term grows with `p` at fixed `n` faster than
    ///    `log p` beyond the collective baseline (icoFoam's `p^0.5 log p`).
    pub fn warnings(&self) -> Vec<Warning> {
        let mut out = Vec::new();
        let p_idx = self
            .bytes_used
            .param_index("p")
            .expect("requirements are over (p, n)");
        let n_idx = self
            .bytes_used
            .param_index("n")
            .expect("requirements are over (p, n)");

        for m in RateMetric::ALL {
            let model = self.rate_model(m);
            let flagged = model
                .terms
                .iter()
                .any(|t| !t.factors[n_idx].is_constant() && t.factors[p_idx].poly > 0.0);
            if flagged {
                out.push(Warning::MultiplicativeInteraction(m));
            }
        }
        if self.bytes_used.depends_on(p_idx) {
            out.push(Warning::FootprintGrowsWithP);
        }
        if self.stack_distance.depends_on(n_idx) {
            out.push(Warning::LocalityDecaysWithN);
        }
        for t in &self.comm_bytes.terms {
            let fp = t.factors[p_idx];
            let fn_ = t.factors[n_idx];
            // Shapes produced by collective algorithms are attributed to
            // the collective, not flagged: `log p` (allreduce, bcast trees)
            // and plain `p` (alltoall/allgather) — Relearn's
            // `10·Alltoall(p)` is benign in Table II. Polynomial shapes no
            // collective produces (icoFoam's `p^0.5·log p`) are flagged.
            let is_collective_shape = fp.poly == 0.0 || (fp.poly == 1.0 && fp.log == 0.0);
            if fn_.is_constant() && fp.poly >= 0.5 && !is_collective_shape {
                out.push(Warning::CommGrowsSuperLogInP);
                break;
            }
        }
        out
    }
}

/// One bottleneck warning (a ⚠ of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Warning {
    /// Problem size and process count multiply in a rate metric.
    MultiplicativeInteraction(RateMetric),
    /// Memory footprint per process grows with the process count.
    FootprintGrowsWithP,
    /// Stack distance (locality) degrades as the problem grows.
    LocalityDecaysWithN,
    /// A communication term grows polynomially in `p` at fixed `n`.
    CommGrowsSuperLogInP,
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::MultiplicativeInteraction(m) => {
                write!(f, "multiplicative p×n effect in {}", m.label())
            }
            Warning::FootprintGrowsWithP => write!(f, "memory footprint grows with p"),
            Warning::LocalityDecaysWithN => write!(f, "memory locality decays with n"),
            Warning::CommGrowsSuperLogInP => {
                write!(f, "communication grows super-logarithmically in p")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    use super::*;

    #[test]
    fn kripke_flags_only_memory_access() {
        let w = catalog::kripke().warnings();
        assert_eq!(
            w,
            vec![Warning::MultiplicativeInteraction(RateMetric::MemoryAccess)]
        );
    }

    #[test]
    fn lulesh_flags_computation_and_communication() {
        let w = catalog::lulesh().warnings();
        assert!(w.contains(&Warning::MultiplicativeInteraction(RateMetric::Computation)));
        assert!(w.contains(&Warning::MultiplicativeInteraction(
            RateMetric::Communication
        )));
        assert!(!w.contains(&Warning::FootprintGrowsWithP));
    }

    #[test]
    fn milc_flags_locality() {
        let w = catalog::milc().warnings();
        assert!(w.contains(&Warning::LocalityDecaysWithN));
        assert!(!w
            .iter()
            .any(|x| matches!(x, Warning::MultiplicativeInteraction(_))));
    }

    #[test]
    fn relearn_has_no_warnings() {
        assert!(catalog::relearn().warnings().is_empty());
    }

    #[test]
    fn icofoam_flags_nearly_everything() {
        let w = catalog::icofoam().warnings();
        assert!(w.contains(&Warning::FootprintGrowsWithP));
        assert!(w.contains(&Warning::MultiplicativeInteraction(RateMetric::Computation)));
        assert!(w.contains(&Warning::MultiplicativeInteraction(
            RateMetric::Communication
        )));
        assert!(w.contains(&Warning::MultiplicativeInteraction(
            RateMetric::MemoryAccess
        )));
        assert!(w.contains(&Warning::CommGrowsSuperLogInP));
    }

    #[test]
    fn warning_display_is_readable() {
        let w = Warning::MultiplicativeInteraction(RateMetric::Computation);
        assert!(w.to_string().contains("Computation"));
    }
}
