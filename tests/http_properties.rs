//! Property-based hardening checks for the serve crate's HTTP codec,
//! mirroring `minijson_properties.rs`: no byte sequence a socket can
//! deliver — malformed, truncated, hostile, or valid — may panic the
//! parser, and every outcome must be `Ok(None)` (need more bytes), a
//! parsed request, or a well-formed 4xx/5xx error.

use exareq::serve::{parse_request, MAX_BODY_LEN, MAX_HEAD_LEN};
use proptest::prelude::*;

/// The error statuses the codec documents itself to produce.
fn documented_error(status: u16) -> bool {
    matches!(status, 400 | 413 | 431 | 501)
}

/// A syntactically valid request as raw bytes: token method, absolute-path
/// target, simple headers, exact `Content-Length` body.
fn arb_valid_request() -> impl Strategy<Value = Vec<u8>> {
    let method = prop_oneof![Just("GET"), Just("POST"), Just("DELETE"), Just("X-CUSTOM")];
    let target = proptest::string::string_regex("/[a-z0-9/_-]{0,24}").unwrap();
    let headers = prop::collection::vec(
        (
            proptest::string::string_regex("[A-Za-z][A-Za-z0-9-]{0,12}").unwrap(),
            proptest::string::string_regex("[ -9;-~]{0,16}").unwrap(),
        ),
        0..4,
    );
    let body = prop::collection::vec(any::<u8>(), 0..256);
    (method, target, headers, body).prop_map(|(method, target, headers, body)| {
        let mut head = format!("{method} {target} HTTP/1.1\r\n");
        for (name, value) in &headers {
            // The generated names can collide with the headers the codec
            // interprets; keep those out so the declared length stays ours.
            if name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&body);
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic: the parser wants more, parses, or
    /// fails with one of its documented statuses.
    #[test]
    fn arbitrary_bytes_never_panic(input in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse_request(&input) {
            Ok(_) => {}
            Err(e) => prop_assert!(documented_error(e.status), "{e:?}"),
        }
    }

    /// Arbitrary *almost-HTTP* garbage (drawn from HTTP's own alphabet,
    /// so it reaches deep into the parser) never panics either.
    #[test]
    fn http_flavoured_garbage_never_panics(
        input in proptest::string::string_regex(
            "(GET|POST|PUT|[A-Z]{1,8})? ?(/[a-z]{0,8})? ?(HTTP/1.[019])?(\r?\n)?\
             ([A-Za-z-]{0,12}:? ?[ -~]{0,16}\r?\n){0,4}(\r?\n)?[ -~]{0,64}"
        ).unwrap()
    ) {
        match parse_request(input.as_bytes()) {
            Ok(_) => {}
            Err(e) => prop_assert!(documented_error(e.status), "{e:?}"),
        }
    }

    /// A generated valid request parses completely at full length, and
    /// every strict prefix — a mid-flight read — asks for more bytes
    /// rather than erroring, mis-parsing, or panicking.
    #[test]
    fn valid_requests_parse_and_truncations_want_more(
        bytes in arb_valid_request(),
        cut in any::<prop::sample::Index>(),
    ) {
        let parsed = parse_request(&bytes)
            .expect("generated request is valid")
            .expect("generated request is complete");
        prop_assert!(bytes.ends_with(&parsed.body));
        prop_assert_eq!(
            parsed.header("content-length").and_then(|v| v.parse::<usize>().ok()),
            Some(parsed.body.len())
        );

        let cut = cut.index(bytes.len().max(1));
        if cut < bytes.len() {
            prop_assert_eq!(parse_request(&bytes[..cut]), Ok(None));
        }
    }

    /// A declared body past the minijson cap is refused with 413 from the
    /// head alone — before a single body byte is buffered.
    #[test]
    fn oversized_declared_bodies_are_413(extra in 1usize..1_000_000) {
        let len = MAX_BODY_LEN + extra;
        let head = format!("POST /predict HTTP/1.1\r\nContent-Length: {len}\r\n\r\n");
        let err = parse_request(head.as_bytes()).expect_err("over the cap");
        prop_assert_eq!(err.status, 413);
    }

    /// A head that never terminates is refused with 431 once it passes the
    /// head cap, no matter what bytes pad it out.
    #[test]
    fn unterminated_oversized_heads_are_431(pad in prop::collection::vec(0x20u8..0x7f, 0..64)) {
        let mut buf = b"GET /x HTTP/1.1\r\nX: ".to_vec();
        while buf.len() <= MAX_HEAD_LEN {
            buf.extend_from_slice(&pad);
            buf.push(b'a'); // guarantee progress and keep newlines out
        }
        let err = parse_request(&buf).expect_err("over the head cap");
        prop_assert_eq!(err.status, 431);
    }
}
