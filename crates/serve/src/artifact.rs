//! Fitted-model artifacts: [`AppRequirements`] encoded with the in-tree
//! minijson codec, so a model fitted once can be served forever without
//! refitting — and without serde.
//!
//! A requirements artifact is distinguished from a survey artifact by its
//! `"kind": "requirements"` member; the registry dispatches on it. The
//! schema is versioned independently of the survey schema and follows the
//! same policy: older accepted, newer rejected loudly.

use exareq_codesign::AppRequirements;
use exareq_core::pmnf::{Exponents, Model, Term};
use exareq_profile::minijson::{self, Json};

/// Current requirements-artifact schema version.
pub const REQUIREMENTS_SCHEMA_VERSION: u32 = 1;

/// The artifact's `kind` discriminator value.
pub const REQUIREMENTS_KIND: &str = "requirements";

/// The five requirement models, in artifact member order.
const MODEL_FIELDS: [&str; 5] = [
    "bytes_used",
    "flops",
    "comm_bytes",
    "loads_stores",
    "stack_distance",
];

fn model_to_json(m: &Model) -> Json {
    Json::Obj(vec![
        ("constant".into(), Json::Num(m.constant)),
        (
            "params".into(),
            Json::Arr(m.params.iter().map(|p| Json::Str(p.clone())).collect()),
        ),
        (
            "terms".into(),
            Json::Arr(
                m.terms
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("coeff".into(), Json::Num(t.coeff)),
                            (
                                "factors".into(),
                                Json::Arr(
                                    t.factors
                                        .iter()
                                        .map(|e| {
                                            Json::Obj(vec![
                                                ("poly".into(), Json::Num(e.poly)),
                                                ("log".into(), Json::Num(e.log)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn model_from_json(v: &Json, field: &str) -> Result<Model, String> {
    let constant = v
        .get("constant")
        .and_then(Json::to_f64_lossless)
        .ok_or_else(|| format!("{field}.constant"))?;
    let params = v
        .get("params")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{field}.params"))?
        .iter()
        .map(|p| p.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| format!("{field}.params"))?;
    let terms = v
        .get("terms")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{field}.terms"))?
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let coeff = t
                .get("coeff")
                .and_then(Json::to_f64_lossless)
                .ok_or_else(|| format!("{field}.terms[{i}].coeff"))?;
            let factors = t
                .get("factors")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{field}.terms[{i}].factors"))?
                .iter()
                .map(|e| {
                    match (
                        e.get("poly").and_then(Json::to_f64_lossless),
                        e.get("log").and_then(Json::to_f64_lossless),
                    ) {
                        (Some(poly), Some(log)) => Some(Exponents::new(poly, log)),
                        _ => None,
                    }
                })
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| format!("{field}.terms[{i}].factors"))?;
            if factors.len() != params.len() {
                return Err(format!("{field}.terms[{i}]: one factor per parameter"));
            }
            Ok(Term::new(coeff, factors))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Model::new(constant, terms, params))
}

/// Encodes fitted requirements as a minijson artifact value.
pub fn requirements_to_json(app: &AppRequirements) -> Json {
    let models = [
        &app.bytes_used,
        &app.flops,
        &app.comm_bytes,
        &app.loads_stores,
        &app.stack_distance,
    ];
    let mut members = vec![
        ("kind".into(), Json::Str(REQUIREMENTS_KIND.into())),
        (
            "schema_version".into(),
            Json::Num(f64::from(REQUIREMENTS_SCHEMA_VERSION)),
        ),
        ("app".into(), Json::Str(app.name.clone())),
    ];
    for (field, model) in MODEL_FIELDS.iter().zip(models) {
        members.push(((*field).to_string(), model_to_json(model)));
    }
    Json::Obj(members)
}

/// Encodes fitted requirements as a single JSON line.
pub fn requirements_to_string(app: &AppRequirements) -> String {
    requirements_to_json(app).to_line()
}

/// True when a parsed JSON value claims to be a requirements artifact.
pub fn is_requirements_artifact(v: &Json) -> bool {
    v.get("kind").and_then(Json::as_str) == Some(REQUIREMENTS_KIND)
}

/// Decodes a requirements artifact.
///
/// # Errors
/// A one-line reason: the offending field for shape problems, or the
/// journal-style version complaint when the artifact is newer than this
/// build.
pub fn requirements_from_json(v: &Json) -> Result<AppRequirements, String> {
    let version = v
        .get("schema_version")
        .and_then(Json::to_f64_lossless)
        .filter(|x| x.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(x))
        .map(|x| x as u32)
        .ok_or("schema_version")?;
    if version > REQUIREMENTS_SCHEMA_VERSION {
        return Err(format!(
            "requirements schema version {version} is newer than the newest supported \
             version {REQUIREMENTS_SCHEMA_VERSION}; upgrade exareq to read this file"
        ));
    }
    let name = v
        .get("app")
        .and_then(Json::as_str)
        .ok_or("app")?
        .to_string();
    let mut models = MODEL_FIELDS
        .iter()
        .map(|field| model_from_json(v.get(field).ok_or_else(|| field.to_string())?, field))
        .collect::<Result<Vec<_>, String>>()?
        .into_iter();
    Ok(AppRequirements {
        name,
        bytes_used: models.next().expect("five models"),
        flops: models.next().expect("five models"),
        comm_bytes: models.next().expect("five models"),
        loads_stores: models.next().expect("five models"),
        stack_distance: models.next().expect("five models"),
    })
}

/// Decodes a requirements artifact from JSON text.
///
/// # Errors
/// Same as [`requirements_from_json`], plus minijson syntax errors.
pub fn requirements_from_str(text: &str) -> Result<AppRequirements, String> {
    let v = minijson::parse(text).map_err(|e| e.to_string())?;
    if !is_requirements_artifact(&v) {
        return Err("not a requirements artifact (missing kind)".to_string());
    }
    requirements_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_codesign::catalog;

    #[test]
    fn paper_models_round_trip() {
        for app in catalog::paper_models() {
            let text = requirements_to_string(&app);
            let back = requirements_from_str(&text).expect("round trip");
            assert_eq!(back, app, "{}", app.name);
            // Evaluations agree exactly — the codec writes f64s losslessly.
            let coords = [64.0, 4096.0];
            assert_eq!(back.flops.eval(&coords), app.flops.eval(&coords));
        }
    }

    #[test]
    fn rejects_newer_schema_loudly() {
        let app = catalog::paper_models().remove(0);
        let text =
            requirements_to_string(&app).replace("\"schema_version\":1", "\"schema_version\":9");
        let err = requirements_from_str(&text).unwrap_err();
        assert!(err.contains("newer than the newest supported"), "{err}");
    }

    #[test]
    fn shape_errors_name_the_field() {
        let err = requirements_from_str(
            r#"{"kind":"requirements","schema_version":1,"app":"X","bytes_used":{}}"#,
        )
        .unwrap_err();
        assert!(err.contains("bytes_used"), "{err}");
    }
}
