//! Problem inflation: determine the per-process problem size that fills the
//! memory available to each process (Section II-E).
//!
//! "Since a bigger input problem usually yields better parallel efficiency,
//! we strive to fully exploit the main memory available to a process" — the
//! *heroic run* objective. Given the footprint model `bytes(p, n)` and a
//! skeleton, we solve `bytes(p, n) = mem_per_process` for `n` by monotone
//! bisection.

use crate::skeleton::SystemSkeleton;
use exareq_core::pmnf::Model;

/// Outcome of problem inflation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inflation {
    /// The problem size per process that fills memory.
    Fits(f64),
    /// The application cannot run at all: its footprint exceeds the
    /// available memory even for the smallest problem (`n = 1`) — icoFoam's
    /// fate on every exascale straw man (Table VII).
    TooBig {
        /// Footprint at `n = 1`, in bytes.
        floor_bytes: f64,
    },
    /// The footprint does not grow with `n`; any problem size fits and the
    /// memory bound gives no finite answer.
    Unbounded,
}

impl Inflation {
    /// The inflated problem size, if the application fits.
    pub fn n(&self) -> Option<f64> {
        match self {
            Inflation::Fits(n) => Some(*n),
            _ => None,
        }
    }
}

/// Upper bound of the bisection search for `n`.
const N_MAX: f64 = 1e24;

/// Solves `footprint(p, n) = mem_per_process` for `n ≥ 1`.
///
/// The footprint model must be non-decreasing in `n` (requirement models
/// are); the `p` coordinate is taken from the skeleton.
pub fn inflate_problem(footprint: &Model, system: &SystemSkeleton) -> Inflation {
    let p = system.processes;
    let m = system.mem_per_process;
    let n_idx = footprint
        .param_index("n")
        .expect("footprint model must have an n parameter");
    let eval = |n: f64| {
        let mut coords = vec![0.0; footprint.arity()];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = if i == n_idx { n } else { p };
        }
        footprint.eval(&coords)
    };

    let floor = eval(1.0);
    if floor > m {
        return Inflation::TooBig { floor_bytes: floor };
    }
    if !footprint.depends_on(n_idx) {
        return Inflation::Unbounded;
    }
    if eval(N_MAX) < m {
        // Pathological (model grows absurdly slowly); treat as unbounded.
        return Inflation::Unbounded;
    }

    // Bisection on log n for numerical grace over 24 decades.
    let (mut lo, mut hi) = (0.0f64, N_MAX.ln());
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eval(mid.exp()) <= m {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Inflation::Fits(lo.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_core::pmnf::{Exponents, Term};

    fn model(constant: f64, terms: &[(f64, Exponents, Exponents)]) -> Model {
        Model::new(
            constant,
            terms
                .iter()
                .map(|&(c, fp, fn_)| Term::new(c, vec![fp, fn_]))
                .collect(),
            vec!["p".to_string(), "n".to_string()],
        )
    }

    #[test]
    fn linear_footprint_inverts_exactly() {
        // bytes = 1e5 · n, m = 1e9 → n = 1e4.
        let f = model(
            0.0,
            &[(1e5, Exponents::constant(), Exponents::new(1.0, 0.0))],
        );
        let sys = SystemSkeleton::new(64.0, 1e9);
        let n = inflate_problem(&f, &sys).n().unwrap();
        assert!((n - 1e4).abs() / 1e4 < 1e-9, "{n}");
    }

    #[test]
    fn sqrt_footprint_inverts() {
        // bytes = 1e6 · √n, m = 1e9 → n = 1e6.
        let f = model(
            0.0,
            &[(1e6, Exponents::constant(), Exponents::new(0.5, 0.0))],
        );
        let sys = SystemSkeleton::new(64.0, 1e9);
        let n = inflate_problem(&f, &sys).n().unwrap();
        assert!((n - 1e6).abs() / 1e6 < 1e-9, "{n}");
    }

    #[test]
    fn nlogn_footprint_inverts() {
        // bytes = 1e5·n·log2 n = 1e9 → n·log2 n = 1e4 → n ≈ 1027.6.
        let f = model(
            0.0,
            &[(1e5, Exponents::constant(), Exponents::new(1.0, 1.0))],
        );
        let sys = SystemSkeleton::new(64.0, 1e9);
        let n = inflate_problem(&f, &sys).n().unwrap();
        let check = n * n.log2();
        assert!((check - 1e4).abs() / 1e4 < 1e-9, "n {n} gives {check}");
    }

    #[test]
    fn p_dependent_footprint_can_exclude() {
        // icoFoam-style: 1e3·n + 1e2·p·log2 p with tiny memory at huge p.
        let f = model(
            0.0,
            &[
                (1e3, Exponents::constant(), Exponents::new(1.0, 0.0)),
                (1e2, Exponents::new(1.0, 1.0), Exponents::constant()),
            ],
        );
        let exascale = SystemSkeleton::new(2e9, 5e6);
        match inflate_problem(&f, &exascale) {
            Inflation::TooBig { floor_bytes } => assert!(floor_bytes > 5e6),
            other => panic!("expected TooBig, got {other:?}"),
        }
        // On a small system it fits fine.
        let small = SystemSkeleton::new(64.0, 1e9);
        assert!(inflate_problem(&f, &small).n().unwrap() > 1e5);
    }

    #[test]
    fn constant_footprint_is_unbounded() {
        let f = model(42.0, &[]);
        let sys = SystemSkeleton::new(4.0, 1e6);
        assert_eq!(inflate_problem(&f, &sys), Inflation::Unbounded);
    }

    #[test]
    fn inflation_n_accessor() {
        assert_eq!(Inflation::Fits(5.0).n(), Some(5.0));
        assert_eq!(Inflation::Unbounded.n(), None);
        assert_eq!(Inflation::TooBig { floor_bytes: 1.0 }.n(), None);
    }
}
