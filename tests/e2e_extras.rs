//! End-to-end modeling of the extra feasibility-study twins (FFT,
//! multigrid): the executable version of the related-work \[20\] analyses.

use exareq::apps::{survey_app, AppGrid, Fft, Multigrid};
use exareq::core::collective::CollectiveKind;
use exareq::core::multiparam::MultiParamConfig;
use exareq::core::pmnf::Exponents;
use exareq::pipeline::model_requirements;

#[test]
fn fft_signature_recovered() {
    let survey = survey_app(&Fft, &AppGrid::default());
    let m = model_requirements(&survey, &MultiParamConfig::default()).unwrap();
    let r = &m.requirements;
    // n log n compute, linear footprint, constant locality.
    assert_eq!(
        r.flops.dominant_exponents(1),
        Exponents::new(1.0, 1.0),
        "{}",
        r.flops
    );
    assert!(!r.flops.depends_on(0), "{}", r.flops);
    assert_eq!(
        r.bytes_used.dominant_exponents(1),
        Exponents::new(1.0, 0.0),
        "{}",
        r.bytes_used
    );
    assert!(!r.stack_distance.depends_on(1));
    // The transpose is an alltoall whose volume is linear in n.
    let a2a = m
        .comm_symbolic
        .iter()
        .find(|s| s.kind == CollectiveKind::Alltoall)
        .expect("FFT has an alltoall row");
    assert_eq!(
        a2a.raw.model.dominant_exponents(1),
        Exponents::new(1.0, 0.0),
        "{}",
        a2a.raw.model
    );
}

#[test]
fn multigrid_signature_recovered() {
    let survey = survey_app(&Multigrid, &AppGrid::default());
    let m = model_requirements(&survey, &MultiParamConfig::default()).unwrap();
    let r = &m.requirements;
    // Linear compute and memory traffic; telescoped halos linear in n.
    assert_eq!(
        r.flops.dominant_exponents(1),
        Exponents::new(1.0, 0.0),
        "{}",
        r.flops
    );
    assert!(!r.flops.depends_on(0), "{}", r.flops);
    assert_eq!(
        r.loads_stores.dominant_exponents(1),
        Exponents::new(1.0, 0.0),
        "{}",
        r.loads_stores
    );
    // The coarse-solve allreduce leaves a clean symbolic row with a
    // constant scale (fixed count and payload) — the log p latency term.
    let ar = m
        .comm_symbolic
        .iter()
        .find(|s| s.kind == CollectiveKind::Allreduce)
        .expect("multigrid has an allreduce row");
    assert!(ar.is_clean(), "{}", ar.scale.model);
    assert!(!ar.scale.model.depends_on(1), "{}", ar.scale.model);
    // No multigrid hazard flags: the method's verdict is that geometric
    // multigrid (as modeled) is exascale-friendly except for the latency
    // of its coarse levels, which the requirement models express as the
    // Allreduce(p) row rather than a ⚠.
    assert!(r.warnings().is_empty(), "{:?}", r.warnings());
}
