//! Crash-consistent write-ahead journal for survey sweeps.
//!
//! A multi-config survey is hours of simulated measurement; dying at
//! config 24 of 25 must not lose configs 1–23. The [`SurveyJournal`] is a
//! JSON-lines write-ahead log:
//!
//! - line 1 is a **manifest header** ([`SurveyManifest`]): application,
//!   measurement grid, fault spec and schema version. Resuming against a
//!   *different* plan is rejected loudly ([`JournalError::ManifestMismatch`])
//!   — a journal only certifies configs for the exact sweep that wrote it.
//! - every further line is one completed `(p, n)` configuration
//!   ([`JournalEntry`]): its final-attempt observations (or skip reason),
//!   how many attempts it took, and the fault seed of the final attempt.
//!
//! Durability contract: [`SurveyJournal::append`] writes the whole line in
//! one `write` call and **fsyncs before returning**, so after a crash the
//! journal contains every config whose append returned — plus at most one
//! torn tail line, which [`SurveyJournal::resume`] detects, reports and
//! truncates away. A torn line loses only the config being written, never
//! a completed one.
//!
//! Replay is exact: entries store values with shortest-round-trip float
//! formatting and full 64-bit seeds (hex strings — JSON numbers are
//! doubles), so a resumed survey is byte-identical to an uninterrupted
//! one. The codec is the dependency-free [`crate::minijson`], chosen so
//! recovery can parse *partial* files with precise line diagnostics.

use crate::minijson::Json;
use crate::survey::{MetricKind, Observation, Survey, SURVEY_SCHEMA_VERSION};
use exareq_core::fsio::{self, ExareqIoError, IoOp};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version of the journal *file format* (header key + line layout), bumped
/// independently of the survey schema.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// The header key that identifies a file as a survey journal.
const MAGIC_KEY: &str = "exareq_survey_journal";

/// Identity of one survey sweep: everything that must match for a journal
/// to be resumable against the current plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyManifest {
    /// Application name (the twin's canonical name).
    pub app: String,
    /// Process counts of the grid, in sweep order.
    pub p_values: Vec<u64>,
    /// Per-process problem sizes of the grid, in sweep order.
    pub n_values: Vec<u64>,
    /// The fault spec the sweep runs under, verbatim (empty = fault-free).
    pub fault_spec: String,
    /// Survey schema version the entries were written with.
    pub schema_version: u32,
}

impl SurveyManifest {
    /// Builds the manifest for a sweep of `app` over the given grid.
    pub fn new(
        app: impl Into<String>,
        p_values: Vec<u64>,
        n_values: Vec<u64>,
        fault_spec: impl Into<String>,
    ) -> Self {
        SurveyManifest {
            app: app.into(),
            p_values,
            n_values,
            fault_spec: fault_spec.into(),
            schema_version: SURVEY_SCHEMA_VERSION,
        }
    }

    fn to_line(&self) -> String {
        Json::Obj(vec![
            (MAGIC_KEY.into(), Json::Num(JOURNAL_FORMAT_VERSION as f64)),
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("app".into(), Json::Str(self.app.clone())),
            ("p_values".into(), u64_arr(&self.p_values)),
            ("n_values".into(), u64_arr(&self.n_values)),
            ("faults".into(), Json::Str(self.fault_spec.clone())),
        ])
        .to_line()
    }

    fn from_json(v: &Json) -> Result<(Self, u32), String> {
        let format = get_u64(v, MAGIC_KEY).ok_or("missing journal magic header")? as u32;
        let manifest = SurveyManifest {
            app: v
                .get("app")
                .and_then(Json::as_str)
                .ok_or("manifest missing `app`")?
                .to_string(),
            p_values: get_u64_arr(v, "p_values").ok_or("manifest missing `p_values`")?,
            n_values: get_u64_arr(v, "n_values").ok_or("manifest missing `n_values`")?,
            fault_spec: v
                .get("faults")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            schema_version: get_u64(v, "schema_version")
                .ok_or("manifest missing `schema_version`")? as u32,
        };
        Ok((manifest, format))
    }

    /// Field-by-field comparison, naming the first mismatch.
    fn check_matches(&self, found: &SurveyManifest) -> Result<(), JournalError> {
        let mismatch = |field: &'static str, expected: String, found: String| {
            Err(JournalError::ManifestMismatch {
                field,
                expected,
                found,
            })
        };
        if found.app != self.app {
            return mismatch("app", self.app.clone(), found.app.clone());
        }
        if found.p_values != self.p_values {
            return mismatch(
                "p grid",
                format!("{:?}", self.p_values),
                format!("{:?}", found.p_values),
            );
        }
        if found.n_values != self.n_values {
            return mismatch(
                "n grid",
                format!("{:?}", self.n_values),
                format!("{:?}", found.n_values),
            );
        }
        if found.fault_spec != self.fault_spec {
            return mismatch(
                "fault spec",
                self.fault_spec.clone(),
                found.fault_spec.clone(),
            );
        }
        Ok(())
    }
}

/// One journaled `(p, n)` configuration: the final attempt's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Process count of the configuration.
    pub p: u64,
    /// Per-process problem size of the configuration.
    pub n: u64,
    /// How many measurement attempts the config took (1 = first try).
    pub attempts: u32,
    /// Fault-plan seed of the final attempt (for forensics / replay).
    pub seed: u64,
    /// Why the config produced no measurement; `None` for measured configs.
    pub skip_reason: Option<String>,
    /// The final attempt's observations (empty when skipped). Each
    /// observation's `(p, n)` equals the entry's.
    pub observations: Vec<Observation>,
}

impl JournalEntry {
    /// The entry as a JSON value — the wire form of the fleet's shard
    /// protocol. [`to_line`](Self::to_line) renders exactly this value, so
    /// an entry measured on a worker daemon, shipped over HTTP, and
    /// appended by the coordinator produces the same journal bytes as a
    /// local measurement.
    pub fn to_json(&self) -> Json {
        let obs = self
            .observations
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("metric".into(), Json::Str(o.metric.name().into())),
                    (
                        "channel".into(),
                        match &o.channel {
                            Some(c) => Json::Str(c.clone()),
                            None => Json::Null,
                        },
                    ),
                    ("value".into(), Json::Num(o.value)),
                    ("degraded".into(), Json::Bool(o.degraded)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("p".into(), Json::Num(self.p as f64)),
            ("n".into(), Json::Num(self.n as f64)),
            ("attempts".into(), Json::Num(self.attempts as f64)),
            ("seed".into(), Json::Str(format!("{:#018x}", self.seed))),
            (
                "skip_reason".into(),
                match &self.skip_reason {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            ("observations".into(), Json::Arr(obs)),
        ])
    }

    /// The entry as one JSON line — the exact bytes
    /// [`SurveyJournal::append`] writes (before the trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// Parses an entry from its JSON value (the inverse of
    /// [`to_json`](Self::to_json)).
    ///
    /// # Errors
    /// A one-line reason when a required field is missing or malformed.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let p = get_u64(v, "p").ok_or("entry missing `p`")?;
        let n = get_u64(v, "n").ok_or("entry missing `n`")?;
        let attempts = get_u64(v, "attempts").ok_or("entry missing `attempts`")? as u32;
        let seed_hex = v
            .get("seed")
            .and_then(Json::as_str)
            .ok_or("entry missing `seed`")?;
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16)
            .map_err(|_| format!("bad seed `{seed_hex}`"))?;
        let skip_reason = match v.get("skip_reason") {
            None | Some(Json::Null) => None,
            Some(Json::Str(r)) => Some(r.clone()),
            Some(_) => return Err("`skip_reason` is neither string nor null".into()),
        };
        let mut observations = Vec::new();
        for (i, o) in v
            .get("observations")
            .and_then(Json::as_arr)
            .ok_or("entry missing `observations`")?
            .iter()
            .enumerate()
        {
            let metric_name = o
                .get("metric")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("observation {i} missing `metric`"))?;
            let metric = MetricKind::from_name(metric_name)
                .ok_or_else(|| format!("observation {i}: unknown metric `{metric_name}`"))?;
            let channel = match o.get("channel") {
                None | Some(Json::Null) => None,
                Some(Json::Str(c)) => Some(c.clone()),
                Some(_) => return Err(format!("observation {i}: bad `channel`")),
            };
            let value = o
                .get("value")
                .and_then(Json::to_f64_lossless)
                .ok_or_else(|| format!("observation {i} missing `value`"))?;
            let degraded = o
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("observation {i} missing `degraded`"))?;
            observations.push(Observation {
                p,
                n,
                metric,
                channel,
                value,
                degraded,
            });
        }
        Ok(JournalEntry {
            p,
            n,
            attempts,
            seed,
            skip_reason,
            observations,
        })
    }
}

/// Applies one journaled config to a survey under reconstruction: skipped
/// configs are noted, measured configs contribute their observations.
pub fn apply_entry(survey: &mut Survey, entry: &JournalEntry) {
    match &entry.skip_reason {
        Some(reason) => survey.note_skipped(entry.p, entry.n, reason.clone()),
        None => {
            for o in &entry.observations {
                survey.record(o.clone());
            }
        }
    }
}

/// Why a journal could not be created, replayed or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (path and operation included).
    Io(ExareqIoError),
    /// A line before the tail failed to parse — the file is damaged beyond
    /// the crash-consistency contract and cannot be trusted.
    Corrupt {
        /// 1-based line number of the bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal was written for a different sweep plan.
    ManifestMismatch {
        /// Which manifest field disagrees.
        field: &'static str,
        /// The current plan's value.
        expected: String,
        /// The journal's value.
        found: String,
    },
    /// The journal (or its surveys) was written by a newer exareq.
    UnsupportedVersion {
        /// Which version field is too new (`journal format` or `survey schema`).
        what: &'static str,
        /// Version found in the header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
}

impl core::fmt::Display for JournalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "{e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::ManifestMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "journal was written for a different survey plan: {field} is `{found}` \
                 in the journal but `{expected}` in the current invocation; resuming \
                 against a different plan is not allowed (use a fresh journal path)"
            ),
            JournalError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "journal {what} version {found} is newer than the newest supported \
                 version {supported}; upgrade exareq to resume this journal"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExareqIoError> for JournalError {
    fn from(e: ExareqIoError) -> Self {
        JournalError::Io(e)
    }
}

/// An open, append-mode survey journal.
#[derive(Debug)]
pub struct SurveyJournal {
    path: PathBuf,
    file: File,
    manifest: SurveyManifest,
    entries: Vec<JournalEntry>,
    dropped_tail: bool,
}

impl SurveyJournal {
    /// Creates a fresh journal at `path`, writing and fsyncing the manifest
    /// header. Refuses to clobber an existing file — resume explicitly or
    /// pick a new path.
    ///
    /// # Errors
    /// [`JournalError::Io`]; creation fails with `AlreadyExists` if `path`
    /// is taken.
    pub fn create(path: impl AsRef<Path>, manifest: SurveyManifest) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| ExareqIoError::new(IoOp::Create, path, e))?;
        let mut header = manifest.to_line();
        header.push('\n');
        file.write_all(header.as_bytes())
            .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
        file.sync_all()
            .map_err(|e| ExareqIoError::new(IoOp::Sync, path, e))?;
        fsio::sync_parent_dir(path);
        Ok(SurveyJournal {
            path: path.to_path_buf(),
            file,
            manifest,
            entries: Vec::new(),
            dropped_tail: false,
        })
    }

    /// Opens an existing journal for resumption: replays its entries,
    /// verifies the manifest matches `expected`, truncates a torn tail
    /// line if the last run died mid-append, and re-opens for appending.
    ///
    /// # Errors
    /// - [`JournalError::ManifestMismatch`] when the journal belongs to a
    ///   different sweep plan (app, grid or fault spec differ);
    /// - [`JournalError::UnsupportedVersion`] for journals from newer
    ///   builds;
    /// - [`JournalError::Corrupt`] when a *non-tail* line is damaged;
    /// - [`JournalError::Io`] on filesystem failures.
    pub fn resume(path: impl AsRef<Path>, expected: &SurveyManifest) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let text = fsio::read_to_string(path)?;

        // Split into newline-terminated lines; an unterminated final
        // segment is always a torn tail (appends are single write+fsync).
        let mut lines: Vec<&str> = Vec::new();
        let mut tail_torn = false;
        for seg in text.split_inclusive('\n') {
            if seg.ends_with('\n') {
                lines.push(seg.trim_end_matches(['\n', '\r']));
            } else {
                tail_torn = true;
            }
        }

        let header_text = *lines.first().ok_or(JournalError::Corrupt {
            line: 1,
            reason: "empty journal (no manifest header)".into(),
        })?;
        let header_json =
            crate::minijson::parse(header_text).map_err(|e| JournalError::Corrupt {
                line: 1,
                reason: e.to_string(),
            })?;
        let (manifest, format) = SurveyManifest::from_json(&header_json)
            .map_err(|reason| JournalError::Corrupt { line: 1, reason })?;
        if format > JOURNAL_FORMAT_VERSION {
            return Err(JournalError::UnsupportedVersion {
                what: "format",
                found: format,
                supported: JOURNAL_FORMAT_VERSION,
            });
        }
        if manifest.schema_version > SURVEY_SCHEMA_VERSION {
            return Err(JournalError::UnsupportedVersion {
                what: "survey schema",
                found: manifest.schema_version,
                supported: SURVEY_SCHEMA_VERSION,
            });
        }
        expected.check_matches(&manifest)?;

        let mut entries: Vec<JournalEntry> = Vec::new();
        let mut valid_bytes = header_text.len() + 1;
        let mut dropped_tail = tail_torn;
        for (i, line) in lines.iter().enumerate().skip(1) {
            let is_last_line = i + 1 == lines.len() && !tail_torn;
            let parsed = crate::minijson::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|v| JournalEntry::from_json(&v));
            match parsed {
                Ok(entry) => {
                    // Duplicate (p, n): a previous resume re-measured the
                    // config; the later entry supersedes.
                    entries.retain(|e| (e.p, e.n) != (entry.p, entry.n));
                    entries.push(entry);
                    valid_bytes += line.len() + 1;
                }
                Err(reason) if is_last_line => {
                    // A damaged final line is a torn append: drop it.
                    let _ = reason;
                    dropped_tail = true;
                }
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason,
                    })
                }
            }
        }

        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| ExareqIoError::new(IoOp::Create, path, e))?;
        if dropped_tail {
            file.set_len(valid_bytes as u64)
                .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
            file.sync_all()
                .map_err(|e| ExareqIoError::new(IoOp::Sync, path, e))?;
        }
        file.seek(SeekFrom::Start(valid_bytes as u64))
            .map_err(|e| ExareqIoError::new(IoOp::Write, path, e))?;
        Ok(SurveyJournal {
            path: path.to_path_buf(),
            file,
            manifest,
            entries,
            dropped_tail,
        })
    }

    /// Appends one completed configuration and **fsyncs** before returning:
    /// once this returns `Ok`, the config survives any crash.
    ///
    /// # Errors
    /// [`JournalError::Io`] — the entry must then be considered unrecorded.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        let mut line = entry.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| ExareqIoError::new(IoOp::Write, &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| ExareqIoError::new(IoOp::Sync, &self.path, e))?;
        self.entries.retain(|e| (e.p, e.n) != (entry.p, entry.n));
        self.entries.push(entry.clone());
        Ok(())
    }

    /// The journaled configurations, replay order (last write wins).
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Looks up the journaled outcome for one configuration.
    pub fn get(&self, p: u64, n: u64) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.p == p && e.n == n)
    }

    /// The manifest this journal was created with.
    pub fn manifest(&self) -> &SurveyManifest {
        &self.manifest
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when [`SurveyJournal::resume`] found and truncated a torn tail
    /// line (the previous run died mid-append).
    pub fn dropped_tail(&self) -> bool {
        self.dropped_tail
    }
}

fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
}

/// Reads a non-negative integer member that fits `u64` exactly.
fn get_u64(v: &Json, key: &str) -> Option<u64> {
    let x = v.get(key)?.as_f64()?;
    if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
        Some(x as u64)
    } else {
        None
    }
}

fn get_u64_arr(v: &Json, key: &str) -> Option<Vec<u64>> {
    v.get(key)?
        .as_arr()?
        .iter()
        .map(|x| {
            let x = x.as_f64()?;
            (x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("exareq_journal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn manifest() -> SurveyManifest {
        SurveyManifest::new("Relearn", vec![2, 4], vec![64, 256], "seed=7,drop=0.001")
    }

    fn entry(p: u64, n: u64) -> JournalEntry {
        JournalEntry {
            p,
            n,
            attempts: 2,
            seed: 0xDEAD_BEEF_1234_5678,
            skip_reason: None,
            observations: vec![
                Observation {
                    p,
                    n,
                    metric: MetricKind::Flops,
                    channel: None,
                    value: 1.0 / 3.0 * n as f64,
                    degraded: false,
                },
                Observation {
                    p,
                    n,
                    metric: MetricKind::CommBytes,
                    channel: Some("Allreduce".into()),
                    value: 42.5,
                    degraded: true,
                },
            ],
        }
    }

    fn skip_entry(p: u64, n: u64) -> JournalEntry {
        JournalEntry {
            p,
            n,
            attempts: 3,
            seed: 7,
            skip_reason: Some("all 4 ranks failed; no surviving results".into()),
            observations: Vec::new(),
        }
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmp("roundtrip.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        j.append(&entry(2, 64)).unwrap();
        j.append(&skip_entry(4, 64)).unwrap();
        drop(j);

        let j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert!(!j.dropped_tail());
        assert_eq!(j.entries().len(), 2);
        assert_eq!(j.get(2, 64), Some(&entry(2, 64)));
        assert_eq!(j.get(4, 64), Some(&skip_entry(4, 64)));
        assert_eq!(j.get(4, 256), None);
        assert_eq!(j.manifest(), &manifest());
    }

    #[test]
    fn create_refuses_to_clobber() {
        let path = tmp("clobber.jsonl");
        SurveyJournal::create(&path, manifest()).unwrap();
        let err = SurveyJournal::create(&path, manifest()).unwrap_err();
        assert!(err.to_string().contains("create"), "{err}");
    }

    #[test]
    fn float_seed_and_value_replay_exactly() {
        let path = tmp("exact.jsonl");
        let mut e = entry(2, 64);
        e.observations[0].value = f64::MIN_POSITIVE * 3.0;
        e.seed = u64::MAX;
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        j.append(&e).unwrap();
        drop(j);
        let j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert_eq!(j.entries()[0], e);
        assert_eq!(
            j.entries()[0].observations[0].value.to_bits(),
            e.observations[0].value.to_bits()
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        j.append(&entry(2, 64)).unwrap();
        drop(j);
        // Simulate a crash mid-append: half an entry, no newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"p\":4,\"n\":64,\"att").unwrap();
        drop(f);

        let mut j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert!(j.dropped_tail());
        assert_eq!(j.entries().len(), 1, "torn line must not become an entry");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // Appending after recovery yields a well-formed journal.
        j.append(&entry(4, 64)).unwrap();
        drop(j);
        let j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert!(!j.dropped_tail());
        assert_eq!(j.entries().len(), 2);
    }

    #[test]
    fn damaged_terminated_tail_line_is_dropped_too() {
        let path = tmp("torn_terminated.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        j.append(&entry(2, 64)).unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"garbage garbage\n").unwrap();
        drop(f);
        let j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert!(j.dropped_tail());
        assert_eq!(j.entries().len(), 1);
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let path = tmp("corrupt.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        j.append(&entry(2, 64)).unwrap();
        j.append(&entry(2, 256)).unwrap();
        drop(j);
        // Damage the first entry (line 2) — not the tail, so replay must
        // refuse rather than silently skip a completed config.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let rewritten = format!("{}\nnot json\n{}\n", lines[0], lines[2]);
        std::fs::write(&path, rewritten).unwrap();
        match SurveyJournal::resume(&path, &manifest()).unwrap_err() {
            JournalError::Corrupt { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn manifest_mismatch_is_rejected_loudly() {
        let path = tmp("mismatch.jsonl");
        SurveyJournal::create(&path, manifest()).unwrap();

        let mut other_grid = manifest();
        other_grid.n_values = vec![64, 1024];
        match SurveyJournal::resume(&path, &other_grid).unwrap_err() {
            JournalError::ManifestMismatch { field, .. } => assert_eq!(field, "n grid"),
            other => panic!("expected ManifestMismatch, got {other}"),
        }

        let mut other_faults = manifest();
        other_faults.fault_spec = "seed=8".into();
        let err = SurveyJournal::resume(&path, &other_faults).unwrap_err();
        assert!(err.to_string().contains("different survey plan"), "{err}");

        let mut other_app = manifest();
        other_app.app = "Kripke".into();
        assert!(matches!(
            SurveyJournal::resume(&path, &other_app).unwrap_err(),
            JournalError::ManifestMismatch { field: "app", .. }
        ));
    }

    #[test]
    fn newer_versions_are_rejected() {
        let path = tmp("newer.jsonl");
        let mut m = manifest();
        m.schema_version = SURVEY_SCHEMA_VERSION + 5;
        SurveyJournal::create(&path, m).unwrap();
        match SurveyJournal::resume(&path, &manifest()).unwrap_err() {
            JournalError::UnsupportedVersion { what, found, .. } => {
                assert_eq!(what, "survey schema");
                assert_eq!(found, SURVEY_SCHEMA_VERSION + 5);
            }
            other => panic!("expected UnsupportedVersion, got {other}"),
        }

        // Newer *format* version: craft a header by hand.
        let path = tmp("newer_format.jsonl");
        let header = manifest().to_line().replace(
            &format!("\"{MAGIC_KEY}\":{JOURNAL_FORMAT_VERSION}"),
            &format!("\"{MAGIC_KEY}\":{}", JOURNAL_FORMAT_VERSION + 1),
        );
        std::fs::write(&path, format!("{header}\n")).unwrap();
        assert!(matches!(
            SurveyJournal::resume(&path, &manifest()).unwrap_err(),
            JournalError::UnsupportedVersion { what: "format", .. }
        ));
    }

    #[test]
    fn non_journal_file_is_corrupt_at_line_one() {
        let path = tmp("notajournal.jsonl");
        std::fs::write(&path, "{\"some\": \"json\"}\n").unwrap();
        match SurveyJournal::resume(&path, &manifest()).unwrap_err() {
            JournalError::Corrupt { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("magic"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        let path2 = tmp("empty.jsonl");
        std::fs::write(&path2, "").unwrap();
        assert!(matches!(
            SurveyJournal::resume(&path2, &manifest()).unwrap_err(),
            JournalError::Corrupt { line: 1, .. }
        ));
    }

    #[test]
    fn apply_entry_reconstructs_survey_state() {
        let mut s = Survey::new("Relearn");
        apply_entry(&mut s, &entry(2, 64));
        apply_entry(&mut s, &skip_entry(4, 64));
        assert_eq!(s.observations.len(), 2);
        assert_eq!(s.skipped.len(), 1);
        assert_eq!(s.triples(MetricKind::Flops), vec![(2, 64, 64.0 / 3.0)]);
        assert_eq!(
            s.skipped[0].reason,
            "all 4 ranks failed; no surviving results"
        );
    }
}
