//! Rank-parallel execution of simulated MPI programs.

use crate::rank::{Msg, Rank};
use crate::stats::CommStats;
use crossbeam::channel::unbounded;

/// Result of one rank's execution: its return value and its communication
/// statistics.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// Value returned by the rank body.
    pub value: T,
    /// Communication statistics accumulated by the rank.
    pub stats: CommStats,
}

/// Runs `body` on `p` simulated ranks, each on its own OS thread, and
/// returns the per-rank results in rank order.
///
/// Channels are unbounded, so the usual MPI deadlock patterns (everyone
/// sends before receiving) complete fine; a genuine receive-without-matching
/// -send deadlock will block forever, exactly like the real thing — keep
/// simulated programs correct.
///
/// # Panics
/// Panics if `p == 0` or if any rank body panics (the panic is propagated).
pub fn run_ranks<T, F>(p: usize, body: F) -> Vec<RankResult<T>>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    assert!(p > 0, "need at least one rank");
    // Build the full mesh of channels.
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Msg>();
        txs.push(tx);
        rxs.push(rx);
    }

    let body = &body;
    let mut out: Vec<Option<RankResult<T>>> = (0..p).map(|_| None).collect();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank_id, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            handles.push(scope.spawn(move |_| {
                let mut rank = Rank::new(rank_id, p, txs, rx);
                let value = body(&mut rank);
                RankResult {
                    value,
                    stats: rank.stats().clone(),
                }
            }));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank body panicked"));
        }
    })
    .expect("simulation scope failed");
    out.into_iter()
        .map(|o| o.expect("all ranks joined"))
        .collect()
}

/// Aggregated statistics over all ranks of a run.
pub fn total_stats<T>(results: &[RankResult<T>]) -> CommStats {
    results
        .iter()
        .fold(CommStats::default(), |acc, r| acc.merged(&r.stats))
}

/// Maximum per-rank value of a projection over the results — used e.g. for
/// "bytes on the busiest rank".
pub fn max_over_ranks<T>(results: &[RankResult<T>], f: impl Fn(&RankResult<T>) -> u64) -> u64 {
    results.iter().map(f).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_rank_order() {
        let results = run_ranks(8, |r| r.rank() * 10);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.value, i * 10);
        }
    }

    #[test]
    fn single_rank_runs() {
        let results = run_ranks(1, |r| {
            assert_eq!(r.size(), 1);
            "done"
        });
        assert_eq!(results[0].value, "done");
        assert_eq!(results[0].stats.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_ranks(0, |_| ());
    }

    #[test]
    fn deterministic_stats_across_runs() {
        let run = || {
            let results = run_ranks(6, |r| {
                // Everyone sends its rank to everyone else.
                for dst in 0..r.size() {
                    if dst != r.rank() {
                        r.send(dst, 0, &[r.rank() as u8; 16]);
                    }
                }
                let mut sum = 0usize;
                for src in 0..r.size() {
                    if src != r.rank() {
                        sum += r.recv(src, 0)[0] as usize;
                    }
                }
                sum
            });
            (
                results.iter().map(|r| r.value).collect::<Vec<_>>(),
                total_stats(&results),
            )
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
        // 6 ranks × 5 peers × 16 bytes, sent and received.
        assert_eq!(s1.total_sent(), 6 * 5 * 16);
        assert_eq!(s1.total_recv(), 6 * 5 * 16);
    }

    #[test]
    fn max_over_ranks_projection() {
        let results = run_ranks(4, |r| {
            if r.rank() == 2 {
                r.send(0, 0, &[0u8; 999]);
            }
            if r.rank() == 0 {
                let _ = r.recv(2, 0);
            }
        });
        assert_eq!(max_over_ranks(&results, |r| r.stats.total_sent()), 999);
    }
}
