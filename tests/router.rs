//! Chaos tests of `exareq router`: real replica and router subprocesses
//! on ephemeral loopback ports, with SIGKILL and dead upstreams.
//!
//! The contract under test is the router's byte-identity invariant:
//! every `200` it returns — through a healthy replica, across a
//! mid-request SIGKILL failover, or from the degraded-mode local
//! fallback — equals the direct library call byte for byte. Degradation
//! is visible out-of-band only: the `X-Exareq-Degraded` header and the
//! `router_*` metrics.

#![cfg(unix)]

use exareq::codesign::catalog;
use exareq::router::HashRing;
use exareq::serve::{api, artifact};
use exareq::signal::{send_signal, SIGTERM};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon subprocess (replica or router) bound to an ephemeral port,
/// killed on drop so a failing test never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe open: closing it would make the daemon's
    /// own shutdown summary line fail to write.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Writes the published Table II catalog into a fresh model dir as
/// requirements artifacts (no fitting needed — offline and fast).
fn model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exareq_router_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    dir
}

/// Spawns a daemon subcommand on port 0 and waits for the flushed ready
/// line (`<prefix> HOST:PORT ...`) to learn the bound address.
fn spawn(args: &[&str], ready_prefix: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn exareq daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("readable stdout");
    let addr = ready
        .strip_prefix(ready_prefix)
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected ready line: {ready}"))
        .to_string();
    Daemon {
        child,
        addr,
        _stdout: reader,
    }
}

fn spawn_replica(dir: &std::path::Path) -> Daemon {
    spawn(
        &[
            "serve",
            "--model-dir",
            &dir.display().to_string(),
            "--addr",
            "127.0.0.1:0",
        ],
        "serving on ",
    )
}

fn spawn_router(dir: &std::path::Path, replicas: &[String], extra: &[&str]) -> Daemon {
    let mut args = vec![
        "router".to_string(),
        "--replicas".to_string(),
        replicas.join(","),
        "--model-dir".to_string(),
        dir.display().to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--probe-interval-ms".to_string(),
        "50".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    spawn(&args, "routing on ")
}

/// One raw HTTP exchange; returns (status, head, body).
fn http(addr: &str, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {response:?}"));
    let head = String::from_utf8(response[..head_end].to_vec()).expect("ASCII head");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head}"));
    (status, head, response[head_end + 4..].to_vec())
}

fn get(addr: &str, target: &str) -> (u16, String, Vec<u8>) {
    http(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: &str, target: &str, body: &str) -> (u16, String, Vec<u8>) {
    http(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Reads one counter value from the router's Prometheus exposition.
fn metric(addr: &str, name: &str) -> f64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("UTF-8 metrics");
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
}

#[test]
fn sigkill_mid_request_fails_over_byte_identically() {
    let dir = model_dir("failover");
    let replica_a = spawn_replica(&dir);
    let replica_b = spawn_replica(&dir);
    let replicas = vec![replica_a.addr.clone(), replica_b.addr.clone()];
    // Hedging is disabled (huge delay) so the kill is absorbed by the
    // failover path specifically, and the metric assertion below is
    // deterministic.
    let router = spawn_router(&dir, &replicas, &["--hedge-after-ms", "60000"]);

    // The ring is a pure function of the --replicas list, so the test
    // can compute exactly which replica serves Kripke — and kill it.
    let ring = HashRing::new(&replicas);
    let victim_addr = ring.primary("Kripke").expect("nonempty ring").to_string();
    let mut daemons = [replica_a, replica_b];
    let victim = daemons
        .iter_mut()
        .find(|d| d.addr == victim_addr)
        .expect("victim among replicas");

    // A held request through the router, SIGKILLed out from under it.
    let router_addr = router.addr.clone();
    let in_flight = std::thread::spawn(move || {
        post(
            &router_addr,
            "/predict",
            r#"{"model":"Kripke","p":64,"n":4096,"hold_ms":900}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(250));
    victim.child.kill().expect("SIGKILL victim");
    let _ = victim.child.wait();

    let (status, head, body) = in_flight.join().expect("client thread");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::kripke(), 64.0, 4096.0).as_bytes(),
        "a failover answer must equal the direct library call byte for byte"
    );
    assert!(
        !head.contains("X-Exareq-Degraded"),
        "a surviving replica answered; this is not degraded mode: {head}"
    );
    assert!(
        metric(&router.addr, "router_failover_total") >= 1.0,
        "the SIGKILL must be visible as a failover"
    );
    assert_eq!(metric(&router.addr, "router_degraded_total"), 0.0);
}

#[test]
fn all_replicas_dead_serves_degraded_local_byte_identically() {
    let dir = model_dir("degraded");
    // Two ports that were just bound and released: valid addresses,
    // nothing listening — connection refused from the first attempt.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        })
        .collect();
    let router = spawn_router(&dir, &dead, &[]);

    let (status, head, body) = post(
        &router.addr,
        "/predict",
        r#"{"model":"MILC","p":8,"n":512}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::milc(), 8.0, 512.0).as_bytes(),
        "the degraded answer must equal the direct library call byte for byte"
    );
    assert!(
        head.contains("X-Exareq-Degraded: local"),
        "degradation must be flagged out-of-band: {head}"
    );
    assert!(metric(&router.addr, "router_degraded_total") >= 1.0);

    // GET /models degrades the same way.
    let (status, head, body) = get(&router.addr, "/models");
    assert_eq!(status, 200);
    assert!(head.contains("X-Exareq-Degraded: local"), "{head}");
    let text = String::from_utf8(body).unwrap();
    for app in catalog::paper_models() {
        assert!(
            text.contains(&format!("\"name\":\"{}\"", app.name)),
            "{text}"
        );
    }

    // Once the probers write both replicas off, the router's own
    // healthz turns non-200 so *its* upstreams can gate on it too.
    let started = Instant::now();
    loop {
        let (status, _, body) = get(&router.addr, "/healthz");
        if status == 503 {
            let text = String::from_utf8_lossy(&body);
            assert!(text.contains(r#""status":"degraded""#), "{text}");
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "healthz never reported the dead fleet"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigterm_drains_router_and_replica_and_both_exit_zero() {
    let dir = model_dir("drain");
    let replica = spawn_replica(&dir);
    let replicas = vec![replica.addr.clone()];
    let router = spawn_router(&dir, &replicas, &[]);

    // A request held past the signal: it must still be answered through
    // the drain, byte-identically.
    let router_addr = router.addr.clone();
    let in_flight = std::thread::spawn(move || {
        post(
            &router_addr,
            "/predict",
            r#"{"model":"Relearn","p":16,"n":256,"hold_ms":700}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));

    let mut router = router;
    assert!(send_signal(router.child.id(), SIGTERM), "SIGTERM router");
    let started = Instant::now();
    let status = loop {
        if let Some(status) = router.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "router failed to exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a drained router exits 0");

    let (code, _, body) = in_flight.join().expect("client thread");
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::relearn(), 16.0, 256.0).as_bytes(),
        "the drained request still gets the exact library answer"
    );

    let mut replica = replica;
    assert!(send_signal(replica.child.id(), SIGTERM), "SIGTERM replica");
    let started = Instant::now();
    let status = loop {
        if let Some(status) = replica.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "replica failed to exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a drained replica exits 0");
}
