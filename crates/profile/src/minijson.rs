//! A minimal, self-contained JSON value codec for the survey journal.
//!
//! The write-ahead journal ([`crate::journal`]) has requirements that a
//! general-purpose serde pipeline does not serve well:
//!
//! - it must **parse partial files**: a crash can truncate the final line,
//!   and replay needs to accept the valid prefix while reporting exactly
//!   where the tail became garbage;
//! - it must **round-trip `u64` seeds and `f64` measurements exactly**:
//!   seeds are full 64-bit values (stored as hex strings, since JSON
//!   numbers are doubles) and measurement values rely on Rust's
//!   shortest-round-trip float formatting;
//! - it must stay **dependency-free** so journal recovery works in the
//!   most degraded build environments.
//!
//! The codec is deliberately tiny: one [`Json`] value enum, a writer that
//! emits canonical one-line JSON, and a strict recursive-descent parser
//! with byte-offset diagnostics. It is *not* a serde replacement — survey
//! artifacts still go through `serde_json`.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number (binary64, like JSON itself).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact single-line JSON.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Rust's `{}` float formatting is shortest-round-trip, so `parse::<f64>`
/// recovers the bit pattern exactly. Non-finite values have no JSON number
/// form; they are emitted as tagged strings and folded back by
/// [`Json::to_f64_lossless`].
fn write_num(v: f64, out: &mut String) {
    use fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// Reads a number that may have been emitted by [`write_num`] as a
    /// tagged non-finite string.
    pub fn to_f64_lossless(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Hard ceiling on container nesting depth. The parser is recursive
/// descent, so without this cap a hostile line of `[[[[…` converts
/// directly into a stack overflow — an *abort*, not a catchable error,
/// which would defeat the journal's promise to reject garbage gracefully.
/// Real journal lines nest 3 levels deep; 128 is two orders of margin.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Hard ceiling on input size, in bytes. A journal line is a single
/// `(p, n)` configuration (a few KiB); anything within shouting distance
/// of this cap is not a journal line, and refusing it up front bounds the
/// parser's memory against concatenated-garbage input.
pub const MAX_INPUT_LEN: usize = 16 * 1024 * 1024;

/// Classifies a [`JsonError`] so callers can tell malformed input from
/// input that tripped a resource cap (the latter is never worth a retry
/// at a shorter prefix — truncating oversized garbage yields more
/// oversized garbage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// The input violates JSON syntax (including truncation).
    Syntax,
    /// Containers nest deeper than [`MAX_NESTING_DEPTH`].
    TooDeep,
    /// The input exceeds [`MAX_INPUT_LEN`] bytes.
    TooLarge,
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
    /// Syntax violation vs. tripped resource cap.
    pub kind: JsonErrorKind,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
/// [`JsonError`] with the byte offset of the first problem — truncated
/// input (a torn journal line) fails here rather than yielding a partial
/// value, and hostile input (pathological nesting, oversized lines) fails
/// with a typed cap error rather than exhausting the stack or memory.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    if input.len() > MAX_INPUT_LEN {
        return Err(JsonError {
            offset: MAX_INPUT_LEN,
            reason: format!(
                "input of {} bytes exceeds the {MAX_INPUT_LEN}-byte cap",
                input.len()
            ),
            kind: JsonErrorKind::TooLarge,
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
            kind: JsonErrorKind::Syntax,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    /// `depth` counts enclosing containers; guarded here (the single entry
    /// point for recursion) so `[[[[…` degrades into a typed error instead
    /// of a stack overflow.
    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_NESTING_DEPTH {
            return Err(JsonError {
                offset: self.pos,
                reason: format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                kind: JsonErrorKind::TooDeep,
            });
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err(format!("bad \\u escape `{hex}`")))?;
                            // Surrogate pairs are not emitted by the writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so the
                    // byte stream is valid UTF-8; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat("{")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Json) {
        let line = v.to_line();
        let back = parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(v, back, "{line}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Json::Null);
        roundtrip(Json::Bool(true));
        roundtrip(Json::Bool(false));
        roundtrip(Json::Num(0.0));
        roundtrip(Json::Num(-12.5));
        roundtrip(Json::Num(1e300));
        roundtrip(Json::Str(String::new()));
        roundtrip(Json::Str("plain".into()));
        roundtrip(Json::Str("esc \"quote\" \\ slash \n tab\t".into()));
        roundtrip(Json::Str("unicode: √n · λ".into()));
        roundtrip(Json::Str("\u{1}control".into()));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        // Shortest-round-trip formatting: parse(format(v)) == v bit-for-bit.
        for v in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            2.0f64.powi(-1022),
            123_456_789.123_456_79,
            1.7976931348623157e308,
        ] {
            let line = Json::Num(v).to_line();
            let back = parse(&line).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{line}");
        }
    }

    #[test]
    fn nonfinite_values_survive_as_tagged_strings() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line = Json::Num(v).to_line();
            let back = parse(&line).unwrap();
            let got = back.to_f64_lossless().unwrap();
            if v.is_nan() {
                assert!(got.is_nan());
            } else {
                assert_eq!(v, got);
            }
        }
    }

    #[test]
    fn nested_roundtrip() {
        roundtrip(Json::Obj(vec![
            ("app".into(), Json::Str("Kripke".into())),
            (
                "grid".into(),
                Json::Arr(vec![Json::Num(2.0), Json::Num(4.0)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("flag".into(), Json::Bool(false)),
            ("nothing".into(), Json::Null),
        ]));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_partial_value() {
        let full = Json::Obj(vec![
            ("p".into(), Json::Num(4.0)),
            ("reason".into(), Json::Str("all ranks failed".into())),
        ])
        .to_line();
        for cut in 1..full.len() {
            assert!(
                parse(&full[..cut]).is_err(),
                "prefix `{}` parsed",
                &full[..cut]
            );
        }
        assert!(parse(&full).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("01a").is_err());
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn hostile_nesting_is_a_typed_error_not_a_stack_overflow() {
        // Way past any plausible stack limit if recursion were unguarded.
        let hostile = "[".repeat(1_000_000);
        let err = parse(&hostile).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);
        assert!(err.to_string().contains("nesting"), "{err}");

        // The cap is exact: MAX_NESTING_DEPTH closed containers parse,
        // one more level fails typed.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_NESTING_DEPTH),
            "]".repeat(MAX_NESTING_DEPTH)
        );
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_NESTING_DEPTH + 1),
            "]".repeat(MAX_NESTING_DEPTH + 1)
        );
        assert_eq!(parse(&over).unwrap_err().kind, JsonErrorKind::TooDeep);

        // Alternating object/array nesting hits the same guard.
        let mixed = "{\"k\":[".repeat(MAX_NESTING_DEPTH);
        assert_eq!(parse(&mixed).unwrap_err().kind, JsonErrorKind::TooDeep);
    }

    #[test]
    fn oversized_input_is_a_typed_error() {
        let huge = format!("\"{}\"", "x".repeat(MAX_INPUT_LEN));
        let err = parse(&huge).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooLarge);
        assert!(err.to_string().contains("cap"), "{err}");
        // Syntax errors keep their own kind.
        assert_eq!(parse("[1, @]").unwrap_err().kind, JsonErrorKind::Syntax);
    }

    #[test]
    fn object_get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true, null]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }
}
