//! The model registry: every artifact in `--model-dir`, parsed once,
//! served forever.
//!
//! The registry scans a flat directory for `.json` artifacts of two kinds
//! (dispatch is by content, not extension):
//!
//! - **survey artifacts** — the JSON `exareq survey` writes; fitting them
//!   into [`AppRequirements`] is delegated to the caller-supplied fitter so
//!   this crate does not depend on the fitting pipeline;
//! - **requirements artifacts** — pre-fitted models written by
//!   [`crate::artifact`]; loaded directly.
//!
//! Both parse through the in-tree `minijson` codec — never serde — so the
//! daemon works wherever the journal does. Parsed results are cached by
//! **content hash** (FNV-1a over the raw bytes): a rewrite that does not
//! change bytes (a `touch`, an atomic-rename republish of the same
//! content) costs one hash, not one refit. The *generation* counter bumps
//! whenever the served set actually changes, so `/metrics` exposes
//! hot-reloads. Artifacts claiming a newer `schema_version` than this
//! build are rejected the same way the journal rejects newer journals:
//! loudly, per file, without taking down the rest of the registry.

use crate::artifact::{self, ArtifactQuality};
use exareq_codesign::AppRequirements;
use exareq_core::compiled::{model_content_hash, CompiledArena, CompiledModel};
use exareq_profile::minijson::{self, Json};
use exareq_profile::surveyjson;
use exareq_profile::Survey;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Fits a parsed survey into requirement models; supplied by the binary so
/// the serve crate stays independent of the fitting pipeline.
pub type Fitter = dyn Fn(&Survey) -> Result<AppRequirements, String> + Send + Sync;

/// How an entry entered the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A survey artifact, fitted at load time.
    Survey,
    /// A pre-fitted requirements artifact.
    Requirements,
}

impl ArtifactKind {
    /// Stable label for `/models` and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ArtifactKind::Survey => "survey",
            ArtifactKind::Requirements => "requirements",
        }
    }
}

/// One served model.
#[derive(Clone)]
pub struct ModelEntry {
    /// Application name (the lookup key for `POST` endpoints).
    pub name: String,
    /// File name the model came from.
    pub source: String,
    /// FNV-1a 64 hash of the artifact bytes.
    pub hash: u64,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// The fitted models.
    pub requirements: Arc<AppRequirements>,
    /// The same models lowered to flat tables (`POST /predict_batch`).
    pub compiled: Arc<CompiledApp>,
    /// Fit-quality block, when the artifact carries one (refreshed models).
    pub quality: Option<ArtifactQuality>,
}

/// An application's five requirement models lowered to
/// [`CompiledModel`] flat tables — built once per *model content hash* in
/// the registry's shared [`CompiledArena`], walked on every
/// `/predict_batch` point. Field order mirrors [`AppRequirements`] and the
/// `/predict` response shape. Arena sharing is what makes online refresh
/// cheap: a refit that changes one metric's model re-lowers that one model;
/// the other four `Arc`s are reused.
pub struct CompiledApp {
    /// Application name.
    pub name: String,
    /// Memory-footprint model (bytes used).
    pub bytes_used: Arc<CompiledModel>,
    /// Computation model (FLOPs).
    pub flops: Arc<CompiledModel>,
    /// Communication model (bytes on the network).
    pub comm_bytes: Arc<CompiledModel>,
    /// Memory-access model (loads + stores).
    pub loads_stores: Arc<CompiledModel>,
    /// Locality model (average stack distance).
    pub stack_distance: Arc<CompiledModel>,
}

impl CompiledApp {
    /// Lowers every requirement model of `app` through the arena (cache
    /// hits return the existing lowering).
    pub fn lower(app: &AppRequirements, arena: &CompiledArena) -> CompiledApp {
        CompiledApp {
            name: app.name.clone(),
            bytes_used: arena.lower(&app.bytes_used),
            flops: arena.lower(&app.flops),
            comm_bytes: arena.lower(&app.comm_bytes),
            loads_stores: arena.lower(&app.loads_stores),
            stack_distance: arena.lower(&app.stack_distance),
        }
    }

    /// The five model content hashes, for arena retention.
    fn model_hashes(app: &AppRequirements) -> [u64; 5] {
        [
            model_content_hash(&app.bytes_used),
            model_content_hash(&app.flops),
            model_content_hash(&app.comm_bytes),
            model_content_hash(&app.loads_stores),
            model_content_hash(&app.stack_distance),
        ]
    }
}

/// A point-in-time view of the registry for `/models` and `/metrics`.
#[derive(Clone)]
pub struct RegistrySnapshot {
    /// Reload generation (bumps when the served set changes).
    pub generation: u64,
    /// Served models, sorted by name.
    pub models: Vec<ModelEntry>,
    /// Files that failed to load, with the one-line reason.
    pub errors: Vec<(String, String)>,
}

/// A cached parse/fit outcome, or the one-line rejection reason. Caching
/// the compiled lowering here means it happens once per artifact
/// *content*, not per request or per registry generation.
struct ParsedArtifact {
    name: String,
    kind: ArtifactKind,
    requirements: Arc<AppRequirements>,
    compiled: Arc<CompiledApp>,
    quality: Option<ArtifactQuality>,
}

type ParseOutcome = Result<ParsedArtifact, String>;

struct Inner {
    /// name → entry, as currently served.
    entries: BTreeMap<String, ModelEntry>,
    /// file name → content hash at the last scan (reload detection).
    file_hashes: BTreeMap<String, u64>,
    /// content hash → parse/fit result, kept across reloads.
    by_hash: BTreeMap<u64, ParseOutcome>,
    /// file name → reason for files not currently served.
    errors: BTreeMap<String, String>,
    generation: u64,
}

/// The registry; cheap to share behind an `Arc`, internally locked.
pub struct ModelRegistry {
    dir: PathBuf,
    fitter: Box<Fitter>,
    arena: CompiledArena,
    inner: Mutex<Inner>,
}

/// FNV-1a 64-bit over the artifact bytes: stable, dependency-free, and
/// plenty for cache keying (this is not an integrity check).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_artifact(text: &str, fitter: &Fitter, arena: &CompiledArena) -> ParseOutcome {
    let v = minijson::parse(text).map_err(|e| e.to_string())?;
    if artifact::is_requirements_artifact(&v) {
        let app = artifact::requirements_from_json(&v)?;
        let quality = artifact::quality_from_json(&v)?;
        let compiled = Arc::new(CompiledApp::lower(&app, arena));
        return Ok(ParsedArtifact {
            name: app.name.clone(),
            kind: ArtifactKind::Requirements,
            requirements: Arc::new(app),
            compiled,
            quality,
        });
    }
    if v.get("observations").and_then(Json::as_arr).is_some() {
        let survey = surveyjson::survey_from_json(&v).map_err(|e| e.to_string())?;
        if survey.incomplete {
            return Err("survey artifact is marked incomplete; resume the sweep first".to_string());
        }
        let app = fitter(&survey)?;
        let compiled = Arc::new(CompiledApp::lower(&app, arena));
        return Ok(ParsedArtifact {
            name: app.name.clone(),
            kind: ArtifactKind::Survey,
            requirements: Arc::new(app),
            compiled,
            quality: None,
        });
    }
    Err("neither a survey nor a requirements artifact".to_string())
}

impl ModelRegistry {
    /// A registry over `dir`; call [`ModelRegistry::refresh`] to load.
    pub fn new(dir: impl Into<PathBuf>, fitter: Box<Fitter>) -> Self {
        ModelRegistry {
            dir: dir.into(),
            fitter,
            arena: CompiledArena::new(),
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                file_hashes: BTreeMap::new(),
                by_hash: BTreeMap::new(),
                errors: BTreeMap::new(),
                generation: 0,
            }),
        }
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rescans the directory, (re)parsing any artifact whose bytes
    /// changed, and returns the generation after the scan. Unreadable or
    /// rejected files are recorded per file and skipped — the rest of the
    /// registry keeps serving.
    pub fn refresh(&self) -> u64 {
        // Read the directory outside the lock; hashing is the slow part.
        let mut scanned: Vec<(String, Vec<u8>)> = Vec::new();
        let mut scan_errors: BTreeMap<String, String> = BTreeMap::new();
        match std::fs::read_dir(&self.dir) {
            Ok(rd) => {
                for entry in rd.flatten() {
                    let path = entry.path();
                    if path.extension().and_then(|e| e.to_str()) != Some("json") {
                        continue;
                    }
                    let file = match path.file_name().and_then(|n| n.to_str()) {
                        Some(f) => f.to_string(),
                        None => continue,
                    };
                    match std::fs::read(&path) {
                        Ok(bytes) => scanned.push((file, bytes)),
                        Err(e) => {
                            scan_errors.insert(file, format!("read: {e}"));
                        }
                    }
                }
            }
            Err(e) => {
                scan_errors.insert(
                    self.dir.display().to_string(),
                    format!("read model dir: {e}"),
                );
            }
        }
        scanned.sort_by(|a, b| a.0.cmp(&b.0));

        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut new_hashes = BTreeMap::new();
        let mut new_entries: BTreeMap<String, ModelEntry> = BTreeMap::new();
        let mut new_errors = scan_errors;
        for (file, bytes) in scanned {
            let hash = fnv1a64(&bytes);
            new_hashes.insert(file.clone(), hash);
            let parsed = inner.by_hash.entry(hash).or_insert_with(|| {
                String::from_utf8(bytes)
                    .map_err(|_| "artifact is not valid UTF-8".to_string())
                    .and_then(|text| parse_artifact(&text, &*self.fitter, &self.arena))
            });
            match parsed {
                Ok(parsed) => {
                    let name = parsed.name.clone();
                    let entry = ModelEntry {
                        name: name.clone(),
                        source: file.clone(),
                        hash,
                        kind: parsed.kind,
                        requirements: Arc::clone(&parsed.requirements),
                        compiled: Arc::clone(&parsed.compiled),
                        quality: parsed.quality.clone(),
                    };
                    if let Some(previous) = new_entries.insert(name.clone(), entry) {
                        new_errors.insert(
                            previous.source,
                            format!("shadowed: {file} also defines model {name}"),
                        );
                    }
                }
                Err(reason) => {
                    new_errors.insert(file, reason.clone());
                }
            }
        }

        // Drop cache entries no file references any more, so a frequently
        // republished artifact cannot grow the cache without bound.
        let live: std::collections::BTreeSet<u64> = new_hashes.values().copied().collect();
        inner.by_hash.retain(|h, _| live.contains(h));

        // Same for the compiled arena: keep only lowerings some cached
        // artifact still references. A refit that changed one metric's
        // model drops exactly that model's old lowering here.
        let live_models: std::collections::BTreeSet<u64> = inner
            .by_hash
            .values()
            .filter_map(|outcome| outcome.as_ref().ok())
            .flat_map(|p| CompiledApp::model_hashes(&p.requirements))
            .collect();
        self.arena.retain(&|h| live_models.contains(&h));

        // Generation bumps only when the served set actually changed.
        let changed = inner.file_hashes != new_hashes;
        if changed {
            inner.generation += 1;
        }
        inner.file_hashes = new_hashes;
        inner.entries = new_entries;
        inner.errors = new_errors;
        inner.generation
    }

    /// The requirements served under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<AppRequirements>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.get(name).map(|e| Arc::clone(&e.requirements))
    }

    /// The compiled (flat-table) form of the models served under `name` —
    /// the `/predict_batch` evaluator.
    pub fn get_compiled(&self, name: &str) -> Option<Arc<CompiledApp>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.get(name).map(|e| Arc::clone(&e.compiled))
    }

    /// The full entry served under `name` (kind, source file, quality) —
    /// what the refresher needs before accepting observations.
    pub fn entry(&self, name: &str) -> Option<ModelEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.get(name).cloned()
    }

    /// Distinct model lowerings currently cached in the compiled arena
    /// (`/metrics` visibility for the refresh fast path).
    pub fn arena_size(&self) -> usize {
        self.arena.lowered()
    }

    /// The current reload generation without cloning a snapshot (the
    /// `/healthz` fast path).
    pub fn generation(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.generation
    }

    /// A consistent snapshot of the served set.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            generation: inner.generation,
            models: inner.entries.values().cloned().collect(),
            errors: inner
                .errors
                .iter()
                .map(|(f, r)| (f.clone(), r.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_codesign::catalog;
    use exareq_profile::survey::{MetricKind, SURVEY_SCHEMA_VERSION};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exareq_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    /// A fitter that counts invocations and returns constant models.
    fn counting_fitter(counter: Arc<AtomicUsize>) -> Box<Fitter> {
        Box::new(move |s: &Survey| {
            counter.fetch_add(1, Ordering::SeqCst);
            let mut app = catalog::paper_models().remove(0);
            app.name = s.app.clone();
            Ok(app)
        })
    }

    fn sample_survey(app: &str) -> String {
        let mut s = Survey::new(app);
        s.push(2, 64, MetricKind::Flops, 1.0e9);
        surveyjson::survey_to_string(&s)
    }

    #[test]
    fn loads_both_artifact_kinds_and_serves_by_name() {
        let dir = temp_dir("kinds");
        std::fs::write(dir.join("a.json"), sample_survey("SurveyApp")).unwrap();
        let fitted = catalog::paper_models().remove(1);
        std::fs::write(
            dir.join("b.json"),
            artifact::requirements_to_string(&fitted),
        )
        .unwrap();

        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::new(AtomicUsize::new(0))));
        reg.refresh();
        let snap = reg.snapshot();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.models.len(), 2, "{:?}", snap.errors);
        assert!(reg.get("SurveyApp").is_some());
        assert!(reg.get(&fitted.name).is_some());
        assert_eq!(
            reg.get(&fitted.name).unwrap().flops.eval(&[64.0, 4096.0]),
            fitted.flops.eval(&[64.0, 4096.0])
        );
        // The compiled lowering is cached alongside and evaluates
        // bit-identically to the term-walking models.
        let compiled = reg.get_compiled(&fitted.name).expect("compiled entry");
        assert_eq!(
            compiled.flops.eval(&[64.0, 4096.0]).to_bits(),
            fitted.flops.eval(&[64.0, 4096.0]).to_bits()
        );
    }

    #[test]
    fn content_hash_cache_skips_refits_and_reload_bumps_generation() {
        let dir = temp_dir("reload");
        std::fs::write(dir.join("a.json"), sample_survey("App")).unwrap();
        let fits = Arc::new(AtomicUsize::new(0));
        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::clone(&fits)));

        assert_eq!(reg.refresh(), 1);
        assert_eq!(fits.load(Ordering::SeqCst), 1);

        // Same bytes rewritten (mtime changes, content does not): no refit,
        // no generation bump.
        std::fs::write(dir.join("a.json"), sample_survey("App")).unwrap();
        assert_eq!(reg.refresh(), 1);
        assert_eq!(fits.load(Ordering::SeqCst), 1);

        // Changed bytes: refit and a new generation.
        std::fs::write(dir.join("a.json"), sample_survey("App2")).unwrap();
        assert_eq!(reg.refresh(), 2);
        assert_eq!(fits.load(Ordering::SeqCst), 2);
        assert!(reg.get("App").is_none());
        assert!(reg.get("App2").is_some());
    }

    #[test]
    fn refit_reuses_unchanged_lowerings_from_the_arena() {
        let dir = temp_dir("arena");
        let mut app = catalog::paper_models().remove(0);
        std::fs::write(dir.join("a.json"), artifact::requirements_to_string(&app)).unwrap();
        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::new(AtomicUsize::new(0))));
        reg.refresh();
        let before = reg.get_compiled(&app.name).unwrap();
        let arena_before = reg.arena_size();

        // A refit that changes only the flops model: four of five
        // lowerings must be the *same allocation* afterwards.
        app.flops.constant += 1.0;
        std::fs::write(dir.join("a.json"), artifact::requirements_to_string(&app)).unwrap();
        reg.refresh();
        let after = reg.get_compiled(&app.name).unwrap();
        assert!(!Arc::ptr_eq(&before.flops, &after.flops));
        assert!(Arc::ptr_eq(&before.bytes_used, &after.bytes_used));
        assert!(Arc::ptr_eq(&before.comm_bytes, &after.comm_bytes));
        assert!(Arc::ptr_eq(&before.loads_stores, &after.loads_stores));
        assert!(Arc::ptr_eq(&before.stack_distance, &after.stack_distance));
        // The departed flops lowering was retired, not leaked.
        assert_eq!(reg.arena_size(), arena_before);
    }

    #[test]
    fn quality_block_surfaces_on_the_entry() {
        let dir = temp_dir("quality");
        let app = catalog::paper_models().remove(0);
        let mut q = artifact::ArtifactQuality {
            refit_generation: 3,
            metrics: Default::default(),
        };
        q.metrics.insert(
            "flops".to_string(),
            artifact::MetricQuality {
                cv_smape: 2.5,
                ci95_rel: 0.125,
                observations: 12,
            },
        );
        std::fs::write(
            dir.join("a.json"),
            artifact::requirements_to_string_with_quality(&app, Some(&q)),
        )
        .unwrap();
        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::new(AtomicUsize::new(0))));
        reg.refresh();
        let entry = reg.entry(&app.name).expect("served");
        assert_eq!(entry.quality, Some(q));
    }

    #[test]
    fn newer_schema_version_is_rejected_per_file() {
        let dir = temp_dir("version");
        let future = format!(
            r#"{{"schema_version":{},"app":"X","observations":[]}}"#,
            SURVEY_SCHEMA_VERSION + 1
        );
        std::fs::write(dir.join("future.json"), future).unwrap();
        std::fs::write(dir.join("ok.json"), sample_survey("Ok")).unwrap();

        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::new(AtomicUsize::new(0))));
        reg.refresh();
        let snap = reg.snapshot();
        assert_eq!(snap.models.len(), 1);
        assert!(reg.get("Ok").is_some());
        let (file, reason) = &snap.errors[0];
        assert_eq!(file, "future.json");
        assert!(
            reason.contains("newer than the newest supported"),
            "{reason}"
        );
    }

    #[test]
    fn incomplete_surveys_and_non_artifacts_are_skipped_with_reasons() {
        let dir = temp_dir("skips");
        let mut s = Survey::new("Partial");
        s.push(2, 64, MetricKind::Flops, 1.0);
        s.incomplete = true;
        std::fs::write(dir.join("partial.json"), surveyjson::survey_to_string(&s)).unwrap();
        std::fs::write(dir.join("junk.json"), "{ not json").unwrap();
        std::fs::write(dir.join("other.json"), "{\"hello\":1}").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored entirely").unwrap();

        let reg = ModelRegistry::new(&dir, counting_fitter(Arc::new(AtomicUsize::new(0))));
        reg.refresh();
        let snap = reg.snapshot();
        assert!(snap.models.is_empty());
        assert_eq!(snap.errors.len(), 3, "{:?}", snap.errors);
        let reason_for = |f: &str| {
            snap.errors
                .iter()
                .find(|(file, _)| file == f)
                .map(|(_, r)| r.clone())
                .unwrap_or_default()
        };
        assert!(reason_for("partial.json").contains("incomplete"));
        assert!(reason_for("other.json").contains("neither"));
    }
}
