//! Behavioural twin of **LULESH** — the DOE Lagrangian shock hydrodynamics
//! proxy on an unstructured hex mesh.
//!
//! Target per-process requirement signature (Table II):
//!
//! | metric          | model                                   |
//! |-----------------|-----------------------------------------|
//! | #Bytes used     | `c · n log n`                           |
//! | #FLOP           | `c · n log n · p^0.25 log p` ⚠          |
//! | #Bytes sent/rcv | `c · n · p^0.25 log p` ⚠                |
//! | #Loads & stores | `c · n log n · log p`                   |
//! | Stack distance  | constant                                |
//!
//! The `n log n` space factor models the unstructured-mesh connectivity
//! tables; the `p^0.25 log p` compute/communication inflation models the
//! ghost-region and symmetry-boundary work that grows with the domain
//! decomposition depth — the multiplicative p×n coupling the paper calls "a
//! small obstacle in tailoring and scaling the application".

use crate::shapes::{log2f, ops, powf, ring_exchange, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// Lagrange leapfrog iterations.
const ITERS: usize = 2;

/// The LULESH behavioural twin.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lulesh;

impl MiniApp for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size() as u64;
        let nf = n as f64;

        // Nodal fields are linear in n; the element-connectivity and
        // node-set tables grow with n·log n (hierarchical decomposition of
        // the unstructured mesh).
        let mut fields = Arena::new(n as usize * 2);
        let mut conn = Arena::new(ops(nf * log2f(n)) as usize);
        prof.footprint.alloc(fields.bytes());
        prof.footprint.alloc(conn.bytes());

        let scale_p = powf(p, 0.25) * log2f(p);
        // Message sizes are kept large enough that integer rounding stays
        // below the fitter's discrimination threshold (≤ 0.1%).
        let ghost_bytes = ops(nf * scale_p).max(1);
        let ghost = vec![0u8; ghost_bytes as usize];

        // Stress/hourglass force integration over elements + ghosts
        // (totals over all iterations, counted exactly).
        prof.callpath.enter("CalcForceForNodes");
        fields.compute(ops(2.0 * nf * log2f(n) * scale_p), prof.callpath.counters());
        prof.callpath.exit();

        // Connectivity-indexed gather/scatter: memory traffic scales
        // with the table size and the decomposition depth log p.
        prof.callpath.enter("GatherScatter");
        conn.stream(
            ops(6.0 * nf * log2f(n) * log2f(p)),
            prof.callpath.counters(),
        );
        prof.callpath.exit();

        // Ghost-region exchange with the decomposition neighbors.
        for it in 0..ITERS {
            prof.callpath.enter("CommSBN");
            let before = rank.stats().total();
            ring_exchange(rank, 200 + it as u64 * 2, &ghost, &ghost);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
            prof.callpath.exit();
        }
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Element-local kernels reuse a fixed-size nodal neighborhood.
        let g_nodes = sampler.register_group("nodal neighborhood");
        let g_elems = sampler.register_group("element fields");
        const WINDOW: u64 = 64;
        const EWINDOW: u64 = 128;
        for _pass in 0..4 {
            for i in 0..WINDOW {
                sampler.access(g_nodes, 0x2000 + i);
            }
            for i in 0..EWINDOW {
                sampler.access(g_elems, 0xA000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn flops_scale_superlinearly_in_n() {
        // n log n: doubling n from 512 → 1024 multiplies by 2·(10/9) ≈ 2.22.
        let a = measure(&Lulesh, 4, 512);
        let b = measure(&Lulesh, 4, 1024);
        let r = b.flops / a.flops;
        let expect = 2.0 * 10.0 / 9.0;
        assert!((r - expect).abs() < 0.05, "n-scaling {r} vs {expect}");
    }

    #[test]
    fn flops_scale_with_p025_logp() {
        // p 4 → 16: (16/4)^0.25 · log16/log4 = √2 · 2 ≈ 2.83.
        let a = measure(&Lulesh, 4, 512);
        let b = measure(&Lulesh, 16, 512);
        let r = b.flops / a.flops;
        let expect = 4.0_f64.powf(0.25) * 2.0;
        assert!(
            (r - expect).abs() / expect < 0.05,
            "p-scaling {r} vs {expect}"
        );
    }

    #[test]
    fn comm_scales_with_p025_logp() {
        let a = measure(&Lulesh, 4, 1024);
        let b = measure(&Lulesh, 16, 1024);
        let r = b.comm_total / a.comm_total;
        // Message sizes carry the p^0.25·log p factor exactly:
        // (16/4)^0.25 · log16/log4 ≈ 2.83.
        let expect = 4.0_f64.powf(0.25) * 2.0;
        assert!((r - expect).abs() / expect < 0.05, "p-scaling of comm {r}");
    }

    #[test]
    fn loads_scale_with_logp_only() {
        let a = measure(&Lulesh, 4, 1024);
        let b = measure(&Lulesh, 16, 1024);
        let r = b.loads_stores / a.loads_stores;
        assert!((r - 2.0).abs() < 0.1, "log p scaling {r}");
    }

    #[test]
    fn footprint_nlogn() {
        let a = measure(&Lulesh, 2, 512);
        let b = measure(&Lulesh, 2, 2048);
        let r = b.bytes_used / a.bytes_used;
        // (2048·11)/(512·9) ≈ 4.89 vs pure linear 4.
        assert!(r > 4.4 && r < 5.4, "{r}");
    }

    #[test]
    fn stack_distance_constant() {
        let mut s1 = exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
        Lulesh.run_locality(256, &mut s1);
        let mut s2 = exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
        Lulesh.run_locality(8192, &mut s2);
        assert_eq!(s1.groups()[0].median_stack(), s2.groups()[0].median_stack());
    }
}
