//! The exascale system-design study (Section III-B): how do the study
//! applications map onto the three straw-man designs of Table VI —
//! massively parallel, vector, hybrid — all reaching 1 exaflop/s with 10 PB
//! of memory? Reproduces Table VII.
//!
//! Run with `cargo run --release --example straw_man`.

use exareq::codesign::report::render_strawman_block;
use exareq::codesign::{analyze_strawmen, catalog, table_six};

fn main() {
    let systems = table_six();
    println!("-- Table VI: straw-man systems --");
    println!(
        "  {:<22} {:>9} {:>12} {:>10} {:>12} {:>12}",
        "System", "Nodes", "Processors", "Per node", "Mem/proc", "Flop/s/proc"
    );
    for s in &systems {
        println!(
            "  {:<22} {:>9.0e} {:>12.0e} {:>10.0e} {:>12.0e} {:>12.0e}",
            s.name,
            s.nodes,
            s.processors,
            s.processors_per_node(),
            s.mem_per_processor,
            s.flops_per_processor
        );
    }
    println!();

    println!("-- Table VII: maximum problem size and benchmark wall time --");
    for app in catalog::paper_models() {
        let analysis = analyze_strawmen(&app, &systems);
        println!("{}", render_strawman_block(&analysis));
    }

    println!(
        "Paper's reading: Kripke and MILC are indifferent to the design;\n\
         LULESH solves its biggest problem on the massively parallel system but\n\
         runs the benchmark fastest on the vector system; Relearn strongly\n\
         prefers the vector design; icoFoam cannot fully utilize any of the\n\
         three because its per-process memory footprint grows with p·log p."
    );
}
