//! The upgrade-analysis workflow of Table IV / Table V.
//!
//! Steps (Table IV): (I) take the requirement models; (II) determine the
//! upgraded system's process count and memory per process; (III/IV) inflate
//! the problem until the footprint fills memory, before and after; (V)
//! evaluate the rate requirements at both configurations and report ratios.

use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::{AppRequirements, RateMetric};
use crate::skeleton::{SystemSkeleton, Upgrade};
use serde::{Deserialize, Serialize};

/// Result of analyzing one application under one upgrade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpgradeOutcome {
    /// Application name.
    pub app: String,
    /// Upgrade applied.
    pub upgrade_name: String,
    /// Problem size per process before the upgrade.
    pub old_n: f64,
    /// Problem size per process after the upgrade.
    pub new_n: f64,
    /// Ratio of problem size per process (Table V row 1).
    pub ratio_n: f64,
    /// Ratio of overall problem size `p·n` (Table V row 2).
    pub ratio_overall: f64,
    /// Ratios of computation, communication and memory access, in
    /// [`RateMetric::ALL`] order (Table V rows 3–5).
    pub ratio_rates: [f64; 3],
}

impl UpgradeOutcome {
    /// Ratio for one rate metric.
    pub fn rate(&self, m: RateMetric) -> f64 {
        self.ratio_rates[RateMetric::ALL
            .iter()
            .position(|&x| x == m)
            .expect("metric")]
    }
}

/// The baseline expectation of Table V: requirements assumed linear in the
/// problem size per process — `(ratio_n, ratio_overall, rate ratios)`.
pub fn baseline_expectation(base: &SystemSkeleton, up: &Upgrade) -> UpgradeOutcome {
    let ratio_n = up.m_factor;
    UpgradeOutcome {
        app: "Baseline".to_string(),
        upgrade_name: up.name.to_string(),
        old_n: base.mem_per_process,
        new_n: base.mem_per_process * up.m_factor,
        ratio_n,
        ratio_overall: ratio_n * up.p_factor,
        ratio_rates: [ratio_n; 3],
    }
}

/// Errors of the upgrade workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// The application does not fit the base or upgraded system.
    DoesNotFit {
        /// Which configuration failed ("base" or "upgraded").
        which: &'static str,
    },
    /// The footprint does not determine a finite problem size.
    UnboundedProblem,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DoesNotFit { which } => {
                write!(f, "application does not fit the {which} system")
            }
            WorkflowError::UnboundedProblem => write!(f, "footprint does not bound n"),
        }
    }
}

impl std::error::Error for WorkflowError {}

fn inflate_or_err(
    app: &AppRequirements,
    sys: &SystemSkeleton,
    which: &'static str,
) -> Result<f64, WorkflowError> {
    match inflate_problem(&app.bytes_used, sys) {
        Inflation::Fits(n) => Ok(n),
        Inflation::TooBig { .. } => Err(WorkflowError::DoesNotFit { which }),
        Inflation::Unbounded => Err(WorkflowError::UnboundedProblem),
    }
}

/// Runs the Table IV workflow for one application and one upgrade on a base
/// skeleton.
///
/// # Errors
/// Returns [`WorkflowError`] when the application cannot fill either system
/// with a finite problem.
pub fn analyze_upgrade(
    app: &AppRequirements,
    base: &SystemSkeleton,
    up: &Upgrade,
) -> Result<UpgradeOutcome, WorkflowError> {
    let upgraded = up.apply(base);
    let old_n = inflate_or_err(app, base, "base")?;
    let new_n = inflate_or_err(app, &upgraded, "upgraded")?;

    let old_coords = [base.processes, old_n];
    let new_coords = [upgraded.processes, new_n];
    let mut ratio_rates = [0.0; 3];
    for (slot, m) in ratio_rates.iter_mut().zip(RateMetric::ALL) {
        *slot = app.rate_model(m).ratio(&old_coords, &new_coords);
    }
    Ok(UpgradeOutcome {
        app: app.name.clone(),
        upgrade_name: up.name.to_string(),
        old_n,
        new_n,
        ratio_n: new_n / old_n,
        ratio_overall: (upgraded.processes * new_n) / (base.processes * old_n),
        ratio_rates,
    })
}

/// Scores an upgrade for an application the way the paper's summary
/// paragraph does: bigger overall problem is good, higher per-process rate
/// requirements are bad. The score is
/// `ratio_overall / geometric-mean(rate ratios normalized by ratio_n)` —
/// an app "benefits" when it can solve more while its per-process demands
/// stay in step with its per-process problem.
pub fn upgrade_score(outcome: &UpgradeOutcome) -> f64 {
    let norm: f64 = outcome
        .ratio_rates
        .iter()
        .map(|r| (r / outcome.ratio_n.max(1e-300)).max(1e-300))
        .product::<f64>()
        .powf(1.0 / 3.0);
    outcome.ratio_overall / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::skeleton::{SystemSkeleton, Upgrade};

    fn base() -> SystemSkeleton {
        SystemSkeleton::reference_large()
    }

    #[test]
    fn lulesh_upgrade_a_matches_table_four() {
        // Table IV: doubling racks keeps n (footprint has no p), doubles the
        // overall problem, computation/communication grow ≈ 1.2, memory
        // access ≈ 1.
        let out = analyze_upgrade(&catalog::lulesh(), &base(), &Upgrade::DOUBLE_RACKS).unwrap();
        assert!((out.ratio_n - 1.0).abs() < 1e-6, "{}", out.ratio_n);
        assert!((out.ratio_overall - 2.0).abs() < 1e-6);
        let comp = out.rate(RateMetric::Computation);
        let comm = out.rate(RateMetric::Communication);
        let mem = out.rate(RateMetric::MemoryAccess);
        assert!((comp - 1.2).abs() < 0.06, "computation {comp}");
        assert!((comm - 1.2).abs() < 0.06, "communication {comm}");
        assert!((mem - 1.0).abs() < 0.06, "memory access {mem}");
    }

    #[test]
    fn kripke_upgrade_a_memory_access_doubles() {
        // Table V: Kripke A → mem 2 (the n·p term dominates at scale).
        let out = analyze_upgrade(&catalog::kripke(), &base(), &Upgrade::DOUBLE_RACKS).unwrap();
        assert!((out.ratio_n - 1.0).abs() < 1e-9);
        assert!((out.rate(RateMetric::MemoryAccess) - 2.0).abs() < 0.05);
        assert!((out.rate(RateMetric::Computation) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn milc_upgrade_a_memory_access_2_8() {
        // Table V: MILC A → mem 2.8 (driven by the p^1.5 term: 2^1.5 ≈
        // 2.83). At our reference provisioning the n·log n term retains a
        // little more weight, putting the exact value at ≈ 2.5; the
        // qualitative signal — memory access inflating well beyond the
        // baseline 1 — is the paper's point.
        let out = analyze_upgrade(&catalog::milc(), &base(), &Upgrade::DOUBLE_RACKS).unwrap();
        let mem = out.rate(RateMetric::MemoryAccess);
        assert!(mem > 2.2 && mem < 2.9, "{mem}");
    }

    #[test]
    fn relearn_upgrade_c_quadruples_problem() {
        // √n footprint: doubling memory quadruples n (Table V: 4).
        let out = analyze_upgrade(&catalog::relearn(), &base(), &Upgrade::DOUBLE_MEMORY).unwrap();
        assert!((out.ratio_n - 4.0).abs() < 1e-6, "{}", out.ratio_n);
        assert!((out.ratio_overall - 4.0).abs() < 1e-6);
    }

    #[test]
    fn kripke_upgrade_c_doubles_everything() {
        // Table V column C for Kripke: 2 across the board.
        let out = analyze_upgrade(&catalog::kripke(), &base(), &Upgrade::DOUBLE_MEMORY).unwrap();
        assert!((out.ratio_n - 2.0).abs() < 1e-6);
        for m in RateMetric::ALL {
            let r = out.rate(m);
            assert!((r - 2.0).abs() < 0.05, "{:?} {r}", m);
        }
    }

    #[test]
    fn icofoam_problem_shrinks_under_rack_doubling() {
        // Table V icoFoam A: problem per process 0.5, overall 1 — the p·log p
        // footprint term eats the added capacity.
        let out = analyze_upgrade(&catalog::icofoam(), &base(), &Upgrade::DOUBLE_RACKS).unwrap();
        assert!(out.ratio_n < 0.6, "{}", out.ratio_n);
        assert!(out.ratio_overall < 1.2, "{}", out.ratio_overall);
    }

    #[test]
    fn baseline_matches_table_five_rightmost_column() {
        let b = base();
        let a = baseline_expectation(&b, &Upgrade::DOUBLE_RACKS);
        assert_eq!(
            (a.ratio_n, a.ratio_overall, a.ratio_rates),
            (1.0, 2.0, [1.0; 3])
        );
        let bb = baseline_expectation(&b, &Upgrade::DOUBLE_SOCKETS);
        assert_eq!(
            (bb.ratio_n, bb.ratio_overall, bb.ratio_rates),
            (0.5, 1.0, [0.5; 3])
        );
        let c = baseline_expectation(&b, &Upgrade::DOUBLE_MEMORY);
        assert_eq!(
            (c.ratio_n, c.ratio_overall, c.ratio_rates),
            (2.0, 2.0, [2.0; 3])
        );
    }

    #[test]
    fn icofoam_benefits_only_from_memory() {
        // The paper's summary: "icoFoam would benefit only from doubling the
        // memory." Under its own Table II models, doubling the sockets (B)
        // does not even fit: the p·log p footprint term exceeds the halved
        // per-process memory — a stronger version of the paper's verdict.
        let app = catalog::icofoam();
        let b = base();
        let score_a = upgrade_score(&analyze_upgrade(&app, &b, &Upgrade::DOUBLE_RACKS).unwrap());
        let score_c = upgrade_score(&analyze_upgrade(&app, &b, &Upgrade::DOUBLE_MEMORY).unwrap());
        assert!(score_c > score_a, "C {score_c} vs A {score_a}");
        assert!(matches!(
            analyze_upgrade(&app, &b, &Upgrade::DOUBLE_SOCKETS),
            Err(WorkflowError::DoesNotFit { which: "upgraded" })
        ));
    }

    #[test]
    fn milc_and_relearn_profit_most_from_memory() {
        let b = base();
        for app in [catalog::milc(), catalog::relearn()] {
            let scores: Vec<f64> = Upgrade::ALL
                .iter()
                .map(|u| upgrade_score(&analyze_upgrade(&app, &b, u).unwrap()))
                .collect();
            assert!(
                scores[2] >= scores[0] && scores[2] >= scores[1],
                "{}: {scores:?}",
                app.name
            );
        }
    }
}
