//! Property-based hardening checks for the journal's JSON codec: no input
//! — malformed, truncated, hostile, or valid — may panic the parser, and
//! everything the writer emits must round-trip exactly.

use exareq::profile::minijson::{parse, Json, JsonErrorKind};
use proptest::prelude::*;

/// Arbitrary JSON values (finite numbers only: non-finite ones serialize
/// as tagged strings by design and compare through `to_f64_lossless`).
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        prop::num::f64::NORMAL.prop_map(Json::Num),
        any::<String>().prop_map(Json::Str),
    ];
    leaf.prop_recursive(6, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Json::Arr),
            prop::collection::vec((any::<String>(), inner), 0..8).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input never panics: it parses or fails with a typed
    /// error, nothing else.
    #[test]
    fn arbitrary_input_never_panics(input in any::<String>()) {
        let _ = parse(&input);
    }

    /// Arbitrary *almost-JSON* input (drawn from JSON's own alphabet, so
    /// it reaches deep into the parser) never panics either.
    #[test]
    fn json_flavoured_garbage_never_panics(
        input in proptest::string::string_regex(
            r#"[\[\]{}:,"\\0-9a-z.eE+\- \t\n]{0,256}"#
        ).unwrap()
    ) {
        let _ = parse(&input);
    }

    /// Every proper prefix of a valid line — a torn journal tail — fails
    /// cleanly instead of panicking or yielding a partial value.
    #[test]
    fn truncated_valid_lines_fail_cleanly(v in arb_json(), cut in any::<prop::sample::Index>()) {
        let line = v.to_line();
        let cut = cut.index(line.len().max(1));
        if let Some(prefix) = line.get(..cut) {
            if let Err(e) = parse(prefix) {
                prop_assert_eq!(e.kind, JsonErrorKind::Syntax);
            } else {
                // A *proper* prefix can itself be valid JSON only when
                // the whole line is a bare number ("12" → "1"); torn
                // containers and strings must fail.
                prop_assert!(
                    cut == line.len() || matches!(v, Json::Num(_)),
                    "prefix `{}` of `{}` parsed",
                    prefix,
                    line
                );
            }
        }
    }

    /// Writer → parser round-trip is exact for every value the journal
    /// can emit.
    #[test]
    fn writer_output_roundtrips(v in arb_json()) {
        let line = v.to_line();
        let back = parse(&line);
        prop_assert_eq!(Ok(v), back, "{}", line);
    }
}
