//! Minimal in-tree `poll(2)` binding for the event-driven serve engine.
//!
//! Same rationale as `src/signal.rs`: this workspace adds no external
//! crates and the standard library exposes no readiness API, so the
//! engine binds `poll(2)` and `pipe2(2)` directly against the C library
//! already linked into every Linux binary. The surface is deliberately
//! tiny — one `poll` wrapper, one self-pipe for cross-thread wakeups —
//! because everything stateful (connection buffers, deadlines, parsing)
//! lives in safe Rust inside [`crate::server`].
//!
//! On non-Linux targets the module compiles to a degraded stub:
//! [`poll`] sleeps a short tick and reports every descriptor ready, and
//! the wake pipe is inert. The engine's sockets are non-blocking, so
//! spurious readiness is a harmless `WouldBlock` and the event loop
//! degrades to a bounded busy-poll instead of breaking — mirroring the
//! "inert off Linux" contract of the signal binding.

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`) — reported even when not requested.
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`) — reported even when not requested.
pub const POLLHUP: i16 = 0x010;
/// Descriptor not open (`POLLNVAL`) — reported even when not requested.
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's entry — layout-compatible with C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch.
    pub fd: i32,
    /// Requested events (a mask of [`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, written by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A fresh entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor has bytes to read — or hit EOF/error, which a
    /// read surfaces too, so the engine treats them as "go read".
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// The descriptor accepts writes.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// The descriptor is beyond use (error or not open).
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

/// Waits up to `timeout_ms` for readiness on `fds`, filling `revents`.
/// Returns the number of ready descriptors; `EINTR` and other poll
/// failures report as `0` (a timeout), which the caller's next sweep
/// absorbs.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> usize {
    imp::poll(fds, timeout_ms)
}

/// The raw descriptor of a socket, for [`PollFd::new`] (always `-1` on
/// non-Linux targets, where the stub ignores descriptors anyway).
pub fn raw_fd<T: AsRawFdCompat>(t: &T) -> i32 {
    t.compat_raw_fd()
}

/// Narrow `AsRawFd` shim so [`raw_fd`] compiles on every target: on
/// Linux it is the real descriptor, elsewhere a constant `-1`.
pub trait AsRawFdCompat {
    /// The descriptor (or `-1` off Linux).
    fn compat_raw_fd(&self) -> i32;
}

#[cfg(target_os = "linux")]
mod fd_impl {
    use super::AsRawFdCompat;
    use std::os::fd::AsRawFd;

    impl<T: AsRawFd> AsRawFdCompat for T {
        fn compat_raw_fd(&self) -> i32 {
            self.as_raw_fd()
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fd_impl {
    use super::AsRawFdCompat;

    impl<T> AsRawFdCompat for T {
        fn compat_raw_fd(&self) -> i32 {
            -1
        }
    }
}

/// Gathers `bufs` into one `writev(2)` call on Linux — one syscall for a
/// response head + body instead of two writes or a copy into a combined
/// buffer. Returns the total bytes accepted (the kernel may take a
/// prefix; callers advance their segment queue by the return value). Off
/// Linux it degrades to a plain `write` of the first non-empty buffer,
/// which preserves the advance-by-n contract at one-segment granularity.
///
/// # Errors
/// Exactly the errors `write(2)`/`writev(2)` raise, as `io::Error` —
/// `WouldBlock` when the socket's send buffer is full.
pub fn write_vectored(stream: &mut std::net::TcpStream, bufs: &[&[u8]]) -> std::io::Result<usize> {
    imp::write_vectored(stream, bufs)
}

/// A non-blocking self-pipe: worker threads [`notify`](WakePipe::notify)
/// when a completion is ready and the event loop polls the
/// [`read_fd`](WakePipe::read_fd) so it wakes immediately instead of at
/// the next tick. Inert (always "no descriptor") off Linux.
pub struct WakePipe(imp::WakePipe);

impl WakePipe {
    /// Opens the pipe; `None` when the OS refuses (the engine then runs
    /// on poll ticks alone, merely adding wakeup latency).
    pub fn new() -> Option<WakePipe> {
        imp::WakePipe::new().map(WakePipe)
    }

    /// The read end, for the event loop's poll set (`-1` off Linux —
    /// exclude it from the set).
    pub fn read_fd(&self) -> i32 {
        self.0.read_fd()
    }

    /// Wakes the event loop. Safe from any thread; a full pipe means a
    /// wakeup is already pending, so the failed write is ignored.
    pub fn notify(&self) {
        self.0.notify();
    }

    /// Discards pending wakeup bytes; call once per loop iteration.
    pub fn drain(&self) {
        self.0.drain();
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::PollFd;

    /// C `struct iovec`, the scatter/gather element `writev(2)` takes.
    #[repr(C)]
    struct IoVec {
        base: *const u8,
        len: usize,
    }

    mod c {
        extern "C" {
            pub fn poll(fds: *mut super::PollFd, nfds: u64, timeout: i32) -> i32;
            pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
            pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            pub fn writev(fd: i32, iov: *const super::IoVec, iovcnt: i32) -> isize;
            pub fn close(fd: i32) -> i32;
        }
    }

    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;
    /// Linux caps one writev at `UIO_MAXIOV` segments; the engine queues
    /// at most a handful, but clamp defensively.
    const MAX_IOV: usize = 1024;

    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> usize {
        let n = unsafe { c::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        usize::try_from(n).unwrap_or(0)
    }

    pub fn write_vectored(
        stream: &mut std::net::TcpStream,
        bufs: &[&[u8]],
    ) -> std::io::Result<usize> {
        use std::os::fd::AsRawFd;
        let iov: Vec<IoVec> = bufs
            .iter()
            .filter(|b| !b.is_empty())
            .take(MAX_IOV)
            .map(|b| IoVec {
                base: b.as_ptr(),
                len: b.len(),
            })
            .collect();
        if iov.is_empty() {
            return Ok(0);
        }
        let n = unsafe { c::writev(stream.as_raw_fd(), iov.as_ptr(), iov.len() as i32) };
        if n < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub struct WakePipe {
        read_fd: i32,
        write_fd: i32,
    }

    // Raw descriptors; read(2)/write(2) are thread-safe and the fds live
    // until Drop.
    unsafe impl Send for WakePipe {}
    unsafe impl Sync for WakePipe {}

    impl WakePipe {
        pub fn new() -> Option<WakePipe> {
            let mut fds = [0i32; 2];
            if unsafe { c::pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
                return None;
            }
            Some(WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn read_fd(&self) -> i32 {
            self.read_fd
        }

        pub fn notify(&self) {
            let byte = [1u8];
            let _ = unsafe { c::write(self.write_fd, byte.as_ptr(), 1) };
        }

        pub fn drain(&self) {
            let mut sink = [0u8; 64];
            while unsafe { c::read(self.read_fd, sink.as_mut_ptr(), sink.len()) } > 0 {}
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                c::close(self.read_fd);
                c::close(self.write_fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::PollFd;
    use std::time::Duration;

    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> usize {
        // Busy-poll tick: sleep briefly, then claim everything is ready.
        // Non-blocking I/O turns the lie into WouldBlock no-ops.
        std::thread::sleep(Duration::from_millis(u64::from(
            timeout_ms.clamp(0, 5) as u32
        )));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        fds.len()
    }

    pub fn write_vectored(
        stream: &mut std::net::TcpStream,
        bufs: &[&[u8]],
    ) -> std::io::Result<usize> {
        use std::io::Write;
        match bufs.iter().find(|b| !b.is_empty()) {
            Some(b) => stream.write(b),
            None => Ok(0),
        }
    }

    pub struct WakePipe;

    impl WakePipe {
        pub fn new() -> Option<WakePipe> {
            None
        }

        pub fn read_fd(&self) -> i32 {
            -1
        }

        pub fn notify(&self) {}

        pub fn drain(&self) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn wake_pipe_reports_readiness_only_after_notify() {
        let pipe = WakePipe::new().expect("pipe2");
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0), 0, "fresh pipe must be quiet");
        assert!(!fds[0].readable());

        pipe.notify();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000), 1);
        assert!(fds[0].readable());

        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0), 0, "drained pipe must be quiet again");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn write_vectored_gathers_segments_in_one_call() {
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");

        let head = b"HTTP/1.1 200 OK\r\n\r\n";
        let body = b"{\"x\":1}";
        let n = write_vectored(&mut client, &[head, &[], body]).expect("writev");
        assert_eq!(n, head.len() + body.len(), "small gather writes whole");
        drop(client);
        let mut got = Vec::new();
        server.read_to_end(&mut got).expect("read");
        let mut want = head.to_vec();
        want.extend_from_slice(body);
        assert_eq!(got, want, "segments must arrive in order, uncopied");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn poll_reports_nval_for_a_closed_descriptor() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        // fd -1 is simply skipped by poll(2) (revents 0), the idiom for
        // "hole in the set"; a bogus positive fd reports NVAL.
        poll(&mut fds, 0);
        assert_eq!(fds[0].revents, 0);
        let mut fds = [PollFd::new(1_000_000, POLLIN)];
        poll(&mut fds, 0);
        assert!(fds[0].failed());
    }
}
