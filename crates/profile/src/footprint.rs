//! Resident-memory footprint tracking (the `getrusage()` substitute).
//!
//! The paper reads the resident set size of each process over its lifetime;
//! we track an allocation ledger with a high-water mark instead. Kernels
//! register their working buffers through [`FootprintTracker::alloc`] /
//! [`FootprintTracker::free`] (or the RAII [`TrackedAlloc`]), and the peak
//! is reported as "#Bytes used".

use serde::{Deserialize, Serialize};

/// Allocation ledger with high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintTracker {
    current: u64,
    peak: u64,
}

impl FootprintTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Records a release of `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than is currently allocated — a bookkeeping
    /// bug in the instrumented kernel.
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.current,
            "freeing {bytes} bytes with only {} live",
            self.current
        );
        self.current -= bytes;
    }

    /// Live bytes right now.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark — the resident-memory requirement (Table I
    /// "#Bytes used").
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Tracks a vector's heap buffer against a [`FootprintTracker`] for the
/// duration of a scope.
///
/// ```
/// use exareq_profile::footprint::{FootprintTracker, TrackedAlloc};
/// let mut fp = FootprintTracker::new();
/// {
///     let _buf = TrackedAlloc::new(&mut fp, 1024);
///     // ... use 1 KiB ...
/// }
/// assert_eq!(fp.current(), 0);
/// assert_eq!(fp.peak(), 1024);
/// ```
pub struct TrackedAlloc<'a> {
    tracker: &'a mut FootprintTracker,
    bytes: u64,
}

impl<'a> TrackedAlloc<'a> {
    /// Registers `bytes` with the tracker until drop.
    pub fn new(tracker: &'a mut FootprintTracker, bytes: u64) -> Self {
        tracker.alloc(bytes);
        TrackedAlloc { tracker, bytes }
    }
}

impl Drop for TrackedAlloc<'_> {
    fn drop(&mut self) {
        self.tracker.free(self.bytes);
    }
}

/// Bytes occupied by a `f64` slice of the given length.
pub fn f64_bytes(len: usize) -> u64 {
    (len * std::mem::size_of::<f64>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_survives_frees() {
        let mut fp = FootprintTracker::new();
        fp.alloc(100);
        fp.alloc(200);
        fp.free(250);
        fp.alloc(10);
        assert_eq!(fp.current(), 60);
        assert_eq!(fp.peak(), 300);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut fp = FootprintTracker::new();
        fp.alloc(10);
        fp.free(11);
    }

    #[test]
    fn tracked_alloc_raii() {
        let mut fp = FootprintTracker::new();
        {
            let _a = TrackedAlloc::new(&mut fp, 512);
        }
        assert_eq!(fp.current(), 0);
        assert_eq!(fp.peak(), 512);
    }

    #[test]
    fn f64_bytes_is_8x() {
        assert_eq!(f64_bytes(10), 80);
        assert_eq!(f64_bytes(0), 0);
    }
}
