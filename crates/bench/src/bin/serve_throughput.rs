//! Serve-throughput study: request rate and latency percentiles of the
//! `exareq serve` engine under increasing concurrent client counts,
//! emitted machine-readably as `BENCH_serve.json`.
//!
//! The daemon's whole value proposition is that model evaluation is
//! microseconds while learning is hours — so the engine itself must stay
//! out of the way. This binary starts the server in-process on a loopback
//! ephemeral port and fans out raw-TCP clients in three transport modes:
//!
//! - **close** — one connection per request, the pre-event-loop wire
//!   shape (handshake + teardown per predict);
//! - **keep-alive** — one connection per client, every request riding
//!   the same socket through the poll(2) event loop;
//! - **batch** — keep-alive `POST /predict_batch`, a whole `(p, n)`
//!   grid per request against the compiled PMNF table.
//!
//! Each round reports req/s, points/s, p50/p95/p99 latency, and a
//! client-side **syscalls-per-request estimate** (connects + writes +
//! reads + closes the client actually issued, divided by requests) —
//! the quantity the event loop + keep-alive work exists to crush.
//!
//! Every 200 body is compared byte-for-byte against the direct
//! [`exareq_serve::api::predict_body`] call (batch: against the
//! concatenation of the equivalent single predicts) — a daemon that
//! drifted from the library is reported as `"identical": false` and the
//! process exits nonzero. `--tiny` shrinks the rounds for CI smoke use.

use exareq_bench::{num, obj, write_report, LatencySummary};
use exareq_codesign::catalog;
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_profile::minijson::Json;
use exareq_serve::registry::Fitter;
use exareq_serve::{api, artifact, ModelRegistry, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One client connection with request framing and syscall accounting.
struct Wire {
    stream: TcpStream,
    leftover: Vec<u8>,
    /// Client-side socket syscalls issued so far (connect + write +
    /// read + close). An estimate: `write_all`/`read` map 1:1 to
    /// syscalls on loopback at these sizes.
    syscalls: u64,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Wire {
            stream,
            leftover: Vec::new(),
            syscalls: 1, // the connect
        }
    }

    /// One POST on this connection; `close` picks the Connection header.
    /// Responses are `Content-Length`-framed so the socket survives for
    /// the next request in keep-alive mode.
    fn post(&mut self, target: &str, body: &str, close: bool) -> (u16, Vec<u8>) {
        let connection = if close { "close" } else { "keep-alive" };
        let request = format!(
            "POST {target} HTTP/1.1\r\nHost: bench\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        self.syscalls += 1;
        let mut raw = std::mem::take(&mut self.leftover);
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&raw[..head_end]).expect("response head is ASCII");
                let len: usize = head
                    .lines()
                    .find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.trim()
                            .eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .expect("Content-Length in response");
                let total = head_end + 4 + len;
                if raw.len() >= total {
                    let status: u16 = head
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .expect("status code in status line");
                    let body = raw[head_end + 4..total].to_vec();
                    self.leftover = raw.split_off(total);
                    self.leftover.clear(); // sequential clients never pipeline
                    return (status, body);
                }
            }
            let k = self.stream.read(&mut buf).expect("read response");
            self.syscalls += 1;
            assert!(k > 0, "server closed mid-response");
            raw.extend_from_slice(&buf[..k]);
        }
    }

    /// Syscalls issued over this connection's lifetime, counting the
    /// close that `drop` is about to perform.
    fn finish(self) -> u64 {
        self.syscalls + 1
    }
}

struct Round {
    mode: &'static str,
    clients: usize,
    requests: usize,
    points: usize,
    seconds: f64,
    errors: u64,
    rejected_503: u64,
    identical: bool,
    syscalls_per_request: f64,
    latency: LatencySummary,
}

/// One load round: `clients` threads, each issuing `per_client`
/// sequential requests in the given `mode`, every 200 body checked
/// against the expected library answer.
#[allow(clippy::too_many_arguments)]
fn run_round(
    addr: SocketAddr,
    mode: &'static str,
    clients: usize,
    per_client: usize,
    target: &'static str,
    body: &str,
    points_per_request: usize,
    expected: &str,
) -> Round {
    let expected = expected.as_bytes().to_vec();
    let body = body.to_string();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let expected = expected.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let (mut errors, mut rejected, mut mismatched) = (0u64, 0u64, false);
                let mut syscalls = 0u64;
                let close = mode == "close";
                let mut wire = (!close).then(|| Wire::connect(addr));
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let (status, resp) = match wire.as_mut() {
                        Some(wire) => wire.post(target, &body, false),
                        None => {
                            let mut one = Wire::connect(addr);
                            let out = one.post(target, &body, true);
                            syscalls += one.finish();
                            out
                        }
                    };
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    match status {
                        200 => mismatched |= resp != expected,
                        503 => rejected += 1,
                        _ => errors += 1,
                    }
                }
                if let Some(wire) = wire {
                    syscalls += wire.finish();
                }
                (latencies, errors, rejected, mismatched, syscalls)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut errors, mut rejected, mut identical, mut syscalls) = (0, 0, true, 0u64);
    for h in handles {
        let (lat, e, r, mismatched, s) = h.join().expect("client thread");
        latencies.extend(lat);
        errors += e;
        rejected += r;
        identical &= !mismatched;
        syscalls += s;
    }
    let requests = clients * per_client;
    Round {
        mode,
        clients,
        requests,
        points: requests * points_per_request,
        seconds: started.elapsed().as_secs_f64(),
        errors,
        rejected_503: rejected,
        identical,
        syscalls_per_request: syscalls as f64 / requests as f64,
        latency: LatencySummary::from_samples(&latencies),
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    // (mode-specific request counts: keep-alive requests are ~10×
    // cheaper than close-mode ones, so they get more iterations for
    // stable rates without stretching wall clock.)
    let (client_counts, per_close, per_keep, per_batch, batch_points): (
        Vec<usize>,
        usize,
        usize,
        usize,
        usize,
    ) = if tiny {
        (vec![1, 2], 10, 50, 10, 64)
    } else {
        (vec![1, 2, 4], 50, 1000, 50, 256)
    };

    // Model dir: the published Table II catalog as requirements artifacts,
    // so no fitting happens and the engine itself is what gets timed.
    let dir = std::env::temp_dir().join(format!("exareq_serve_throughput_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(&dir, no_fit));

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 4,
        queue_depth: 64,
        request_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(10),
        model_dir: dir.clone(),
        allow_measure: false,
        keep_alive_requests: 1_000_000,
        idle_deadline: Duration::from_secs(5),
        refresh: Default::default(),
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let server = {
        let cfg = cfg.clone();
        let registry = Arc::clone(&registry);
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq_serve::serve(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("engine runs")
        })
    };
    let addr = rx.recv().expect("server ready");

    let point_body = r#"{"model":"Kripke","p":1e6,"n":4096}"#;
    let expected_point = api::predict_body(&catalog::kripke(), 1e6, 4096.0);
    // The batch grid: `batch_points` distinct (p, n) pairs; the expected
    // answer is, by contract, the concatenation of the single predicts.
    let kripke = catalog::kripke();
    let grid: Vec<(f64, f64)> = (0..batch_points)
        .map(|i| (2f64.powi((i % 20) as i32 + 1), 64.0 * (i + 1) as f64))
        .collect();
    let batch_body = format!(
        r#"{{"model":"Kripke","points":[{}]}}"#,
        grid.iter()
            .map(|(p, n)| format!("[{p},{n}]"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let expected_batch: String = grid
        .iter()
        .map(|&(p, n)| api::predict_body(&kripke, p, n) + "\n")
        .collect();
    eprintln!(
        "serve throughput: {addr}, {} workers, clients {client_counts:?}, \
         close x{per_close} / keep-alive x{per_keep} / batch x{per_batch} ({batch_points} points)",
        cfg.threads
    );

    // Warm-up outside every timing.
    let _ = run_round(
        addr,
        "keep-alive",
        1,
        5,
        "/predict",
        point_body,
        1,
        &expected_point,
    );

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut keep_alive_syscalls_worst = 0f64;
    let mut plan: Vec<(&'static str, usize, usize, &'static str, &str, usize, &str)> = Vec::new();
    for &clients in &client_counts {
        plan.push((
            "close",
            clients,
            per_close,
            "/predict",
            point_body,
            1,
            &expected_point,
        ));
        plan.push((
            "keep-alive",
            clients,
            per_keep,
            "/predict",
            point_body,
            1,
            &expected_point,
        ));
    }
    plan.push((
        "batch",
        1,
        per_batch,
        "/predict_batch",
        &batch_body,
        batch_points,
        &expected_batch,
    ));
    for (mode, clients, per_client, target, body, points, expected) in plan {
        let round = run_round(
            addr, mode, clients, per_client, target, body, points, expected,
        );
        let rate = round.requests as f64 / round.seconds;
        let point_rate = round.points as f64 / round.seconds;
        all_identical &= round.identical;
        if round.mode == "keep-alive" {
            keep_alive_syscalls_worst = keep_alive_syscalls_worst.max(round.syscalls_per_request);
        }
        eprintln!(
            "  {mode:>10} clients={clients}: {rate:.0} req/s, {point_rate:.0} points/s, \
             p50 {:.3} ms, p99 {:.3} ms, ~{:.1} syscalls/req, {} errors, {} x 503{}",
            round.latency.p50_ms,
            round.latency.p99_ms,
            round.syscalls_per_request,
            round.errors,
            round.rejected_503,
            if round.identical {
                ""
            } else {
                ", NOT IDENTICAL"
            }
        );
        let mut members = vec![
            ("mode", Json::Str(round.mode.to_string())),
            ("clients", num(round.clients as f64)),
            ("requests", num(round.requests as f64)),
            ("points", num(round.points as f64)),
            ("seconds", num(round.seconds)),
            ("req_per_sec", num(rate)),
            ("points_per_sec", num(point_rate)),
            ("syscalls_per_request", num(round.syscalls_per_request)),
            ("errors", num(round.errors as f64)),
            ("rejected_503", num(round.rejected_503 as f64)),
            ("identical", Json::Bool(round.identical)),
        ];
        members.extend(round.latency.to_members());
        rows.push(obj(members));
    }

    cancel.cancel(CancelReason::Interrupt);
    let summary = server.join().expect("server thread");

    let report = obj(vec![
        ("schema", num(2.0)),
        ("model", Json::Str("Kripke".to_string())),
        ("threads", num(cfg.threads as f64)),
        ("queue_depth", num(cfg.queue_depth as f64)),
        ("batch_points", num(batch_points as f64)),
        ("keep_alive_syscalls_worst", num(keep_alive_syscalls_worst)),
        ("rounds", Json::Arr(rows)),
        ("total_requests", num(summary.requests as f64)),
        ("total_rejected", num(summary.rejected as f64)),
        ("drained", Json::Bool(summary.drained)),
    ]);
    write_report("BENCH_serve.json", &report.to_line());
    let _ = std::fs::remove_dir_all(&dir);

    if !all_identical {
        eprintln!("error: a daemon answer diverged from the direct library call");
        std::process::exit(1);
    }
    if !summary.drained {
        eprintln!("error: the engine failed to drain at shutdown");
        std::process::exit(1);
    }
    // Keep-alive non-regression: a request should cost the client one
    // write and one read; the server's gathered (writev) response must
    // arrive whole, never forcing a second read per request. Connect and
    // close amortize over the round, so anything past 4.0 means the wire
    // shape regressed (fragmented responses or dropped keep-alive).
    if keep_alive_syscalls_worst > 4.0 {
        eprintln!(
            "error: keep-alive costs {keep_alive_syscalls_worst:.2} syscalls/request \
             (budget 4.0) — response framing or connection reuse regressed"
        );
        std::process::exit(1);
    }
}
