//! Crossover analysis: at what scale does one requirement overtake
//! another?
//!
//! The reproduction guideline for co-design conclusions is "who wins, by
//! roughly what factor, and *where crossovers fall*". This module finds
//! those crossover points: the parameter value where two models (or two
//! terms of one model) exchange dominance — e.g. the process count at
//! which Relearn's `10·Alltoall(p)` communication overtakes its compute
//! time, or the problem size where MILC's `n·log n` memory traffic
//! overtakes its constant setup scan.

use exareq_core::pmnf::Model;

/// Search domain for crossover bisection.
const X_MIN: f64 = 1.0;
const X_MAX: f64 = 1e18;

/// Finds the *last* value of parameter `param` in `[lo, hi]` where `a` and
/// `b` cross, holding all other coordinates fixed at `fixed` (the entry at
/// `param` is ignored). Returns `None` when the sign of `a − b` never
/// changes on the domain.
///
/// PMNF differences can change sign more than once (e.g. a communication
/// bound that dominates both at trivial scale, where `log2(p) = 0` kills
/// the compute term, and at exascale, where a linear-in-p term takes over);
/// the domain is scanned on a log grid for brackets and the final one —
/// the asymptotically decisive crossing — is bisected.
pub fn crossover_in(
    a: &Model,
    b: &Model,
    param: usize,
    fixed: &[f64],
    lo: f64,
    hi: f64,
) -> Option<f64> {
    assert_eq!(a.params, b.params, "models must share parameters");
    assert_eq!(fixed.len(), a.arity(), "one coordinate per parameter");
    assert!(lo >= 1.0 && hi > lo, "domain must satisfy 1 ≤ lo < hi");
    let eval = |x: f64| {
        let mut coords = fixed.to_vec();
        coords[param] = x;
        a.eval(&coords) - b.eval(&coords)
    };
    // Bracket scan on a log grid.
    const SCAN: usize = 512;
    let (llo, lhi) = (lo.ln(), hi.ln());
    let mut bracket: Option<(f64, f64)> = None;
    let mut prev_x = lo;
    let mut prev_sign = eval(lo) > 0.0;
    for k in 1..=SCAN {
        let x = (llo + (lhi - llo) * k as f64 / SCAN as f64).exp();
        let sign = eval(x) > 0.0;
        if sign != prev_sign {
            bracket = Some((prev_x, x)); // keep the last bracket found
            prev_sign = sign;
        }
        prev_x = x;
    }
    let (mut blo, mut bhi) = bracket?;
    let lo_sign = eval(blo) > 0.0;
    let (mut blo_l, mut bhi_l) = (blo.ln(), bhi.ln());
    for _ in 0..200 {
        let mid = 0.5 * (blo_l + bhi_l);
        if (eval(mid.exp()) > 0.0) == lo_sign {
            blo_l = mid;
        } else {
            bhi_l = mid;
        }
    }
    blo = blo_l.exp();
    bhi = bhi_l.exp();
    Some(0.5 * (blo + bhi))
}

/// [`crossover_in`] over the default domain `[1, 10¹⁸]`.
pub fn crossover(a: &Model, b: &Model, param: usize, fixed: &[f64]) -> Option<f64> {
    crossover_in(a, b, param, fixed, X_MIN, X_MAX)
}

/// For a single model, finds where its asymptotically dominant term starts
/// to contribute more than all other terms (plus the constant) combined —
/// the scale beyond which the Table II lead term *is* the requirement.
pub fn dominance_onset(model: &Model, param: usize, fixed: &[f64]) -> Option<f64> {
    let dom = model.dominant_term()?.clone();
    let dom_model = Model::new(0.0, vec![dom.clone()], model.params.clone());
    let mut rest = model.clone();
    rest.terms.retain(|t| t != &dom);
    crossover(&dom_model, &rest, param, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use exareq_core::pmnf::{Exponents, Term};

    fn m1(terms: &[(f64, f64, f64)]) -> Model {
        Model::new(
            0.0,
            terms
                .iter()
                .map(|&(c, i, j)| Term::new(c, vec![Exponents::new(i, j)]))
                .collect(),
            vec!["p".into()],
        )
    }

    #[test]
    fn linear_overtakes_constant() {
        let a = m1(&[(1.0, 1.0, 0.0)]); // p
        let b = Model::constant(1000.0, vec!["p".into()]);
        let x = crossover(&a, &b, 0, &[0.0]).unwrap();
        assert!((x - 1000.0).abs() / 1000.0 < 1e-6, "{x}");
    }

    #[test]
    fn no_crossover_when_dominated_everywhere() {
        let a = m1(&[(2.0, 1.0, 0.0)]);
        let b = m1(&[(1.0, 1.0, 0.0)]);
        assert_eq!(crossover(&a, &b, 0, &[0.0]), None);
    }

    #[test]
    fn milc_p15_term_onset() {
        // MILC loads: 1e11 + 1e8·n·log n + 1e5·p^1.5 at n = 1000: the p^1.5
        // term overtakes the rest at p where 1e5·p^1.5 = 1e11 + 1e12 →
        // p ≈ (1.1e7)^(2/3) ≈ 5e4.
        let milc = catalog::milc();
        let p_idx = 0;
        let onset = dominance_onset(&milc.loads_stores, p_idx, &[0.0, 1000.0]).unwrap();
        let expect = (1.1e12 / 1e5_f64).powf(2.0 / 3.0);
        assert!(
            (onset - expect).abs() / expect < 0.01,
            "{onset} vs {expect}"
        );
    }

    #[test]
    fn relearn_alltoall_overtakes_compute_near_exascale() {
        // T_comm = comm/bw vs T_flop = flops/rate on the massively parallel
        // straw man (0.1 B/F balance): crossing sits deep in the exascale
        // regime — invisible at measurement scale (p ≤ 128).
        let relearn = catalog::relearn();
        let bw = 0.1 * 5e8; // bytes/s
        let rate = 5e8; // flop/s
                        // Scale the models into seconds so they are comparable.
        let mut t_comm = relearn.comm_bytes.clone();
        t_comm.constant /= bw;
        for t in &mut t_comm.terms {
            t.coeff /= bw;
        }
        let mut t_flop = relearn.flops.clone();
        t_flop.constant /= rate;
        for t in &mut t_flop.terms {
            t.coeff /= rate;
        }
        // At a production-scale problem (n = 10⁴ neurons/process) compute
        // dominates at measurement scale …
        let n = 1e4;
        let at_measured = |m: &Model, p: f64| m.eval(&[p, n]);
        assert!(at_measured(&t_flop, 128.0) > at_measured(&t_comm, 128.0));
        // … but the linear-in-p alltoall term crosses over well before the
        // straw man's 2·10⁹ processors.
        let x = crossover(&t_comm, &t_flop, 0, &[0.0, n]).unwrap();
        assert!(x > 1e6, "crossover at p = {x}");
        assert!(x < 2e9, "must cross before the straw man's 2e9 processors");
    }

    #[test]
    #[should_panic(expected = "share parameters")]
    fn mismatched_parameters_panic() {
        let a = m1(&[(1.0, 1.0, 0.0)]);
        let b = Model::constant(1.0, vec!["n".into()]);
        let _ = crossover(&a, &b, 0, &[0.0]);
    }
}
