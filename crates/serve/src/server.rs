//! The request engine: non-blocking acceptor, explicit bounded accept
//! queue, fixed worker pool, per-request deadlines, graceful drain.
//!
//! Flow of one request:
//!
//! ```text
//! accept() ──▶ queue (≤ queue_depth) ──▶ worker: read ▶ parse ▶ dispatch ▶ write
//!      │                                    │
//!      └── queue full: 503 + Retry-After    └── Deadline expired: 504
//! ```
//!
//! Backpressure is explicit: when the queue is full the *acceptor* answers
//! `503` with `Retry-After` and closes — the connection never reaches a
//! worker and never consumes model-evaluation capacity. Every request a
//! worker picks up runs under a fresh [`CancelToken`] carrying the
//! `--request-deadline-ms` [`Deadline`]; expiry anywhere along the path
//! answers `504` instead of hanging the client.
//!
//! Shutdown (SIGINT/SIGTERM via the caller's cancel token, or
//! [`Deadline`]-free cancellation in tests): workers finish the queue and
//! their in-flight requests while the *acceptor keeps the listener open*
//! for the drain window, answering every new connection `503` — and
//! `GET /healthz` specifically with a `"status":"draining"` body — so a
//! router's health prober moves traffic away instead of eating connection
//! resets. Once the workers are done (or the drain deadline expires) the
//! listener closes and the engine returns; the process then exits 0, per
//! the exit-code contract ("interrupted" exit 5 is for sweeps that lose
//! work; a drained server has lost nothing).

use crate::http::{parse_request, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::{api, dispatch};
use exareq_core::cancel::{CancelToken, Deadline};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything `exareq serve` configures.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8462` (port 0 picks one).
    pub addr: SocketAddr,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Accepted connections allowed to wait for a worker.
    pub queue_depth: usize,
    /// Per-request deadline; expiry answers 504.
    pub request_deadline: Duration,
    /// How long shutdown waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Directory of model artifacts.
    pub model_dir: PathBuf,
    /// Whether `POST /measure` accepts survey shards (the fleet worker
    /// opt-in, `exareq serve --allow-measure`).
    pub allow_measure: bool,
}

/// Why the engine could not run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(SocketAddr, std::io::Error),
    /// Configuring the listener failed.
    Listener(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(addr, e) => write!(f, "bind {addr}: {e}"),
            ServeError::Listener(e) => write!(f, "configure listener: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What happened over the daemon's lifetime, for the shutdown line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests handled by workers.
    pub requests: u64,
    /// 503 backpressure rejects.
    pub rejected: u64,
    /// True when shutdown drained every in-flight request within the
    /// drain deadline.
    pub drained: bool,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    accepting: AtomicBool,
    metrics: Metrics,
    registry: Arc<ModelRegistry>,
    request_deadline: Duration,
    allow_measure: bool,
}

/// How long a worker waits on one socket read before giving up on the
/// client; bounds slow-client damage to one worker for a short while.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Read-timeout slice while a header-read deadline is in force: short
/// enough that a slow-loris client dripping bytes cannot postpone the
/// deadline check past its next drip.
const HEADER_READ_SLICE: Duration = Duration::from_millis(100);

/// Acceptor poll interval while the listener has nothing for us.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Worker poll interval while the queue is empty.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Runs the daemon until `cancel` fires, then drains.
///
/// `ready` is invoked once with the bound address (after `--addr` port 0
/// resolution) before the first accept — callers print or record it.
///
/// # Errors
/// [`ServeError`] when the listener cannot be set up; never for anything a
/// client does.
pub fn serve(
    cfg: &ServeConfig,
    registry: Arc<ModelRegistry>,
    cancel: &CancelToken,
    ready: impl FnOnce(SocketAddr),
) -> Result<ServeSummary, ServeError> {
    let listener = TcpListener::bind(cfg.addr).map_err(|e| ServeError::Bind(cfg.addr, e))?;
    listener
        .set_nonblocking(true)
        .map_err(ServeError::Listener)?;
    let addr = listener.local_addr().map_err(ServeError::Listener)?;

    registry.refresh();
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        accepting: AtomicBool::new(true),
        metrics: Metrics::new(),
        registry,
        request_deadline: cfg.request_deadline,
        allow_measure: cfg.allow_measure,
    });

    let workers: Vec<_> = (0..cfg.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    ready(addr);

    // Accept loop. Non-blocking + poll so a signal-cancelled token is
    // noticed within ACCEPT_POLL even when no client ever connects.
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if queue.len() >= cfg.queue_depth {
                    drop(queue);
                    shared.metrics.record_rejected();
                    reject_overloaded(stream);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.ready.notify_one();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient per-connection accept failures (ECONNABORTED and
            // friends) must not kill the daemon.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }

    // Drain: workers empty the queue and finish in-flight requests while
    // the acceptor keeps answering — `/healthz` reports "draining"
    // (non-200) so a ring-routing prober stops sending traffic here
    // before the listener disappears. Give up at the drain deadline.
    shared.accepting.store(false, Ordering::SeqCst);
    shared.ready.notify_all();
    let drain = Deadline::after(cfg.drain_deadline);
    while workers.iter().any(|w| !w.is_finished()) && !drain.expired() {
        match listener.accept() {
            Ok((stream, _peer)) => answer_draining(stream, &shared),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(listener);
    let mut drained = true;
    for worker in workers {
        if worker.is_finished() {
            let _ = worker.join();
        } else {
            drained = false; // abandoned; the process exit reaps it
        }
    }
    Ok(ServeSummary {
        requests: shared.metrics.requests(),
        rejected: shared.metrics.rejected(),
        drained,
    })
}

/// Answers 503 + `Retry-After` on the acceptor thread without reading the
/// request: the queue depth already told us everything we need. The write
/// side is shut down so the client sees a complete response even though
/// its request body may be unread.
fn reject_overloaded(mut stream: TcpStream) {
    let mut response = Response::json(503, api::error_body("server is at capacity").into_bytes());
    response.retry_after = Some(1);
    let _ = stream.set_nodelay(true);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Briefly drain whatever the client already sent so closing the
        // socket does not RST the response out of its receive buffer.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Answers a connection that arrived during the drain window on the
/// acceptor thread: `503` everywhere, with `GET /healthz` getting the
/// structured `"status":"draining"` body a router's prober keys off. The
/// read is bounded by a short timeout so a trickling client cannot wedge
/// the drain; a peer that never completes a request is simply dropped.
fn answer_draining(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(Some(request)) = read_request(&mut stream, Some(Instant::now() + Duration::from_millis(250)))
    else {
        return;
    };
    let mut response = if request.method == "GET" && request.target == "/healthz" {
        Response::json(
            503,
            api::draining_health_body(
                shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
                shared.metrics.in_flight(),
                shared.registry.generation(),
            )
            .into_bytes(),
        )
    } else {
        Response::json(503, api::error_body("server is draining").into_bytes())
    };
    response.retry_after = Some(1);
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if !shared.accepting.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, WORKER_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(stream, shared);
    }
}

/// Reads one request, dispatches it, writes one response, closes —
/// bracketed by the in-flight gauge so `/healthz` sees it. Any I/O failure
/// mid-conversation just drops the connection — the peer is gone; there is
/// nobody to tell.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    shared.metrics.begin_request();
    serve_connection(stream, shared);
    shared.metrics.end_request();
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let started = Instant::now();
    // A fresh token per request: the deadline is this request's alone, and
    // a SIGTERM on the server token must drain — not cancel — in-flight
    // requests, so the flags are deliberately not shared.
    let token = CancelToken::new().with_deadline(Deadline::after(shared.request_deadline));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(shared.request_deadline.max(Duration::from_millis(1))));

    // The whole head+body read shares the request deadline: a slow-loris
    // client dripping one byte per read can renew a per-read timeout
    // forever, but not this wall-clock bound — expiry answers 408 and
    // frees the worker.
    let header_deadline = started + shared.request_deadline;
    let response = match read_request(&mut stream, Some(header_deadline)) {
        Ok(Some(request)) => {
            // Snapshot the engine state the instant the request is served:
            // /healthz reports the queue depth a prober would experience.
            let state = dispatch::EngineState {
                queue_len: shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
                allow_measure: shared.allow_measure,
            };
            dispatch::dispatch(&request, &shared.registry, &shared.metrics, &token, &state)
        }
        Ok(None) => return, // peer hung up before completing a request
        Err(e) => Response::json(e.status, api::error_body(&e.reason).into_bytes()),
    };
    shared.metrics.record(response.status, started.elapsed());
    if stream.write_all(&response.to_bytes()).is_ok() {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Accumulates socket bytes through [`parse_request`] until a complete
/// request, a protocol error, or EOF/timeout.
///
/// With a `deadline`, the *whole* read is wall-clock bounded: reads happen
/// in [`HEADER_READ_SLICE`] timeout slices and expiry is a `408` — each
/// dripped byte resets a per-read timeout, but nothing a client sends can
/// extend this bound. Without one, a single quiet [`READ_TIMEOUT`] (set by
/// the caller) drops the connection as before.
fn read_request(
    stream: &mut TcpStream,
    deadline: Option<Instant>,
) -> Result<Option<Request>, HttpError> {
    if deadline.is_some() {
        let _ = stream.set_read_timeout(Some(HEADER_READ_SLICE));
    }
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(request) = parse_request(&buf)? {
            return Ok(Some(request));
        }
        if let Some(at) = deadline {
            if Instant::now() >= at {
                return Err(HttpError::new(
                    408,
                    "request not received within the request deadline",
                ));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if deadline.is_some()
                    && (e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut) =>
            {
                // Quiet slice under a deadline: loop to re-check it.
            }
            Err(_) => return Ok(None), // timeout or reset: drop silently
        }
    }
}
