//! Live serving metrics: lock-free counters and a fixed-bucket latency
//! histogram, rendered in the Prometheus text exposition format.
//!
//! Everything is relaxed atomics — the numbers are operator telemetry, not
//! synchronization; a scrape racing a request may be one count behind,
//! never torn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, seconds. The last implicit bucket is
/// `+Inf`. Spans sub-millisecond model evaluations up to requests parked
/// against the deadline.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// All serving counters; shared across workers behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests that reached a worker (everything except queue rejects).
    requests: AtomicU64,
    /// Responses with status >= 400 of any kind.
    errors: AtomicU64,
    /// 503 backpressure rejects from the full accept queue.
    rejected: AtomicU64,
    /// 504 deadline expiries.
    deadline_expired: AtomicU64,
    /// Requests currently being handled by a worker (gauge).
    in_flight: AtomicU64,
    /// Measurement shards completed by `POST /measure`.
    measure_shards: AtomicU64,
    /// Observations accepted (journaled) by `POST /observations`.
    observations: AtomicU64,
    /// Incremental (rank-1 QR) refits published by the refresher.
    refits_incremental: AtomicU64,
    /// Full PMNF re-searches published by the refresher.
    refits_full: AtomicU64,
    /// Latency histogram bucket counts (`LATENCY_BUCKETS_S` + `+Inf`).
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len() + 1],
    /// Sum of observed latencies, nanoseconds.
    latency_sum_ns: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one worker-handled request: its response status and wall
    /// latency.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if status == 504 {
            self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
        let secs = latency.as_secs_f64();
        let idx = LATENCY_BUCKETS_S
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one 503 backpressure reject (issued by the acceptor; the
    /// request never reached a worker, so it is not in `requests`).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request as picked up by a worker. Pair with
    /// [`end_request`](Self::end_request); the difference is the
    /// `/healthz` in-flight gauge.
    pub fn begin_request(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a worker-handled request as finished.
    pub fn end_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being handled by a worker.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Records one completed `POST /measure` shard.
    pub fn record_measure_shard(&self) {
        self.measure_shards.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed `POST /measure` shard count so far.
    pub fn measure_shards(&self) -> u64 {
        self.measure_shards.load(Ordering::Relaxed)
    }

    /// Records one journaled observation from `POST /observations`.
    pub fn record_observation(&self) {
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Accepted observation count so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Records one published refit; `full` selects the counter kind.
    pub fn record_refit(&self, full: bool) {
        if full {
            self.refits_full.fetch_add(1, Ordering::Relaxed);
        } else {
            self.refits_incremental.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(incremental, full)` refit counts so far.
    pub fn refits(&self) -> (u64, u64) {
        (
            self.refits_incremental.load(Ordering::Relaxed),
            self.refits_full.load(Ordering::Relaxed),
        )
    }

    /// Worker-handled request count so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Backpressure reject count so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Error (status >= 400) count so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition, including the registry
    /// generation and model-count gauges passed in by the caller.
    /// `staleness` is one `(model, observations since the last full
    /// refit)` row per model the refresher is tracking.
    pub fn render(
        &self,
        registry_generation: u64,
        models_loaded: usize,
        staleness: &[(String, u64)],
    ) -> String {
        let mut out = String::with_capacity(1536);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "exareq_requests_total",
            "Requests handled by a worker.",
            self.requests(),
        );
        counter(
            &mut out,
            "exareq_errors_total",
            "Responses with status >= 400.",
            self.errors(),
        );
        counter(
            &mut out,
            "exareq_rejected_total",
            "503 backpressure rejects from the full accept queue.",
            self.rejected(),
        );
        counter(
            &mut out,
            "exareq_deadline_expired_total",
            "504 responses from expired request deadlines.",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "serve_measure_shards_total",
            "Measurement shards completed by POST /measure.",
            self.measure_shards(),
        );
        out.push_str(&format!(
            "# HELP exareq_in_flight Requests currently being handled by a worker.\n\
             # TYPE exareq_in_flight gauge\n\
             exareq_in_flight {}\n",
            self.in_flight()
        ));

        out.push_str(
            "# HELP exareq_request_seconds Request latency from worker pickup to response.\n\
             # TYPE exareq_request_seconds histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "exareq_request_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKETS_S.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "exareq_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "exareq_request_seconds_sum {}\n",
            self.latency_sum_ns.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!("exareq_request_seconds_count {cumulative}\n"));

        out.push_str(&format!(
            "# HELP exareq_registry_generation Bumps when the model registry reloads.\n\
             # TYPE exareq_registry_generation gauge\n\
             exareq_registry_generation {registry_generation}\n"
        ));
        out.push_str(&format!(
            "# HELP exareq_models_loaded Models currently served by the registry.\n\
             # TYPE exareq_models_loaded gauge\n\
             exareq_models_loaded {models_loaded}\n"
        ));
        counter(
            &mut out,
            "refresh_observations_total",
            "Observations accepted by POST /observations.",
            self.observations(),
        );
        let (incremental, full) = self.refits();
        out.push_str(&format!(
            "# HELP refresh_refits_total Model refits published by the refresher.\n\
             # TYPE refresh_refits_total counter\n\
             refresh_refits_total{{kind=\"incremental\"}} {incremental}\n\
             refresh_refits_total{{kind=\"full\"}} {full}\n"
        ));
        if !staleness.is_empty() {
            out.push_str(
                "# HELP refresh_model_staleness Observations since the model's last \
                 full refit.\n\
                 # TYPE refresh_model_staleness gauge\n",
            );
            for (model, since_full) in staleness {
                out.push_str(&format!(
                    "refresh_model_staleness{{model=\"{model}\"}} {since_full}\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram_accumulate() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(300));
        m.record(404, Duration::from_millis(3));
        m.record(504, Duration::from_millis(600));
        m.record_rejected();
        assert_eq!(m.requests(), 3);
        assert_eq!(m.errors(), 2);
        assert_eq!(m.rejected(), 1);

        let text = m.render(7, 2, &[]);
        assert!(text.contains("exareq_requests_total 3\n"), "{text}");
        assert!(text.contains("exareq_errors_total 2\n"), "{text}");
        assert!(text.contains("exareq_rejected_total 1\n"), "{text}");
        assert!(text.contains("exareq_deadline_expired_total 1\n"), "{text}");
        assert!(text.contains("serve_measure_shards_total 0\n"), "{text}");
        assert!(text.contains("exareq_in_flight 0\n"), "{text}");
        assert!(text.contains("exareq_registry_generation 7\n"), "{text}");
        assert!(text.contains("exareq_models_loaded 2\n"), "{text}");
        // Histogram buckets are cumulative and end at +Inf == count.
        assert!(
            text.contains("exareq_request_seconds_bucket{le=\"0.0005\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("exareq_request_seconds_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("exareq_request_seconds_count 3\n"), "{text}");
    }

    #[test]
    fn in_flight_gauge_and_measure_counter_track() {
        let m = Metrics::new();
        m.begin_request();
        m.begin_request();
        m.end_request();
        m.record_measure_shard();
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.measure_shards(), 1);
        let text = m.render(0, 0, &[]);
        assert!(text.contains("exareq_in_flight 1\n"), "{text}");
        assert!(text.contains("serve_measure_shards_total 1\n"), "{text}");
        m.end_request();
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn refresh_counters_and_staleness_gauges_render() {
        let m = Metrics::new();
        m.record_observation();
        m.record_observation();
        m.record_refit(false);
        m.record_refit(true);
        m.record_refit(true);
        assert_eq!(m.observations(), 2);
        assert_eq!(m.refits(), (1, 2));
        let rows = vec![("kripke".to_string(), 5u64)];
        let text = m.render(1, 1, &rows);
        assert!(text.contains("refresh_observations_total 2\n"), "{text}");
        assert!(
            text.contains("refresh_refits_total{kind=\"incremental\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("refresh_refits_total{kind=\"full\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("refresh_model_staleness{model=\"kripke\"} 5\n"),
            "{text}"
        );
        // No tracked models → the gauge family is omitted entirely.
        assert!(!m.render(1, 1, &[]).contains("refresh_model_staleness"));
    }
}
